#!/usr/bin/env python
"""Docs lint: links resolve, the architecture guide covers the code.

Two checks, both cheap enough for every CI run:

1. **Link existence** — every relative markdown link in README.md,
   EXPERIMENTS.md and docs/*.md must point at a file or directory
   that exists in the repo. External links (http/https/mailto),
   pure anchors, and GitHub-UI links that resolve outside the repo
   root (the CI badge's ``../../actions/...``) are skipped.
2. **Architecture coverage** — every package under ``src/repro/``
   (any directory with an ``__init__.py``) must be named in
   ``docs/architecture.md`` by its dotted import path, so new
   subsystems cannot land undocumented.

Exit status 0 when clean, 1 with one line per violation — the CI
docs job runs this before executing the documented snippets
(tests/test_docs_examples.py).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Markdown files whose links must resolve.
LINKED_FILES = ("README.md", "EXPERIMENTS.md")

#: [text](target) — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are never filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> list[Path]:
    files = [REPO / name for name in LINKED_FILES]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links() -> list[str]:
    errors = []
    for path in _markdown_files():
        for match in _LINK.finditer(path.read_text()):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.is_relative_to(REPO):
                continue  # GitHub-UI link (e.g. the CI badge)
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def repro_packages() -> list[str]:
    """Dotted names of every package under src/repro (root excluded)."""
    root = REPO / "src" / "repro"
    names = []
    for init in sorted(root.rglob("__init__.py")):
        package = init.parent
        if package == root:
            continue
        names.append("repro." + ".".join(package.relative_to(root).parts))
    return names


def check_architecture_coverage() -> list[str]:
    doc = REPO / "docs" / "architecture.md"
    if not doc.exists():
        return ["docs/architecture.md is missing"]
    text = doc.read_text()
    return [
        f"docs/architecture.md: package `{name}` is not documented"
        for name in repro_packages()
        if name not in text
    ]


def main() -> int:
    errors = check_links() + check_architecture_coverage()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"check_docs: {len(_markdown_files())} files linked cleanly, "
        f"{len(repro_packages())} packages covered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
