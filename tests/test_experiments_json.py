"""Tests for figure-result JSON persistence and multi-seed averaging."""

import pytest

from repro.experiments.config import scaled_config
from repro.experiments.reporting import figure_from_json, figure_to_json
from repro.experiments.runner import AlgorithmSpec, FigureResult, SeriesPoint, run_figure
from repro.core.random_assign import RandomAssigner
from repro.workloads.synthetic import SyntheticWorkload


def sample_result():
    return FigureResult(
        figure_id="figX",
        title="test",
        x_name="B",
        x_labels=["1", "2"],
        algorithms=["A"],
        points=[
            SeriesPoint("1", "A", 1.5, 0.01, 3, 2.0, 0.1, None),
            SeriesPoint("2", "A", 2.5, 0.02, 5, 4.0, None, 0.2),
        ],
    )


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = sample_result()
        restored = figure_from_json(figure_to_json(original))
        assert restored == original

    def test_json_is_valid(self):
        import json

        payload = json.loads(figure_to_json(sample_result()))
        assert payload["figure_id"] == "figX"
        assert len(payload["points"]) == 2

    def test_none_errors_survive(self):
        restored = figure_from_json(figure_to_json(sample_result()))
        assert restored.points[0].task_prediction_error is None
        assert restored.points[1].worker_prediction_error is None


class TestRepeats:
    def _sweep(self, repeats):
        return run_figure(
            figure_id="t",
            title="t",
            x_name="B",
            x_values=[3.0],
            make_workload=lambda x, c: SyntheticWorkload(c.params, seed=c.seed),
            make_config=lambda x: scaled_config(0.02, seed=5).with_fields(
                budget=float(x)
            ),
            algorithms=[AlgorithmSpec("RANDOM", RandomAssigner, use_prediction=False)],
            repeats=repeats,
        )

    def test_single_repeat_matches_default(self):
        assert self._sweep(1).points[0].quality == self._sweep(1).points[0].quality

    def test_repeats_average_over_seeds(self):
        single = self._sweep(1).points[0].quality
        averaged = self._sweep(3).points[0].quality
        # The averaged value differs from the first seed's value (the
        # other seeds contribute) but stays in the same ballpark.
        assert averaged != single
        assert 0.3 * single < averaged < 3.0 * single

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            self._sweep(0)
