"""Tests for the streaming scenario workloads."""

import numpy as np
import pytest

from repro.geo.point import euclidean_distance
from repro.workloads import BurstyWorkload, DriftingHotspotWorkload, WorkloadParams

PARAMS = WorkloadParams(num_workers=400, num_tasks=300, num_instances=8)


def _all_entities(workload):
    workers, tasks = [], []
    for i in range(workload.num_instances):
        w, t = workload.arrivals(i)
        workers.extend(w)
        tasks.extend(t)
    return workers, tasks


@pytest.mark.parametrize(
    "factory",
    [
        lambda: BurstyWorkload(PARAMS, seed=3),
        lambda: DriftingHotspotWorkload(PARAMS, seed=3),
    ],
    ids=["bursty", "hotspot"],
)
class TestScenarioProtocol:
    def test_totals_match_params(self, factory):
        workers, tasks = _all_entities(factory())
        assert len(workers) == PARAMS.num_workers
        assert len(tasks) == PARAMS.num_tasks

    def test_deterministic_per_seed(self, factory):
        a_workers, a_tasks = _all_entities(factory())
        b_workers, b_tasks = _all_entities(factory())
        assert a_workers == b_workers
        assert a_tasks == b_tasks

    def test_entities_well_formed(self, factory):
        workers, tasks = _all_entities(factory())
        v_low, v_high = PARAMS.velocity_range
        e_low, e_high = PARAMS.deadline_range
        for w in workers:
            assert 0.0 <= w.location.x <= 1.0 and 0.0 <= w.location.y <= 1.0
            assert v_low <= w.velocity <= v_high
            assert not w.predicted
        for t in tasks:
            assert 0.0 <= t.location.x <= 1.0 and 0.0 <= t.location.y <= 1.0
            assert e_low <= t.deadline - t.arrival <= e_high
            assert not t.predicted

    def test_unique_ids(self, factory):
        workers, tasks = _all_entities(factory())
        ids = [w.id for w in workers] + [t.id for t in tasks]
        assert len(ids) == len(set(ids))

    def test_out_of_range_instance_rejected(self, factory):
        with pytest.raises(IndexError):
            factory().arrivals(PARAMS.num_instances)


class TestBurstyShape:
    def test_burst_instances_dominate(self):
        workload = BurstyWorkload(
            PARAMS, seed=5, burst_period=4, burst_multiplier=8.0
        )
        counts = [
            len(workload.arrivals(i)[0]) for i in range(PARAMS.num_instances)
        ]
        burst = [counts[i] for i in range(0, PARAMS.num_instances, 4)]
        quiet = [
            counts[i] for i in range(PARAMS.num_instances) if i % 4 != 0
        ]
        assert min(burst) > 2 * max(quiet)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyWorkload(PARAMS, burst_period=0)
        with pytest.raises(ValueError):
            BurstyWorkload(PARAMS, burst_multiplier=0.5)


class TestHotspotShape:
    def test_hotspot_center_moves(self):
        workload = DriftingHotspotWorkload(PARAMS, seed=5, drift_rate=0.8)
        first = workload.hotspot_center(0)
        last = workload.hotspot_center(PARAMS.num_instances - 1)
        assert euclidean_distance(first, last) > 0.1

    def test_arrivals_track_the_center(self):
        workload = DriftingHotspotWorkload(
            PARAMS, seed=5, hotspot_std=0.05, drift_rate=0.9
        )
        for instance in (0, PARAMS.num_instances - 1):
            workers, _ = workload.arrivals(instance)
            center = workload.hotspot_center(instance)
            xs = np.array([w.location.x for w in workers])
            ys = np.array([w.location.y for w in workers])
            mean = np.array([xs.mean(), ys.mean()])
            assert np.hypot(mean[0] - center.x, mean[1] - center.y) < 0.1

    def test_tasks_lead_workers(self):
        workload = DriftingHotspotWorkload(PARAMS, seed=5, task_lead=0.5)
        worker_center = workload.hotspot_center(3, kind="worker")
        task_center = workload.hotspot_center(3, kind="task")
        assert euclidean_distance(worker_center, task_center) > 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DriftingHotspotWorkload(PARAMS, orbit_radius=0.8)
        with pytest.raises(ValueError):
            DriftingHotspotWorkload(PARAMS, hotspot_std=0.0)
