"""Tests for repro.viz.ascii."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.viz.ascii import density_map, render_counts, side_by_side, sparkline


class TestRenderCounts:
    def test_shape(self):
        text = render_counts(np.zeros(16), gamma=4)
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines)

    def test_empty_grid_renders_spaces(self):
        text = render_counts(np.zeros(9), gamma=3)
        assert set(text.replace("\n", "")) == {" "}

    def test_peak_cell_is_darkest(self):
        counts = np.zeros(9)
        counts[4] = 10.0  # center cell (row 1, col 1)
        text = render_counts(counts, gamma=3)
        assert text.splitlines()[1][1] == "@"

    def test_orientation_bottom_row_last(self):
        counts = np.zeros(4)
        counts[0] = 5.0  # row 0 (bottom), col 0
        lines = render_counts(counts, gamma=2).splitlines()
        assert lines[-1][0] == "@"
        assert lines[0] == "  "

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_counts(np.zeros(5), gamma=2)


class TestDensityMap:
    def test_points_shade_their_cells(self):
        points = [Point(0.05, 0.05)] * 9
        text = density_map(points, resolution=4)
        assert text.splitlines()[-1][0] == "@"

    def test_empty_points(self):
        text = density_map([], resolution=3)
        assert len(text.splitlines()) == 3


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁" * 3

    def test_monotone_series_uses_full_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_ordering_preserved(self):
        line = sparkline([1.0, 3.0, 2.0])
        assert line[1] > line[0]
        assert line[1] > line[2]


class TestSideBySide:
    def test_pastes_blocks(self):
        out = side_by_side(["ab\ncd", "xy\nzw"], gap=1)
        assert out.splitlines() == ["ab xy", "cd zw"]

    def test_uneven_heights_padded(self):
        out = side_by_side(["a", "x\ny"], gap=1)
        lines = out.splitlines()
        assert lines[0] == "a x"
        assert lines[1] == "  y"

    def test_titles(self):
        out = side_by_side(["aa", "bb"], gap=2, titles=["L", "R"])
        assert out.splitlines()[0] == "L   R"

    def test_title_count_mismatch(self):
        with pytest.raises(ValueError):
            side_by_side(["a"], titles=["one", "two"])

    def test_empty(self):
        assert side_by_side([]) == ""
