"""Edge-case robustness: odd configurations through the whole stack."""

import numpy as np
import pytest

from repro.core.divide_conquer import MQADivideConquer
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner
from repro.model.instance import build_problem
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import WorkloadParams
from repro.workloads.quality import HashQualityModel
from repro.workloads.synthetic import SyntheticWorkload

from repro.testing import make_tasks, make_workers


ASSIGNERS = [MQAGreedy(), MQADivideConquer(), RandomAssigner()]


class TestDegenerateWorkloads:
    def test_single_instance(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=20, num_tasks=20, num_instances=1), seed=0
        )
        result = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=5.0)).run()
        assert len(result.instances) == 1
        # One instance: nothing to predict.
        assert result.instances[0].num_predicted_workers == 0

    def test_workers_without_tasks(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=30, num_tasks=0, num_instances=3), seed=0
        )
        result = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=5.0)).run()
        assert result.total_assigned == 0

    def test_tasks_without_workers(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=0, num_tasks=30, num_instances=3), seed=0
        )
        result = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=5.0)).run()
        assert result.total_assigned == 0

    def test_single_worker_single_task(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=1, num_tasks=1, num_instances=1,
                           deadline_range=(5.0, 6.0)),
            seed=0,
        )
        result = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=100.0)
        ).run()
        assert result.total_assigned <= 1

    def test_near_zero_velocities(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=20, num_tasks=20, num_instances=2,
                           velocity_range=(0.001, 0.002)),
            seed=0,
        )
        result = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=5.0)).run()
        # Crawling workers reach almost nothing; the run must not fail.
        assert result.total_quality >= 0.0

    def test_very_fast_workers(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=20, num_tasks=20, num_instances=2,
                           velocity_range=(0.9, 0.99)),
            seed=0,
        )
        result = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=1000.0)
        ).run()
        assert result.total_assigned > 0

    def test_degenerate_quality_range(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=15, num_tasks=15, num_instances=2,
                           quality_range=(1.0, 1.0)),
            seed=0,
        )
        result = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=50.0)).run()
        # All qualities identical: total quality equals the count.
        assert result.total_quality == pytest.approx(float(result.total_assigned))


class TestDegenerateProblems:
    @pytest.mark.parametrize("assigner", ASSIGNERS)
    def test_all_pairs_identical(self, assigner):
        """Co-located workers and tasks: zero costs, tie qualities."""
        rng = np.random.default_rng(0)
        workers = [
            w.__class__(id=w.id, location=w.location, velocity=w.velocity)
            for w in make_workers(rng, 5)
        ]
        from repro.geo.point import Point
        from repro.model.entities import Task

        tasks = [
            Task(id=1000 + j, location=Point(0.5, 0.5), deadline=10.0)
            for j in range(5)
        ]
        workers = [
            type(workers[0])(id=i, location=Point(0.5, 0.5), velocity=0.2)
            for i in range(5)
        ]
        problem = build_problem(
            workers, tasks, [], [], HashQualityModel((1.0, 1.0)), 1.0, 0.0
        )
        result = assigner.assign(problem, 100.0, 0.0, np.random.default_rng(1))
        assert result.num_assigned == 5
        assert result.total_cost == pytest.approx(0.0)

    @pytest.mark.parametrize("assigner", ASSIGNERS)
    def test_single_pair_problem(self, assigner):
        rng = np.random.default_rng(2)
        problem = build_problem(
            make_workers(rng, 1), make_tasks(rng, 1), [], [],
            HashQualityModel((1.0, 2.0)), 1.0, 0.0,
        )
        result = assigner.assign(problem, 100.0, 0.0, np.random.default_rng(0))
        assert result.num_assigned == problem.num_pairs  # 0 or 1

    def test_zero_unit_cost(self):
        rng = np.random.default_rng(3)
        problem = build_problem(
            make_workers(rng, 6), make_tasks(rng, 6), [], [],
            HashQualityModel((1.0, 2.0)), 0.0, 0.0,
        )
        result = MQAGreedy().assign(problem, 0.0, 0.0, np.random.default_rng(0))
        # Free travel: even a zero budget admits every assignment.
        assert result.num_assigned > 0

    def test_expired_now(self):
        """Problem built after every deadline passed: no valid pairs."""
        rng = np.random.default_rng(4)
        problem = build_problem(
            make_workers(rng, 4), make_tasks(rng, 4, deadline_offset=1.0), [], [],
            HashQualityModel((1.0, 2.0)), 1.0, now=5.0,
        )
        assert problem.num_pairs == 0


class TestEngineConfigEdges:
    def test_window_one(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=40, num_tasks=40, num_instances=4), seed=1
        )
        result = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=10.0, window=1)
        ).run()
        assert len(result.instances) == 4

    def test_gamma_one(self):
        """A single prediction cell is legal (global count forecast)."""
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=40, num_tasks=40, num_instances=4), seed=1
        )
        result = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=10.0, grid_gamma=1)
        ).run()
        assert len(result.instances) == 4

    def test_huge_budget(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=30, num_tasks=30, num_instances=3), seed=1
        )
        result = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=1e9)
        ).run()
        assert result.total_assigned > 0
