"""End-to-end integration tests: the paper's qualitative claims at
reduced scale.

These are the cross-module checks that a user would rely on: the full
pipeline (workload -> prediction -> problem -> assigner -> metrics)
produces the orderings the evaluation section reports.
"""

import numpy as np
import pytest

from repro.core.divide_conquer import MQADivideConquer
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import WorkloadParams
from repro.workloads.synthetic import SyntheticWorkload


def run(workload, assigner, budget, use_prediction=True, seed=0):
    engine = SimulationEngine(
        workload, assigner,
        EngineConfig(budget=budget, grid_gamma=5, use_prediction=use_prediction),
        seed=seed,
    )
    return engine.run()


@pytest.fixture(scope="module")
def workload():
    params = WorkloadParams(num_workers=240, num_tasks=240, num_instances=8)
    return SyntheticWorkload(params, seed=17)


class TestAlgorithmOrdering:
    def test_greedy_and_dc_beat_random(self, workload):
        budget = 15.0
        greedy = run(workload, MQAGreedy(), budget).total_quality
        dc = run(workload, MQADivideConquer(), budget).total_quality
        random_q = run(workload, RandomAssigner(), budget).total_quality
        assert greedy > random_q
        assert dc > random_q

    def test_greedy_and_dc_within_ballpark(self, workload):
        budget = 15.0
        greedy = run(workload, MQAGreedy(), budget).total_quality
        dc = run(workload, MQADivideConquer(), budget).total_quality
        assert abs(greedy - dc) / max(greedy, dc) < 0.25

    def test_random_is_fastest(self, workload):
        budget = 15.0
        greedy = run(workload, MQAGreedy(), budget).average_cpu_seconds
        random_t = run(workload, RandomAssigner(), budget).average_cpu_seconds
        assert random_t < greedy


class TestParameterTrends:
    def test_quality_grows_with_budget(self, workload):
        qualities = [
            run(workload, MQAGreedy(), b).total_quality for b in (5.0, 15.0, 40.0)
        ]
        assert qualities[0] < qualities[1] < qualities[2]

    def test_quality_grows_with_quality_range(self):
        totals = []
        for q_range in ((0.25, 0.5), (1.0, 2.0), (3.0, 4.0)):
            params = WorkloadParams(
                num_workers=160, num_tasks=160, num_instances=6,
                quality_range=q_range,
            )
            workload = SyntheticWorkload(params, seed=3)
            totals.append(run(workload, MQAGreedy(), 12.0).total_quality)
        assert totals[0] < totals[1] < totals[2]

    def test_deadline_range_budget_burn_tradeoff(self):
        """Looser deadlines enlarge the valid-pair pool but let the
        quality-first selection buy costlier pairs.  With i.i.d. hashed
        qualities the two forces roughly cancel for GREEDY (documented
        deviation from Fig. 13; see EXPERIMENTS.md), while RANDOM —
        which gains nothing from the richer pool — strictly degrades.
        """
        greedy_totals, random_totals = [], []
        for e_range in ((0.25, 0.5), (2.0, 3.0)):
            params = WorkloadParams(
                num_workers=160, num_tasks=160, num_instances=6,
                deadline_range=e_range,
            )
            workload = SyntheticWorkload(params, seed=3)
            greedy_totals.append(run(workload, MQAGreedy(), 12.0).total_quality)
            random_totals.append(run(workload, RandomAssigner(), 12.0).total_quality)
        assert random_totals[1] < random_totals[0]
        assert greedy_totals[1] > 0.5 * greedy_totals[0]

    def test_quality_falls_with_unit_price(self):
        params = WorkloadParams(num_workers=160, num_tasks=160, num_instances=6)
        workload = SyntheticWorkload(params, seed=5)
        totals = []
        for unit_cost in (5.0, 20.0):
            engine = SimulationEngine(
                workload, MQAGreedy(),
                EngineConfig(budget=12.0, unit_cost=unit_cost, grid_gamma=5),
            )
            totals.append(engine.run().total_quality)
        assert totals[1] < totals[0]

    def test_quality_grows_with_entity_counts(self):
        totals = []
        for n in (80, 320):
            params = WorkloadParams(num_workers=n, num_tasks=n, num_instances=6)
            workload = SyntheticWorkload(params, seed=7)
            totals.append(run(workload, MQAGreedy(), 12.0).total_quality)
        assert totals[0] < totals[1]


class TestRealWorkloadEndToEnd:
    def test_checkin_pipeline(self):
        """Generated check-ins -> RealWorkload -> engine -> metrics."""
        import numpy as np

        from repro.workloads.checkins import (
            SAN_FRANCISCO_BOUNDS,
            CheckinGeneratorConfig,
            generate_checkins,
        )
        from repro.workloads.real import RealWorkload

        rng = np.random.default_rng(6)
        workload = RealWorkload(
            generate_checkins(CheckinGeneratorConfig(num_records=300), rng),
            generate_checkins(CheckinGeneratorConfig(num_records=400), rng),
            WorkloadParams(num_instances=6),
            seed=6,
            bounds=SAN_FRANCISCO_BOUNDS,
        )
        result = run(workload, MQAGreedy(), budget=20.0)
        assert result.total_assigned > 0
        assert result.total_quality > 0.0
        for metrics in result.instances:
            assert metrics.cost <= 20.0 + 1e-6

    def test_hungarian_assigner_through_engine(self):
        from repro.core.baselines import HungarianAssigner

        params = WorkloadParams(num_workers=80, num_tasks=80, num_instances=4)
        workload = SyntheticWorkload(params, seed=8)
        result = run(workload, HungarianAssigner(), budget=15.0, use_prediction=False)
        assert result.total_assigned > 0
        for metrics in result.instances:
            assert metrics.cost <= 15.0 + 1e-6


class TestPredictionAccuracyTrend:
    def test_errors_are_moderate_on_stable_stream(self):
        params = WorkloadParams(num_workers=900, num_tasks=900, num_instances=10)
        workload = SyntheticWorkload(params, seed=13)
        engine = SimulationEngine(
            workload, RandomAssigner(),
            EngineConfig(budget=0.0, grid_gamma=10, window=3),
        )
        result = engine.run()
        assert result.average_worker_prediction_error < 0.35
        assert result.average_task_prediction_error < 0.35
