"""Tests for repro.core.base (result bookkeeping and finalization)."""

import numpy as np
import pytest

from repro.core.base import AssignmentResult, finalize_selection

from repro.testing import make_problem


class TestFinalizeSelection:
    def test_drops_predicted_rows(self):
        problem = make_problem(
            seed=1, num_predicted_workers=4, num_predicted_tasks=4
        )
        pool = problem.pool
        predicted = np.nonzero(~pool.is_current)[0][:3].tolist()
        current = np.nonzero(pool.is_current)[0][:1].tolist()
        kept = finalize_selection(problem, predicted + current, budget_current=1e9)
        assert kept == sorted(current)

    def test_keeps_within_budget(self):
        problem = make_problem(seed=2)
        pool = problem.pool
        # Pick a conflict-free set of current rows.
        rows, used_w, used_t = [], set(), set()
        for r in np.argsort(pool.cost_mean):
            if not pool.is_current[r]:
                continue
            w, t = int(pool.worker_idx[r]), int(pool.task_idx[r])
            if w in used_w or t in used_t:
                continue
            rows.append(int(r))
            used_w.add(w)
            used_t.add(t)
            if len(rows) == 5:
                break
        total = float(pool.cost_mean[rows].sum())
        kept = finalize_selection(problem, rows, budget_current=total + 1.0)
        assert kept == sorted(rows)

    def test_trims_lowest_quality_when_over_budget(self):
        problem = make_problem(seed=2)
        pool = problem.pool
        rows, used_w, used_t = [], set(), set()
        for r in np.argsort(-pool.quality_mean):
            if not pool.is_current[r]:
                continue
            w, t = int(pool.worker_idx[r]), int(pool.task_idx[r])
            if w in used_w or t in used_t:
                continue
            rows.append(int(r))
            used_w.add(w)
            used_t.add(t)
            if len(rows) == 6:
                break
        total = float(pool.cost_mean[rows].sum())
        kept = finalize_selection(problem, rows, budget_current=total / 2.0)
        assert set(kept) <= set(rows)
        assert float(pool.cost_mean[kept].sum()) <= total / 2.0 + 1e-9
        # Trimming removes the lowest-quality entries first.
        dropped = set(rows) - set(kept)
        if kept and dropped:
            assert max(pool.quality_mean[sorted(dropped)]) <= (
                min(pool.quality_mean[kept]) + 1e-9
            )

    def test_duplicate_worker_raises(self):
        problem = make_problem(seed=3)
        pool = problem.pool
        worker = pool.worker_idx[pool.is_current][0]
        rows = np.nonzero(pool.is_current & (pool.worker_idx == worker))[0][:2]
        if len(rows) == 2:
            with pytest.raises(AssertionError):
                finalize_selection(problem, rows.tolist(), budget_current=1e9)


class TestAssignmentResult:
    def test_aggregates(self):
        problem = make_problem(seed=4)
        pairs = problem.pairs([0, 1])
        result = AssignmentResult(pairs=pairs, rows=[0, 1])
        assert result.num_assigned == 2
        assert result.total_quality == pytest.approx(
            sum(p.quality.mean for p in pairs)
        )
        assert result.total_cost == pytest.approx(sum(p.cost.mean for p in pairs))

    def test_empty(self):
        result = AssignmentResult(pairs=[], rows=[])
        assert result.num_assigned == 0
        assert result.total_quality == 0.0
