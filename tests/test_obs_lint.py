"""Repo-wide clock lint: one sanctioned timing source.

Phase accounting everywhere must flow through
:func:`repro.obs.metrics.monotonic` so the observability layer sees
every measurement (and the select/finalize/price views can never fork
from the registry's histograms).  This test greps the source tree for
raw ``time.perf_counter`` reads and fails on any outside the obs
package itself.

Allowlisted:

- ``src/repro/obs/`` — the clock's home (it wraps perf_counter);
- ``benchmarks/`` — the bench harness intentionally times *around*
  the system under test with an independent clock, so a bug in the
  obs layer cannot hide itself from the overhead measurements.
"""

from __future__ import annotations

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Assembled so this file never matches its own pattern.
FORBIDDEN = "perf_" + "counter"

ALLOWED_PREFIXES = (
    REPO / "src" / "repro" / "obs",
    REPO / "benchmarks",
)


def _python_sources() -> list[Path]:
    files = []
    for root in ("src", "tests", "benchmarks", "examples"):
        base = REPO / root
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    assert files, "lint found no Python sources — repo layout changed?"
    return files


def test_perf_counter_only_in_obs_and_benchmarks():
    offenders = []
    for path in _python_sources():
        if path == Path(__file__).resolve():
            continue
        if any(path.is_relative_to(prefix) for prefix in ALLOWED_PREFIXES):
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if FORBIDDEN in line:
                offenders.append(f"{path.relative_to(REPO)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "raw time.%s found outside repro.obs; use "
        "repro.obs.metrics.monotonic() instead:\n" % FORBIDDEN
        + "\n".join(offenders)
    )


def test_sanctioned_clock_exists_and_ticks():
    from repro.obs.metrics import monotonic

    a = monotonic()
    b = monotonic()
    assert b >= a
