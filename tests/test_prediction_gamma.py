"""Tests for repro.prediction.gamma."""

import pytest

from repro.prediction.gamma import best_gamma


class TestBestGamma:
    def test_paper_scale_lands_near_paper_grid(self):
        """~333 arrivals/instance with hotspot coverage gives a grid in
        the paper's ballpark (gamma = 20, i.e. 400 cells)."""
        gamma = best_gamma(333, target_per_cell=2.0, coverage=0.4)
        assert 15 <= gamma <= 25

    def test_sparser_streams_get_coarser_grids(self):
        dense = best_gamma(1000)
        sparse = best_gamma(30)
        assert sparse < dense

    def test_higher_target_coarsens(self):
        assert best_gamma(200, target_per_cell=8.0) < best_gamma(200, target_per_cell=1.0)

    def test_concentration_affords_finer_grids(self):
        """Concentrated data packs more entities into each active cell,
        so the target per-cell count is met at a finer resolution."""
        assert best_gamma(200, coverage=0.1) > best_gamma(200, coverage=1.0)

    def test_clamping(self):
        assert best_gamma(1e9) == 40
        assert best_gamma(0.0) == 2
        assert best_gamma(1e9, max_gamma=12) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            best_gamma(-1.0)
        with pytest.raises(ValueError):
            best_gamma(10.0, target_per_cell=0.0)
        with pytest.raises(ValueError):
            best_gamma(10.0, coverage=1.5)
        with pytest.raises(ValueError):
            best_gamma(10.0, min_gamma=5, max_gamma=3)

    def test_scaling_law(self):
        """gamma ~ sqrt(N): 4x the entities, 2x the resolution."""
        base = best_gamma(100, min_gamma=1, max_gamma=1000)
        scaled = best_gamma(400, min_gamma=1, max_gamma=1000)
        assert scaled == pytest.approx(2 * base, abs=1)
