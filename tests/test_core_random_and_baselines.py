"""Tests for repro.core.random_assign and repro.core.baselines."""

import numpy as np
import pytest

from repro.core.baselines import HungarianAssigner
from repro.core.exact import exact_assignment
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner

from repro.testing import make_problem


class TestRandomAssigner:
    def test_validity(self, small_problem):
        rng = np.random.default_rng(1)
        result = RandomAssigner().assign(small_problem, 10.0, 0.0, rng)
        workers = [p.worker.id for p in result.pairs]
        tasks = [p.task.id for p in result.pairs]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)
        assert result.total_cost <= 10.0 + 1e-6

    def test_different_seeds_differ(self, small_problem):
        results = {
            tuple(
                RandomAssigner().assign(
                    small_problem, 10.0, 0.0, np.random.default_rng(seed)
                ).rows
            )
            for seed in range(8)
        }
        assert len(results) > 1

    def test_usually_below_greedy(self):
        rng = np.random.default_rng(3)
        random_total = 0.0
        greedy_total = 0.0
        for seed in range(6):
            problem = make_problem(seed=seed, num_workers=12, num_tasks=10)
            random_total += RandomAssigner().assign(problem, 8.0, 0.0, rng).total_quality
            greedy_total += MQAGreedy().assign(problem, 8.0, 0.0, rng).total_quality
        assert random_total < greedy_total

    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        rng = np.random.default_rng(0)
        assert RandomAssigner().assign(problem, 10.0, 0.0, rng).pairs == []

    def test_predicted_pairs_never_materialized(self, mixed_problem):
        rng = np.random.default_rng(0)
        result = RandomAssigner().assign(mixed_problem, 10.0, 10.0, rng)
        assert all(p.is_current for p in result.pairs)


class TestHungarianAssigner:
    def test_optimal_quality_under_loose_budget(self):
        """With no binding budget, Hungarian is the quality optimum."""
        for seed in range(5):
            problem = make_problem(seed=seed, num_workers=5, num_tasks=5)
            rng = np.random.default_rng(0)
            result = HungarianAssigner().assign(problem, 1e6, 0.0, rng)
            _, optimum = exact_assignment(problem, 1e6)
            assert result.total_quality == pytest.approx(optimum, rel=1e-9)

    def test_budget_trim_keeps_feasibility(self, small_problem):
        rng = np.random.default_rng(0)
        result = HungarianAssigner().assign(small_problem, 3.0, 0.0, rng)
        assert result.total_cost <= 3.0 + 1e-6

    def test_validity(self, small_problem):
        rng = np.random.default_rng(0)
        result = HungarianAssigner().assign(small_problem, 20.0, 0.0, rng)
        workers = [p.worker.id for p in result.pairs]
        tasks = [p.task.id for p in result.pairs]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)

    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        rng = np.random.default_rng(0)
        assert HungarianAssigner().assign(problem, 10.0, 0.0, rng).pairs == []

    def test_ignores_predicted_pairs(self, mixed_problem):
        rng = np.random.default_rng(0)
        result = HungarianAssigner().assign(mixed_problem, 20.0, 20.0, rng)
        assert all(p.is_current for p in result.pairs)
