"""The deterministic fault DSL and its durability injection hooks.

Contracts under test:

- the :class:`FaultPlan` line DSL parses to the typed specs and
  rejects garbage with a line-numbered error;
- the :class:`FaultInjector` is strictly one-shot per fault, logs
  what fired, and answers negatively once exhausted — a respawned
  worker can never re-trip its predecessor's fault;
- the WAL-tear hook leaves exactly the torn-tail state
  :meth:`OpJournal.read_ops` is specified to drop, and a
  :class:`JournaledService` reopened over the torn journal recovers
  to the intact-prefix state, digest-proved;
- the checkpoint-corruption hook forces :meth:`CheckpointWriter.
  load_latest` onto the predecessor snapshot (the keep>=2 retention
  policy actually engaging);
- an *empty* plan is indistinguishable from no injector at all.
"""

from __future__ import annotations

import pytest

from repro.core import MQAGreedy
from repro.faults import (
    CheckpointCorrupt,
    FaultPlan,
    MessageDrop,
    MessageGarble,
    OpDelay,
    WalTear,
    WorkerHang,
    WorkerKill,
)
from repro.streaming import (
    CheckpointWriter,
    JournaledService,
    OpJournal,
    StreamConfig,
    StreamingService,
    state_digest,
)
from repro.workloads import BurstyWorkload, WorkloadParams
from repro.streaming import workload_events
from repro.streaming.events import WorkerArrival


_DSL = """
# one of each, comments and blanks allowed
kill worker 1 at round 3
hang worker 0 at round 2 for 1.5s

drop message to worker 1 at round 4
garble message to worker 0 at round 2
tear wal frame 5
corrupt checkpoint 1
delay op 2 for 0.4s
delay op 7 of tenant-b for 1s
"""


class TestFaultPlanDSL:
    def test_parse_all_fault_kinds(self):
        plan = FaultPlan.parse(_DSL)
        assert plan.faults == (
            WorkerKill(worker=1, round=3),
            WorkerHang(worker=0, round=2, seconds=1.5),
            MessageDrop(worker=1, round=4),
            MessageGarble(worker=0, round=2),
            WalTear(frame=5),
            CheckpointCorrupt(index=1),
            OpDelay(op=2, seconds=0.4),
            OpDelay(op=7, seconds=1.0, tenant="tenant-b"),
        )
        assert len(plan) == 8

    def test_bad_line_names_its_number(self):
        with pytest.raises(ValueError, match="line 2"):
            FaultPlan.parse("kill worker 0 at round 1\nexplode the moon\n")

    def test_empty_text_parses_empty_plan(self):
        plan = FaultPlan.parse("  \n# nothing\n")
        assert len(plan) == 0
        assert not plan.injector().active


class TestFaultInjectorOneShot:
    def test_shard_directive_fires_once(self):
        injector = FaultPlan.parse("kill worker 1 at round 3").injector()
        assert injector.shard_directive(1, 2) is None
        assert injector.shard_directive(0, 3) is None
        assert injector.shard_directive(1, 3) == {"kind": "kill"}
        # consumed: the same coordinates never fire again
        assert injector.shard_directive(1, 3) is None
        assert not injector.active
        assert injector.fired == [
            {"fault": WorkerKill(worker=1, round=3), "worker": 1, "round": 3}
        ]

    def test_hang_directive_carries_seconds(self):
        injector = FaultPlan.parse("hang worker 0 at round 2 for 0.25s").injector()
        assert injector.shard_directive(0, 2) == {"kind": "hang", "seconds": 0.25}

    def test_pipe_faults_fire_once(self):
        injector = FaultPlan.parse(
            "drop message to worker 1 at round 4\n"
            "garble message to worker 0 at round 4\n"
        ).injector()
        assert injector.pipe_fault(1, 4) == "drop"
        assert injector.pipe_fault(1, 4) is None
        assert injector.pipe_fault(0, 4) == "garble"
        assert not injector.active

    def test_delay_op_tenant_scoping(self):
        injector = FaultPlan.parse("delay op 2 of tenant-b for 1s").injector()
        assert injector.delay_op(2, "tenant-a") is None
        assert injector.delay_op(2, "tenant-b") == 1.0
        assert injector.delay_op(2, "tenant-b") is None
        wildcard = FaultPlan.parse("delay op 2 for 0.5s").injector()
        assert wildcard.delay_op(2, "anyone") == 0.5

    def test_plans_are_reusable_injectors_are_not(self):
        plan = FaultPlan.parse("tear wal frame 1")
        first, second = plan.injector(), plan.injector()
        assert first.tear_wal(1) is True
        assert first.tear_wal(1) is False
        assert second.tear_wal(1) is True  # fresh arm, fresh budget


class TestWalTearInjection:
    def test_torn_frame_drops_cleanly(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal = OpJournal(
            path, fsync=False, faults=FaultPlan.parse("tear wal frame 3").injector()
        )
        for i in range(3):
            journal.append(("drain", float(i)))
        journal.close()
        ops = OpJournal.read_ops(path)
        assert ops == [("drain", 0.0), ("drain", 1.0)]

    def test_reopen_after_torn_tail_recovers_prefix(self, tmp_path):
        workload = BurstyWorkload(
            WorkloadParams(num_workers=15, num_tasks=18, num_instances=3), seed=11
        )
        quality_model = workload.quality_model

        def factory():
            return StreamingService(
                MQAGreedy(), quality_model,
                config=StreamConfig(round_interval=0.5), seed=11,
            )

        ops = []
        for event in workload_events(workload):
            if isinstance(event, WorkerArrival):
                ops.append(("worker", event.worker, event.time))
            else:
                ops.append(("task", event.task, event.time))
        ops.append(("drain", 1.5))

        # the last journal append is torn, as if killed mid-write
        plan = FaultPlan.parse(f"tear wal frame {len(ops)}")
        torn = JournaledService.open(
            factory, tmp_path / "torn", checkpoint_every=10_000,
            fsync=False, faults=plan.injector(),
        )
        for op in ops:
            JournaledService._apply(torn, op)
        torn._journal.close()  # skip close(): it would checkpoint the full state

        # the reference applies only the intact prefix
        reference = JournaledService.open(
            factory, tmp_path / "ref", checkpoint_every=10_000, fsync=False
        )
        for op in ops[:-1]:
            JournaledService._apply(reference, op)

        recovered = JournaledService.open(
            factory, tmp_path / "torn", checkpoint_every=10_000, fsync=False
        )
        assert state_digest(recovered.engine) == state_digest(reference.engine)


class TestCheckpointCorruptInjection:
    def _service(self, seed=5):
        workload = BurstyWorkload(
            WorkloadParams(num_workers=10, num_tasks=12, num_instances=2), seed=seed
        )
        return StreamingService(
            MQAGreedy(), workload.quality_model,
            config=StreamConfig(round_interval=0.5), seed=seed,
        )

    def test_corrupt_latest_falls_back_to_predecessor(self, tmp_path):
        writer = CheckpointWriter(
            tmp_path, keep=2, fsync=False,
            faults=FaultPlan.parse("corrupt checkpoint 2").injector(),
        )
        service = self._service()
        writer.write(service.engine, journal_seq=1, drained_assignments=0)
        service.drain(1.0)
        writer.write(service.engine, journal_seq=2, drained_assignments=0)
        record = CheckpointWriter.load_latest(tmp_path)
        assert record is not None
        assert record["journal_seq"] == 1  # the corrupted newest was skipped

    def test_corrupting_the_only_checkpoint_loads_none(self, tmp_path):
        writer = CheckpointWriter(
            tmp_path, keep=2, fsync=False,
            faults=FaultPlan.parse("corrupt checkpoint 1").injector(),
        )
        writer.write(self._service().engine, journal_seq=1, drained_assignments=0)
        assert CheckpointWriter.load_latest(tmp_path) is None


class TestEmptyPlanIsInert:
    def test_journal_with_empty_plan_matches_no_injector(self, tmp_path):
        armed = OpJournal(
            tmp_path / "a.journal", fsync=False,
            faults=FaultPlan.parse("").injector(),
        )
        plain = OpJournal(tmp_path / "b.journal", fsync=False)
        for journal in (armed, plain):
            for i in range(4):
                journal.append(("drain", float(i)))
            journal.close()
        assert (tmp_path / "a.journal").read_bytes() == (
            tmp_path / "b.journal"
        ).read_bytes()
