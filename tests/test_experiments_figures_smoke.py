"""Smoke tests: every registered figure function runs end to end.

The benches exercise the figures at the committed reference scale;
these run a representative subset at a minuscule scale so the plain
test suite catches registry/wiring breakage quickly.
"""

import math

import pytest

from repro.experiments.figures import FIGURES, run_figure_by_id

# One representative per figure family: accuracy, WP/WoP sweep,
# standard sweep (synthetic + real), multi-panel, combo sweep.
_REPRESENTATIVES = ["fig10", "fig11", "fig12", "fig18_19", "fig22", "fig26"]


@pytest.mark.parametrize("figure_id", _REPRESENTATIVES)
def test_figure_runs_at_tiny_scale(figure_id):
    result = run_figure_by_id(figure_id, scale=0.01, seed=3)
    assert result.figure_id == figure_id
    assert result.x_labels
    assert result.algorithms
    expected_points = len(result.x_labels) * len(result.algorithms)
    assert len(result.points) == expected_points
    for point in result.points:
        assert point.cpu_seconds >= 0.0
        assert point.cost >= 0.0
        assert not math.isinf(point.quality)


def test_registry_functions_are_callable():
    for figure_id, (function, description) in FIGURES.items():
        assert callable(function)
        assert description


def test_every_figure_supports_repeats():
    import inspect

    for figure_id, (function, _) in FIGURES.items():
        assert "repeats" in inspect.signature(function).parameters, figure_id


def test_repeats_average_changes_point_values():
    single = run_figure_by_id("fig21", scale=0.01, seed=3, repeats=1)
    averaged = run_figure_by_id("fig21", scale=0.01, seed=3, repeats=2)
    assert single.x_labels == averaged.x_labels
    assert single.algorithms == averaged.algorithms
    # RANDOM is seed-sensitive, so the 2-seed average must differ from
    # the single-seed value at some sweep point.
    assert any(
        s.quality != a.quality
        for s, a in zip(single.points, averaged.points)
        if s.algorithm == "RANDOM"
    )
