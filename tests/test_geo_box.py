"""Tests for repro.geo.box."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.box import Box, max_box_distance, min_box_distance
from repro.geo.point import Point

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
half = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)


def box_strategy():
    return st.builds(
        lambda x, y, hx, hy: Box.from_center(Point(x, y), hx, hy),
        coord, coord, half, half,
    )


class TestBoxConstruction:
    def test_from_point_is_degenerate(self):
        box = Box.from_point(Point(0.3, 0.4))
        assert box.is_degenerate
        assert box.center == Point(0.3, 0.4)

    def test_from_center_bounds(self):
        box = Box.from_center(Point(0.5, 0.5), 0.1, 0.2)
        assert box.x_lo == pytest.approx(0.4)
        assert box.x_hi == pytest.approx(0.6)
        assert box.y_lo == pytest.approx(0.3)
        assert box.y_hi == pytest.approx(0.7)

    def test_malformed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Box(0.5, 0.4, 0.0, 1.0)

    def test_negative_half_width_rejected(self):
        with pytest.raises(ValueError):
            Box.from_center(Point(0.5, 0.5), -0.1, 0.1)

    def test_clipped_to_unit_square(self):
        box = Box.from_center(Point(0.0, 1.0), 0.2, 0.2).clipped()
        assert box.x_lo == 0.0
        assert box.y_hi == 1.0
        assert box.x_hi == pytest.approx(0.2)
        assert box.y_lo == pytest.approx(0.8)

    def test_interval_accessor(self):
        box = Box(0.1, 0.2, 0.3, 0.4)
        assert box.interval(0) == (0.1, 0.2)
        assert box.interval(1) == (0.3, 0.4)
        with pytest.raises(IndexError):
            box.interval(2)

    def test_contains(self):
        box = Box(0.0, 0.5, 0.0, 0.5)
        assert box.contains(Point(0.25, 0.25))
        assert box.contains(Point(0.5, 0.5))  # boundary inclusive
        assert not box.contains(Point(0.6, 0.25))


class TestBoxDistances:
    def test_overlapping_boxes_have_zero_min_distance(self):
        a = Box(0.0, 0.5, 0.0, 0.5)
        b = Box(0.4, 0.9, 0.4, 0.9)
        assert min_box_distance(a, b) == 0.0

    def test_disjoint_boxes_min_distance(self):
        a = Box(0.0, 0.1, 0.0, 0.1)
        b = Box(0.4, 0.5, 0.4, 0.5)
        assert min_box_distance(a, b) == pytest.approx((2 * 0.3**2) ** 0.5)

    def test_point_boxes_reduce_to_euclidean(self):
        a = Box.from_point(Point(0.0, 0.0))
        b = Box.from_point(Point(0.3, 0.4))
        assert min_box_distance(a, b) == pytest.approx(0.5)
        assert max_box_distance(a, b) == pytest.approx(0.5)

    def test_max_distance_is_corner_to_corner(self):
        a = Box(0.0, 0.1, 0.0, 0.1)
        b = Box(0.8, 0.9, 0.8, 0.9)
        assert max_box_distance(a, b) == pytest.approx((2 * 0.9**2) ** 0.5)

    @given(box_strategy(), box_strategy())
    def test_min_not_exceeding_max(self, a, b):
        assert min_box_distance(a, b) <= max_box_distance(a, b) + 1e-12

    @given(box_strategy(), box_strategy())
    def test_distance_symmetry(self, a, b):
        assert min_box_distance(a, b) == pytest.approx(min_box_distance(b, a))
        assert max_box_distance(a, b) == pytest.approx(max_box_distance(b, a))

    @given(box_strategy())
    def test_self_min_distance_zero(self, box):
        assert min_box_distance(box, box) == 0.0

    @given(
        box_strategy(), box_strategy(),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bounds_contain_sampled_point_distances(self, a, b, u1, u2, u3, u4):
        """Any point-pair distance lies within [min, max] box distance."""
        pa = Point(a.x_lo + u1 * (a.x_hi - a.x_lo), a.y_lo + u2 * (a.y_hi - a.y_lo))
        pb = Point(b.x_lo + u3 * (b.x_hi - b.x_lo), b.y_lo + u4 * (b.y_hi - b.y_lo))
        distance = pa.distance_to(pb)
        assert min_box_distance(a, b) - 1e-9 <= distance <= max_box_distance(a, b) + 1e-9
