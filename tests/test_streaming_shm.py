"""Shared-memory hygiene for the fused process backend.

The contract under test: every ``multiprocessing.shared_memory``
segment the engine family creates is unlinked exactly once, by the
parent — on arena replacement, on engine close, or from the
registry's ``atexit`` hook — and the shared resource tracker never
prints a warning or a KeyError, *including* when a worker is
SIGKILLed mid-stream.  The subprocess tests run a whole engine
lifecycle in a fresh interpreter so the tracker's own shutdown output
is observable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from multiprocessing.shared_memory import SharedMemory

from repro.core import MQAGreedy
from repro.streaming import (
    ShardingConfig,
    StreamConfig,
    prepared_sharded_engine,
)
from repro.streaming.shm import SegmentRegistry, _ShmArena, _pack_arrays, _take
from repro.workloads import BurstyWorkload, WorkloadParams

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_NOISE = ("resource_tracker", "leaked", "KeyError", "Traceback")


def _run_script(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=_REPO,
        env={**os.environ, "PYTHONPATH": os.path.join(_REPO, "src")},
    )


def _assert_clean(proc: subprocess.CompletedProcess) -> None:
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    for needle in _NOISE:
        assert needle not in proc.stderr, proc.stderr
    assert "OK" in proc.stdout, proc.stdout


def _no_repro_segments() -> None:
    if os.path.isdir("/dev/shm"):
        leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("repro-")]
        assert not leftovers, leftovers


_PRELUDE = """
    from repro.core import MQAGreedy
    from repro.streaming import (
        ShardingConfig, StreamConfig, prepared_sharded_engine,
    )
    from repro.workloads import BurstyWorkload, WorkloadParams

    workload = BurstyWorkload(
        WorkloadParams(num_workers=60, num_tasks=60, num_instances=3), seed=3
    )
    engine, _ = prepared_sharded_engine(
        workload,
        MQAGreedy(),
        config=StreamConfig(round_interval=0.5, budget=20.0),
        sharding=ShardingConfig(num_shards=4, backend="process"),
        seed=3,
    )
"""


class TestLifecycleHygiene:
    def test_kill_mid_stream_leaves_no_segments(self):
        """SIGKILL a pinned worker: the supervisor respawns it, the
        stream completes, close() still reclaims every segment, and
        the tracker stays silent."""
        proc = _run_script(
            _PRELUDE
            + """
    import os, signal

    engine.advance_to(1.0)
    runner = engine._fused_builder._runner
    victim = runner._procs[0]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()
    engine.advance_to(2.0)
    assert runner.respawns_total == 1, runner.respawns_total
    assert runner._procs[0].pid != victim.pid
    assert not engine.degraded
    engine.advance_to(3.0)
    engine.close()
    leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("repro-")]
    assert not leftovers, leftovers
    print("OK")
"""
        )
        _assert_clean(proc)
        _no_repro_segments()

    def test_dropped_engine_cleans_up_at_exit(self):
        """An engine abandoned without close(): the registry's atexit
        hook unlinks everything before the tracker can complain."""
        proc = _run_script(
            _PRELUDE
            + """
    engine.advance_to(1.5)
    # Deliberately no close(): the pid-guarded atexit hook owns it.
    print("OK")
"""
        )
        _assert_clean(proc)
        _no_repro_segments()

    def test_context_manager_closes_runner(self):
        """with-block close stops the workers and unlinks segments."""
        proc = _run_script(
            _PRELUDE
            + """
    import os

    with engine:
        engine.advance_to(1.5)
        runner = engine._fused_builder._runner
        pids = [p.pid for p in runner._procs]
    assert runner._closed
    for p in runner._procs:
        assert not p.is_alive(), pids
    leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("repro-")]
    assert not leftovers, leftovers
    print("OK")
"""
        )
        _assert_clean(proc)
        _no_repro_segments()


class TestArenaAndRegistry:
    def test_pack_take_roundtrip(self):
        registry = SegmentRegistry()
        arena = _ShmArena(prefix=f"repro-t{os.getpid()}-rt", registry=registry)
        arrays = [
            np.arange(5, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.linspace(0.0, 1.0, 7),
            None,
        ]
        descs = _pack_arrays(arena, arrays)
        segment = SharedMemory(name=arena.name)
        try:
            out = [_take(segment, d, copy=True) for d in descs]
        finally:
            segment.close()
        np.testing.assert_array_equal(out[0], arrays[0])
        assert out[1].size == 0 and out[1].dtype == np.float64
        np.testing.assert_array_equal(out[2], arrays[2])
        assert out[3] is None
        registry.close()

    def test_growth_replaces_and_unlinks_old_segment(self):
        registry = SegmentRegistry()
        arena = _ShmArena(prefix=f"repro-t{os.getpid()}-gr", registry=registry)
        arena.begin(16)
        first = arena.name
        arena.begin(1 << 20)  # forces a doubling past the first capacity
        second = arena.name
        assert second != first
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=first)
        registry.close()
        with pytest.raises(FileNotFoundError):
            SharedMemory(name=second)

    def test_release_is_idempotent(self):
        registry = SegmentRegistry()
        registry.release("repro-never-created")
        arena = _ShmArena(prefix=f"repro-t{os.getpid()}-id", registry=registry)
        arena.begin(16)
        name = arena.name
        registry.release(name)
        registry.release(name)
        registry.close()
        registry.close()
