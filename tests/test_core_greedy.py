"""Tests for repro.core.greedy (MQA_Greedy)."""

import numpy as np
import pytest

from repro.core.exact import exact_assignment
from repro.core.greedy import GreedyConfig, MQAGreedy
from repro.core.greedy_reference import ReferenceGreedy

from repro.testing import make_problem


RNG = np.random.default_rng(0)


def run_greedy(problem, budget_current=50.0, budget_future=0.0, config=None):
    return MQAGreedy(config).assign(problem, budget_current, budget_future, RNG)


class TestGreedyConfig:
    def test_defaults(self):
        config = GreedyConfig()
        assert config.delta == 0.5
        assert config.use_dominance_pruning

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            GreedyConfig(delta=1.0)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            GreedyConfig(candidate_cap=0)


class TestGreedyInvariants:
    def test_no_worker_or_task_reused(self, small_problem):
        result = run_greedy(small_problem)
        workers = [p.worker.id for p in result.pairs]
        tasks = [p.task.id for p in result.pairs]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)

    def test_budget_respected(self, small_problem):
        for budget in (1.0, 3.0, 10.0, 100.0):
            result = run_greedy(small_problem, budget_current=budget)
            assert result.total_cost <= budget + 1e-6

    def test_only_current_pairs_materialized(self, mixed_problem):
        result = run_greedy(mixed_problem, budget_future=50.0)
        assert all(p.is_current for p in result.pairs)

    def test_considered_rows_may_include_predicted(self, mixed_problem):
        result = run_greedy(mixed_problem, budget_future=50.0)
        assert len(result.considered_rows) >= len(result.rows)

    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        result = run_greedy(problem)
        assert result.pairs == []
        assert result.total_quality == 0.0

    def test_zero_budget_assigns_nothing(self, small_problem):
        result = run_greedy(small_problem, budget_current=0.0)
        assert result.pairs == []

    def test_deterministic_across_calls(self, small_problem):
        first = run_greedy(small_problem, budget_current=8.0)
        second = run_greedy(small_problem, budget_current=8.0)
        assert first.rows == second.rows

    def test_roughly_monotone_in_budget(self, small_problem):
        """More budget should broadly help (greedy is not strictly
        monotone — see test_properties — but must trend upward)."""
        qualities = [
            run_greedy(small_problem, budget_current=b).total_quality
            for b in (2.0, 5.0, 10.0, 50.0)
        ]
        assert qualities[0] < qualities[-1]
        assert all(b >= 0.5 * a for a, b in zip(qualities, qualities[1:]))


class TestGreedyQuality:
    def test_matches_reference_implementation(self):
        for seed in range(6):
            problem = make_problem(seed=seed, num_workers=7, num_tasks=6)
            fast = run_greedy(problem, budget_current=10.0)
            slow = ReferenceGreedy().assign(problem, 10.0, 0.0, RNG)
            assert fast.rows == slow.rows

    def test_matches_reference_with_predicted(self):
        for seed in range(4):
            problem = make_problem(
                seed=seed, num_workers=6, num_tasks=5,
                num_predicted_workers=3, num_predicted_tasks=3,
            )
            fast = run_greedy(problem, budget_current=8.0, budget_future=8.0)
            slow = ReferenceGreedy().assign(problem, 8.0, 8.0, RNG)
            assert fast.rows == slow.rows

    def test_near_optimal_on_small_instances(self):
        """Greedy stays within a reasonable factor of the exact optimum."""
        ratios = []
        for seed in range(8):
            problem = make_problem(seed=seed, num_workers=5, num_tasks=5)
            budget = 6.0
            result = run_greedy(problem, budget_current=budget)
            _, optimum = exact_assignment(problem, budget)
            if optimum > 0:
                ratios.append(result.total_quality / optimum)
                assert result.total_quality <= optimum + 1e-9
        assert np.mean(ratios) > 0.75

    def test_loose_budget_assigns_min_of_workers_tasks(self):
        problem = make_problem(seed=1, num_workers=8, num_tasks=5)
        result = run_greedy(problem, budget_current=1e6)
        # Deadline 2.0 and velocity 0.3 make every pair valid here.
        assert result.num_assigned == 5


class TestPruningAblation:
    def test_pruning_does_not_change_realized_quality_much(self):
        """Pruning is a performance device; results should be identical
        (dominated pairs can never be the Eq. 10 winner)."""
        for seed in range(5):
            problem = make_problem(seed=seed, num_workers=8, num_tasks=8)
            full = run_greedy(problem, budget_current=10.0)
            no_prune = run_greedy(
                problem,
                budget_current=10.0,
                config=GreedyConfig(
                    use_dominance_pruning=False, use_probability_pruning=False,
                    candidate_cap=512,
                ),
            )
            assert full.total_quality == pytest.approx(
                no_prune.total_quality, rel=0.05
            )
