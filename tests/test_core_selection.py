"""Tests for repro.core.selection (Eqs. 9 and 10)."""

import numpy as np
import pytest

from repro.core.selection import budget_confident_rows, select_best_row
from test_core_pruning import pool_from_rows


class TestBudgetConfidentRows:
    def test_deterministic_feasible_kept(self):
        pool = pool_from_rows([(3.0, 3.0, 1.0, 1.0)])
        kept = budget_confident_rows(pool, np.array([0]), 5.0, 10.0, delta=0.5)
        assert kept.tolist() == [0]

    def test_deterministic_infeasible_dropped(self):
        pool = pool_from_rows([(6.0, 6.0, 1.0, 1.0)])
        kept = budget_confident_rows(pool, np.array([0]), 5.0, 10.0, delta=0.5)
        assert kept.size == 0

    def test_stochastic_confidence_threshold(self):
        # Cost mean 4, var 1; spent 5, budget 10: headroom 1 -> Phi(1) ~ 0.84.
        pool = pool_from_rows([(2.0, 6.0, 1.0, 1.0, 1.0, 0.0)])
        assert budget_confident_rows(pool, np.array([0]), 5.0, 10.0, 0.8).tolist() == [0]
        assert budget_confident_rows(pool, np.array([0]), 5.0, 10.0, 0.9).size == 0

    def test_empty_rows(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0)])
        assert budget_confident_rows(pool, np.array([], dtype=int), 0, 10, 0.5).size == 0


class TestSelectBestRow:
    def test_deterministic_picks_max_quality(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0), (5.0, 5.0, 3.0, 3.0)])
        assert select_best_row(pool, np.array([0, 1])) == 1

    def test_quality_tie_broken_by_cost(self):
        pool = pool_from_rows([(5.0, 5.0, 2.0, 2.0), (1.0, 1.0, 2.0, 2.0)])
        assert select_best_row(pool, np.array([0, 1])) == 1

    def test_full_tie_broken_by_row_index(self):
        pool = pool_from_rows([(1.0, 1.0, 2.0, 2.0), (1.0, 1.0, 2.0, 2.0)])
        assert select_best_row(pool, np.array([0, 1])) == 0

    def test_single_candidate(self):
        pool = pool_from_rows([(1.0, 1.0, 2.0, 2.0)])
        assert select_best_row(pool, np.array([0])) == 0

    def test_empty_rejected(self):
        pool = pool_from_rows([(1.0, 1.0, 2.0, 2.0)])
        with pytest.raises(ValueError):
            select_best_row(pool, np.array([], dtype=int))

    def test_high_variance_pair_can_win_against_crowd(self):
        """Eq. 10 is about being the maximum, not the best mean.

        One stochastic pair with a decent mean beats a crowd of
        deterministic pairs that are each certainly beaten by another
        deterministic pair (their products contain a zero factor).
        """
        pool = pool_from_rows(
            [
                (1.0, 1.0, 1.0, 1.0),            # beaten by row 1 for sure
                (1.0, 1.0, 1.5, 1.5),            # the deterministic max
                (1.0, 1.0, 0.5, 2.5, 0.0, 1.0),  # stochastic mean 1.5
            ]
        )
        best = select_best_row(pool, np.arange(3))
        assert best in (1, 2)
        # Row 0 can never win: Pr{q_0 > q_1} = 0.
        assert best != 0

    def test_stochastic_favorite_with_higher_mean_wins(self):
        pool = pool_from_rows(
            [(1.0, 1.0, 1.0, 1.0), (1.0, 1.0, 0.0, 6.0, 0.0, 0.5)]
        )
        # Mean 3.0 +- 0.7 vs deterministic 1.0: the stochastic pair wins.
        assert select_best_row(pool, np.array([0, 1])) == 1
