"""Tests for repro.prediction.regression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction.regression import fit_line, predict_next_linear

counts = st.lists(
    st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=8
)


class TestFitLine:
    def test_exact_line_recovered(self):
        slope, intercept = fit_line([3.0, 5.0, 7.0])  # y = 2x + 1
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_constant_series(self):
        slope, intercept = fit_line([4.0, 4.0, 4.0, 4.0])
        assert slope == pytest.approx(0.0)
        assert intercept == pytest.approx(4.0)

    def test_single_observation(self):
        slope, intercept = fit_line([7.0])
        assert slope == 0.0
        assert intercept == 7.0

    def test_two_points(self):
        slope, intercept = fit_line([1.0, 3.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_line([])

    def test_matches_numpy_polyfit(self):
        rng = np.random.default_rng(1)
        ys = rng.uniform(0, 10, size=6)
        xs = np.arange(1, 7)
        expected_slope, expected_intercept = np.polyfit(xs, ys, 1)
        slope, intercept = fit_line(ys.tolist())
        assert slope == pytest.approx(float(expected_slope))
        assert intercept == pytest.approx(float(expected_intercept))


class TestPredictNext:
    def test_linear_trend_extrapolated(self):
        assert predict_next_linear([2.0, 4.0, 6.0]) == pytest.approx(8.0)

    def test_falling_trend_can_go_negative(self):
        assert predict_next_linear([4.0, 2.0, 0.0]) == pytest.approx(-2.0)

    def test_single_value_persists(self):
        assert predict_next_linear([5.0]) == pytest.approx(5.0)

    def test_paper_example_cells(self):
        """Table III: [4, 3, 4] -> 4 and [1, 1, 1] -> 1 (after rounding)."""
        assert round(predict_next_linear([4.0, 3.0, 4.0])) == 4
        assert round(predict_next_linear([2.0, 3.0, 3.0])) == pytest.approx(4)  # LR gives 3.67
        assert round(predict_next_linear([0.0, 1.0, 0.0])) == 0
        assert round(predict_next_linear([1.0, 1.0, 1.0])) == 1

    @given(counts)
    def test_prediction_is_finite(self, ys):
        assert np.isfinite(predict_next_linear(ys))

    @given(st.floats(min_value=0, max_value=100), st.integers(min_value=1, max_value=8))
    def test_constant_history_predicts_constant(self, value, length):
        assert predict_next_linear([value] * length) == pytest.approx(value, abs=1e-6)
