"""Tests for repro.uncertainty.comparison (Eqs. 7-9)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.comparison import (
    prob_greater,
    prob_less_or_equal,
    prob_within_budget,
)
from repro.uncertainty.values import UncertainValue


def uv(mean, var=0.0, spread=3.0):
    return UncertainValue(mean=mean, variance=var, lower=mean - spread, upper=mean + spread)


class TestProbGreater:
    def test_deterministic_strict(self):
        assert prob_greater(uv(2.0), uv(1.0)) == 1.0
        assert prob_greater(uv(1.0), uv(2.0)) == 0.0

    def test_deterministic_tie_is_half(self):
        assert prob_greater(uv(1.0), uv(1.0)) == 0.5

    def test_equal_means_with_variance(self):
        assert prob_greater(uv(1.0, 0.5), uv(1.0, 0.5)) == pytest.approx(0.5)

    def test_higher_mean_wins_more_often(self):
        assert prob_greater(uv(2.0, 0.5), uv(1.0, 0.5)) > 0.5

    def test_complement(self):
        p = prob_greater(uv(1.3, 0.2), uv(1.7, 0.4))
        q = prob_greater(uv(1.7, 0.4), uv(1.3, 0.2))
        assert p + q == pytest.approx(1.0)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(5)
        a_mean, a_var = 1.5, 0.3
        b_mean, b_var = 1.2, 0.5
        a = rng.normal(a_mean, a_var**0.5, 300_000)
        b = rng.normal(b_mean, b_var**0.5, 300_000)
        empirical = float((a > b).mean())
        assert prob_greater(uv(a_mean, a_var), uv(b_mean, b_var)) == pytest.approx(
            empirical, abs=5e-3
        )

    @given(
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0, max_value=2),
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0, max_value=2),
    )
    def test_in_unit_interval(self, ma, va, mb, vb):
        p = prob_greater(uv(ma, va, spread=10.0), uv(mb, vb, spread=10.0))
        assert 0.0 <= p <= 1.0


class TestProbLessOrEqual:
    def test_deterministic(self):
        assert prob_less_or_equal(uv(1.0), uv(2.0)) == 1.0
        assert prob_less_or_equal(uv(2.0), uv(1.0)) == 0.0

    def test_tie_is_half(self):
        assert prob_less_or_equal(uv(1.0), uv(1.0)) == 0.5

    def test_consistency_with_prob_greater(self):
        a, b = uv(1.4, 0.3), uv(1.6, 0.2)
        assert prob_less_or_equal(a, b) == pytest.approx(1.0 - prob_greater(a, b))


class TestProbWithinBudget:
    def test_deterministic_fit(self):
        assert prob_within_budget(5.0, UncertainValue.certain(3.0), 10.0) == 1.0

    def test_deterministic_overflow(self):
        assert prob_within_budget(8.0, UncertainValue.certain(3.0), 10.0) == 0.0

    def test_stochastic_half_at_boundary(self):
        cost = UncertainValue(mean=2.0, variance=0.5, lower=0.0, upper=4.0)
        assert prob_within_budget(8.0, cost, 10.0) == pytest.approx(0.5)

    def test_generous_budget_near_one(self):
        cost = UncertainValue(mean=1.0, variance=0.1, lower=0.0, upper=2.0)
        assert prob_within_budget(0.0, cost, 100.0) > 0.999

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(9)
        cost_mean, cost_var = 3.0, 1.2
        samples = rng.normal(cost_mean, cost_var**0.5, 300_000)
        budget, spent = 10.0, 6.0
        empirical = float((spent + samples <= budget).mean())
        cost = UncertainValue(cost_mean, cost_var, cost_mean - 10, cost_mean + 10)
        assert prob_within_budget(spent, cost, budget) == pytest.approx(
            empirical, abs=5e-3
        )
