"""Tests for repro.prediction.grid_predictor."""

import numpy as np
import pytest

from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.prediction.grid_predictor import GridPredictor
from repro.prediction.predictors import LastValuePredictor, MeanPredictor


def points_in_cell(grid: GridIndex, cell: int, count: int) -> list[Point]:
    center = grid.cell_center(cell)
    return [center] * count


class TestGridPredictor:
    def test_requires_positive_window(self):
        with pytest.raises(ValueError):
            GridPredictor(GridIndex(4), 0)

    def test_not_ready_before_observe(self):
        predictor = GridPredictor(GridIndex(4), 3)
        assert not predictor.is_ready
        with pytest.raises(RuntimeError):
            predictor.predict_counts()

    def test_constant_stream_predicted_exactly(self):
        grid = GridIndex(2)
        predictor = GridPredictor(grid, 3)
        arrivals = points_in_cell(grid, 1, 5) + points_in_cell(grid, 2, 2)
        for _ in range(3):
            predictor.observe(arrivals)
        counts, raw = predictor.predict_counts()
        assert counts[1] == 5
        assert counts[2] == 2
        assert counts[0] == 0
        assert counts[3] == 0

    def test_linear_trend_extrapolated_per_cell(self):
        grid = GridIndex(2)
        predictor = GridPredictor(grid, 3)
        for count in (1, 2, 3):
            predictor.observe(points_in_cell(grid, 0, count))
        counts, _ = predictor.predict_counts()
        assert counts[0] == 4

    def test_falling_trend_clamped_to_zero(self):
        grid = GridIndex(1)
        predictor = GridPredictor(grid, 3)
        for count in (4, 2, 0):
            predictor.observe(points_in_cell(grid, 0, count))
        counts, raw = predictor.predict_counts()
        assert counts[0] == 0
        assert raw[0] < 0.0

    def test_window_slides(self):
        grid = GridIndex(1)
        predictor = GridPredictor(grid, 2, predictor=MeanPredictor())
        for count in (10, 4, 6):
            predictor.observe(points_in_cell(grid, 0, count))
        counts, _ = predictor.predict_counts()
        assert counts[0] == 5  # mean of the last two (4, 6)
        assert predictor.history_length == 2

    def test_observe_counts_validation(self):
        predictor = GridPredictor(GridIndex(2), 3)
        with pytest.raises(ValueError):
            predictor.observe_counts(np.zeros(3))
        with pytest.raises(ValueError):
            predictor.observe_counts(np.array([-1, 0, 0, 0]))

    def test_custom_predictor_is_used(self):
        grid = GridIndex(1)
        predictor = GridPredictor(grid, 3, predictor=LastValuePredictor())
        for count in (7, 1, 9):
            predictor.observe(points_in_cell(grid, 0, count))
        counts, _ = predictor.predict_counts()
        assert counts[0] == 9


class TestPredictSamples:
    def test_samples_match_counts_and_lie_in_cells(self, rng):
        grid = GridIndex(3)
        predictor = GridPredictor(grid, 2)
        arrivals = points_in_cell(grid, 4, 6) + points_in_cell(grid, 8, 3)
        predictor.observe(arrivals)
        predictor.observe(arrivals)
        predicted = predictor.predict(rng, location_std=(0.1, 0.1))
        assert predicted.total == 9
        assert len(predicted.samples) == 9
        assert len(predicted.boxes) == 9
        in_cell_4 = sum(1 for s in predicted.samples if grid.cell_of(s) == 4)
        assert in_cell_4 == 6

    def test_boxes_have_kde_bandwidth(self, rng):
        grid = GridIndex(2)
        predictor = GridPredictor(grid, 1)
        predictor.observe(points_in_cell(grid, 0, 4))
        predicted = predictor.predict(rng, location_std=(0.2, 0.2))
        from repro.prediction.kde import kde_bandwidth

        h = kde_bandwidth(0.2, 4)
        box = predicted.boxes[0]
        sample = predicted.samples[0]
        # Clipping can shrink the box, never grow it.
        assert box.x_hi - box.x_lo <= 2 * h + 1e-12
        assert box.contains(sample)

    def test_empty_prediction(self, rng):
        grid = GridIndex(2)
        predictor = GridPredictor(grid, 2)
        predictor.observe([])
        predicted = predictor.predict(rng)
        assert predicted.total == 0
        assert predicted.samples == []

    def test_estimated_std_used_when_not_given(self, rng):
        grid = GridIndex(4)
        predictor = GridPredictor(grid, 2)
        predictor.observe(points_in_cell(grid, 0, 3) + points_in_cell(grid, 15, 3))
        predicted = predictor.predict(rng)
        assert predicted.total == 6


class TestPredictedCountNear:
    def test_sums_cells_in_disc(self):
        grid = GridIndex(4)
        predictor = GridPredictor(grid, 2, LastValuePredictor())
        predictor.observe(points_in_cell(grid, 0, 5) + points_in_cell(grid, 15, 2))
        # A disc hugging cell 0's center only counts that corner.
        near_origin = predictor.predicted_count_near(grid.cell_center(0), 0.1)
        assert near_origin == 5.0
        # Covering the whole square counts everything.
        everywhere = predictor.predicted_count_near(Point(0.5, 0.5), 1.0)
        assert everywhere == 7.0

    def test_requires_observation(self):
        predictor = GridPredictor(GridIndex(3), 2)
        with pytest.raises(RuntimeError):
            predictor.predicted_count_near(Point(0.5, 0.5), 0.2)
