"""Differential tests: streaming layer vs. batch layer.

Two contracts are enforced bit-for-bit:

1. the streaming engine with instance-aligned micro-batch rounds
   reproduces the batch :class:`SimulationEngine`'s
   :class:`SimulationResult` exactly (assignments, quality, costs,
   budget accounting, prediction errors) on seeded workloads;
2. ``build_problem_sparse`` emits a pool row-for-row identical to the
   dense ``build_problem`` on the same inputs.

``cpu_seconds`` is wall-clock and is the only field excluded.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MQADivideConquer, MQAGreedy, RandomAssigner
from repro.model.instance import build_problem
from repro.model.sparse import SparseBuildStats, build_problem_sparse
from repro.simulation import EngineConfig, SimulationEngine
from repro.streaming import StreamConfig, run_stream
from repro.testing import (
    make_predicted_tasks,
    make_predicted_workers,
    make_tasks,
    make_workers,
)
from repro.workloads import BurstyWorkload, SyntheticWorkload, WorkloadParams
from repro.workloads.quality import HashQualityModel

_COMPARED_FIELDS = (
    "instance",
    "quality",
    "cost",
    "assigned",
    "num_workers",
    "num_tasks",
    "num_predicted_workers",
    "num_predicted_tasks",
    "num_pairs",
    "worker_prediction_error",
    "task_prediction_error",
)

_POOL_COLUMNS = (
    "worker_idx",
    "task_idx",
    "cost_mean",
    "cost_var",
    "cost_lb",
    "cost_ub",
    "quality_mean",
    "quality_var",
    "quality_lb",
    "quality_ub",
    "existence",
    "is_current",
)


def assert_results_identical(batch, stream):
    """Everything except wall-clock must match exactly."""
    assert len(batch.instances) == len(stream.instances)
    for b, s in zip(batch.instances, stream.instances):
        for name in _COMPARED_FIELDS:
            assert getattr(b, name) == getattr(s, name), (b.instance, name)
    # The audit trail (budget accounting per pair) must be identical,
    # including float equality of quality/cost/release times.
    assert batch.assignments == stream.assignments


def assert_pools_identical(dense, sparse):
    assert len(dense.pool) == len(sparse.pool)
    for name in _POOL_COLUMNS:
        np.testing.assert_array_equal(
            getattr(dense.pool, name), getattr(sparse.pool, name), err_msg=name
        )
    assert dense.num_current_workers == sparse.num_current_workers
    assert dense.num_current_tasks == sparse.num_current_tasks


class TestStreamingReproducesBatch:
    """Instance-aligned streaming == batch framework, exactly."""

    @pytest.mark.parametrize(
        "seed,make_assigner,use_prediction",
        [
            (11, MQAGreedy, True),
            (23, MQADivideConquer, True),
            (7, MQAGreedy, False),
        ],
    )
    def test_synthetic_workload(self, seed, make_assigner, use_prediction):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=220, num_tasks=220, num_instances=7),
            seed=seed,
        )
        engine_config = EngineConfig(budget=35.0, use_prediction=use_prediction)
        batch = SimulationEngine(
            workload, make_assigner(), engine_config, seed=seed
        ).run()
        stream = run_stream(
            workload,
            make_assigner(),
            config=StreamConfig.from_engine_config(engine_config),
            seed=seed,
        )
        assert batch.total_assigned > 0
        assert_results_identical(batch, stream)

    def test_bursty_workload(self):
        """Second seeded workload family, including the RANDOM assigner
        (exercises identical RNG stream consumption)."""
        workload = BurstyWorkload(
            WorkloadParams(num_workers=180, num_tasks=180, num_instances=6),
            seed=41,
        )
        engine_config = EngineConfig(budget=30.0)
        batch = SimulationEngine(
            workload, RandomAssigner(), engine_config, seed=41
        ).run()
        stream = run_stream(
            workload,
            RandomAssigner(),
            config=StreamConfig.from_engine_config(engine_config),
            seed=41,
        )
        assert batch.total_assigned > 0
        assert_results_identical(batch, stream)

    def test_dense_builder_path_matches_too(self):
        """The equivalence is independent of the pair builder used."""
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=120, num_tasks=120, num_instances=5),
            seed=3,
        )
        engine_config = EngineConfig(budget=25.0)
        batch = SimulationEngine(workload, MQAGreedy(), engine_config, seed=3).run()
        stream = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig.from_engine_config(
                engine_config, use_sparse_builder=False
            ),
            seed=3,
        )
        assert_results_identical(batch, stream)


class TestLastRoundPredictionCutoff:
    """The final-round prediction cutoff mirrors the batch engine.

    Batch predicts iff ``instance + 1 < num_instances``; streaming iff
    ``now + round_interval < end_time``.  With ``end_time`` exactly one
    round away these agree on skipping the final forecast, and no
    earlier round drops one the batch path keeps.
    """

    @staticmethod
    def _engines(num_instances: int, round_interval: float = 1.0):
        workload = SyntheticWorkload(
            WorkloadParams(
                num_workers=120, num_tasks=120, num_instances=num_instances
            ),
            seed=13,
        )
        engine_config = EngineConfig(budget=25.0, use_prediction=True)
        batch = SimulationEngine(workload, MQAGreedy(), engine_config, seed=13).run()
        stream = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig.from_engine_config(
                engine_config, round_interval=round_interval
            ),
            seed=13,
        )
        return batch, stream

    def test_final_round_skips_prediction_in_both_engines(self):
        batch, stream = self._engines(num_instances=4)
        assert_results_identical(batch, stream)
        # Earlier rounds do predict (the cutoff is not over-eager)...
        assert batch.instances[-2].num_predicted_workers > 0
        assert stream.instances[-2].num_predicted_workers > 0
        # ...and the round exactly one interval before end_time does not.
        assert batch.instances[-1].num_predicted_workers == 0
        assert batch.instances[-1].num_predicted_tasks == 0
        assert stream.instances[-1].num_predicted_workers == 0
        assert stream.instances[-1].num_predicted_tasks == 0

    def test_no_round_at_or_past_end_time(self):
        from repro.streaming import prepared_engine
        from repro.workloads import SyntheticWorkload as SW

        workload = SW(
            WorkloadParams(num_workers=40, num_tasks=40, num_instances=3), seed=5
        )
        engine, _ = prepared_engine(
            workload,
            MQAGreedy(),
            config=StreamConfig(round_interval=1.0, budget=20.0),
            seed=5,
        )
        engine.advance_to(100.0)
        # Rounds fire at 0, 1, 2 only: the round at end_time == 3 never
        # runs, matching the batch loop's R instances.
        assert engine.rounds_run == 3
        assert engine.clock == 2.0

    def test_subinstance_rounds_keep_the_strict_cutoff(self):
        """With a finer interval, only the literal final round skips."""
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=80, num_tasks=80, num_instances=3),
            seed=21,
        )
        stream = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig(round_interval=0.5, budget=20.0, use_prediction=True),
            seed=21,
        )
        # Rounds at 0.0 .. 2.5; only the 2.5 round (end_time exactly one
        # interval away) must skip the forecast.
        assert len(stream.instances) == 6
        assert stream.instances[-1].num_predicted_workers == 0
        assert stream.instances[-1].num_predicted_tasks == 0
        assert stream.instances[-2].num_predicted_workers > 0


class TestSparseBuilderEquivalence:
    """``build_problem_sparse`` is pair-for-pair the dense builder."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=18),
        m=st.integers(min_value=0, max_value=18),
        k=st.integers(min_value=0, max_value=7),
        l=st.integers(min_value=0, max_value=7),
        velocity=st.floats(min_value=0.02, max_value=0.6),
        deadline_offset=st.floats(min_value=0.1, max_value=2.5),
        discount=st.booleans(),
        reservation=st.booleans(),
        future_future=st.booleans(),
        exact=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pools_identical_property(
        self,
        seed,
        n,
        m,
        k,
        l,
        velocity,
        deadline_offset,
        discount,
        reservation,
        future_future,
        exact,
    ):
        rng = np.random.default_rng(seed)
        workers = make_workers(rng, n, velocity=velocity)
        tasks = make_tasks(rng, m, deadline_offset=deadline_offset)
        predicted_workers = make_predicted_workers(rng, k)
        predicted_tasks = make_predicted_tasks(rng, l)
        quality_model = HashQualityModel((1.0, 2.0), seed=seed)
        kwargs = dict(
            discount_by_existence=discount,
            reservation_filter=reservation,
            include_future_future_pairs=future_future,
            exact_predicted_quality=exact,
        )
        dense = build_problem(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0, **kwargs,
        )
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0, **kwargs,
        )
        assert_pools_identical(dense, sparse)

    def test_sparse_examines_fewer_candidates_when_sparse(self):
        """Low velocity + short deadlines: the index pays off."""
        rng = np.random.default_rng(5)
        workers = make_workers(rng, 200, velocity=0.05)
        tasks = make_tasks(rng, 200, deadline_offset=0.6)
        quality_model = HashQualityModel((1.0, 2.0), seed=5)
        stats = SparseBuildStats()
        sparse = build_problem_sparse(
            workers, tasks, [], [], quality_model, 10.0, 0.0, stats=stats
        )
        dense = build_problem(workers, tasks, [], [], quality_model, 10.0, 0.0)
        assert_pools_identical(dense, sparse)
        assert stats.dense_equivalent == 200 * 200
        assert stats.candidates < stats.dense_equivalent / 5
        assert stats.emitted == len(sparse.pool)

    def test_quality_pairs_matches_matrix(self):
        rng = np.random.default_rng(9)
        workers = make_workers(rng, 12)
        tasks = make_tasks(rng, 9)
        model = HashQualityModel((0.5, 3.0), seed=2)
        matrix = model.quality_matrix(workers, tasks)
        rows = rng.integers(0, 12, size=40)
        cols = rng.integers(0, 9, size=40)
        pairs = model.quality_pairs(
            [workers[i] for i in rows], [tasks[j] for j in cols]
        )
        np.testing.assert_array_equal(matrix[rows, cols], pairs)

    def test_quality_pairs_rejects_misaligned(self):
        rng = np.random.default_rng(1)
        model = HashQualityModel((1.0, 2.0))
        with pytest.raises(ValueError):
            model.quality_pairs(make_workers(rng, 2), make_tasks(rng, 3))

    def test_generic_quality_model_fallback(self):
        """Without a quality_pairs hook the per-worker fallback is used."""

        class MatrixOnlyModel:
            def __init__(self, inner):
                self._inner = inner

            def quality_matrix(self, workers, tasks):
                return self._inner.quality_matrix(workers, tasks)

            def prior(self):
                return self._inner.prior()

        rng = np.random.default_rng(17)
        workers = make_workers(rng, 15, velocity=0.3)
        tasks = make_tasks(rng, 15)
        inner = HashQualityModel((1.0, 2.0), seed=17)
        dense = build_problem(workers, tasks, [], [], inner, 10.0, 0.0)
        sparse = build_problem_sparse(
            workers, tasks, [], [], MatrixOnlyModel(inner), 10.0, 0.0
        )
        assert_pools_identical(dense, sparse)

    def test_maintained_index_keyed_by_task_id(self):
        from repro.geo import GridIndex, SpatialIndex

        rng = np.random.default_rng(8)
        workers = make_workers(rng, 30, velocity=0.2)
        tasks = make_tasks(rng, 25)
        index = SpatialIndex(GridIndex(8))
        for task in tasks:
            index.insert(task.id, task.location)
        quality_model = HashQualityModel((1.0, 2.0), seed=8)
        dense = build_problem(workers, tasks, [], [], quality_model, 10.0, 0.0)
        sparse = build_problem_sparse(
            workers, tasks, [], [], quality_model, 10.0, 0.0, task_index=index
        )
        assert_pools_identical(dense, sparse)

    def test_out_of_sync_index_rejected(self):
        from repro.geo import GridIndex, SpatialIndex

        rng = np.random.default_rng(8)
        workers = make_workers(rng, 5, velocity=0.4)
        tasks = make_tasks(rng, 5)
        index = SpatialIndex(GridIndex(4))
        index.insert(999, tasks[0].location)
        quality_model = HashQualityModel((1.0, 2.0))
        with pytest.raises(ValueError):
            build_problem_sparse(
                workers, tasks, [], [], quality_model, 10.0, 0.0, task_index=index
            )
