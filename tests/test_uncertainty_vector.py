"""Scalar/vector agreement tests for repro.uncertainty.vector."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.box import Box
from repro.uncertainty.comparison import prob_greater, prob_less_or_equal
from repro.uncertainty.moments import distance_value, uniform_raw_moment
from repro.uncertainty.values import UncertainValue
from repro.uncertainty.vector import (
    distance_stats_vec,
    erf_vec,
    phi_vec,
    prob_greater_vec,
    prob_less_or_equal_vec,
    uniform_raw_moments_vec,
)


def random_boxes(rng, count):
    lo = rng.uniform(0.0, 0.8, size=(count, 2))
    width = rng.uniform(0.0, 0.2, size=(count, 2))
    return [Box(x, x + w, y, y + h) for (x, y), (w, h) in zip(lo, width)]


def intervals_of(boxes):
    return (
        np.array([b.x_lo for b in boxes]),
        np.array([b.x_hi for b in boxes]),
        np.array([b.y_lo for b in boxes]),
        np.array([b.y_hi for b in boxes]),
    )


class TestVectorMoments:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60)
    def test_raw_moments_match_scalar(self, lo, width, k):
        vec = uniform_raw_moments_vec(np.array([lo]), np.array([lo + width]), k)
        assert vec[0] == pytest.approx(uniform_raw_moment(lo, lo + width, k))

    def test_distance_stats_match_scalar(self, rng):
        workers = random_boxes(rng, 6)
        tasks = random_boxes(rng, 5)
        mean, var, lb, ub = distance_stats_vec(intervals_of(workers), intervals_of(tasks))
        for i, wb in enumerate(workers):
            for j, tb in enumerate(tasks):
                scalar = distance_value(wb, tb)
                assert mean[i, j] == pytest.approx(scalar.mean, abs=1e-9)
                assert var[i, j] == pytest.approx(scalar.variance, abs=1e-9)
                assert lb[i, j] == pytest.approx(scalar.lower, abs=1e-9)
                assert ub[i, j] == pytest.approx(scalar.upper, abs=1e-9)

    def test_distance_stats_shapes(self, rng):
        workers = random_boxes(rng, 3)
        tasks = random_boxes(rng, 7)
        mean, var, lb, ub = distance_stats_vec(intervals_of(workers), intervals_of(tasks))
        assert mean.shape == var.shape == lb.shape == ub.shape == (3, 7)

    def test_degenerate_boxes(self):
        point_boxes = [Box(0.5, 0.5, 0.5, 0.5)]
        mean, var, lb, ub = distance_stats_vec(
            intervals_of(point_boxes), intervals_of(point_boxes)
        )
        assert mean[0, 0] == 0.0
        assert var[0, 0] == 0.0


class TestVectorNormal:
    @given(st.floats(min_value=-6, max_value=6))
    def test_erf_vec_matches_math(self, x):
        assert float(erf_vec(np.array([x]))[0]) == pytest.approx(math.erf(x), abs=2e-7)

    def test_phi_vec_midpoint(self):
        assert float(phi_vec(np.array([0.0]))[0]) == pytest.approx(0.5, abs=1e-7)


class TestVectorComparisons:
    def test_prob_greater_matches_scalar(self, rng):
        means = rng.uniform(0.0, 3.0, size=8)
        variances = rng.uniform(0.0, 1.0, size=8)
        variances[::3] = 0.0  # mix in deterministic lanes
        matrix = prob_greater_vec(
            means[:, None], variances[:, None], means[None, :], variances[None, :]
        )
        for i in range(8):
            for j in range(8):
                a = UncertainValue(means[i], variances[i], means[i] - 5, means[i] + 5)
                b = UncertainValue(means[j], variances[j], means[j] - 5, means[j] + 5)
                assert matrix[i, j] == pytest.approx(prob_greater(a, b), abs=2e-7)

    def test_prob_less_or_equal_matches_scalar(self, rng):
        means = rng.uniform(0.0, 3.0, size=6)
        variances = rng.uniform(0.0, 0.5, size=6)
        variances[1] = 0.0
        matrix = prob_less_or_equal_vec(
            means[:, None], variances[:, None], means[None, :], variances[None, :]
        )
        for i in range(6):
            for j in range(6):
                a = UncertainValue(means[i], variances[i], means[i] - 5, means[i] + 5)
                b = UncertainValue(means[j], variances[j], means[j] - 5, means[j] + 5)
                assert matrix[i, j] == pytest.approx(prob_less_or_equal(a, b), abs=2e-7)

    def test_deterministic_tie_lanes(self):
        out = prob_greater_vec(
            np.array([1.0]), np.array([0.0]), np.array([1.0]), np.array([0.0])
        )
        assert out[0] == 0.5
