"""Checkpoint/restore crash recovery: the kill-and-replay contract.

The headline test SIGKILLs a subprocess *mid-round* — inside the build
phase, after the round's events were applied and the predictors
observed — and proves that :meth:`JournaledService.open` reconstructs
the engine to bit-identical state by replaying the journal tail over
the last checkpoint: every :func:`state_digest` component (pool CSR,
selection state, predictor windows, RNG, queue, entity pools, audit
log) matches an uninterrupted run, on both prediction legs.  The same
discipline as ``test_streaming_shm.py``: a fresh interpreter per
crash, so nothing survives but the recovery directory.

The unit classes cover the WAL/checkpoint machinery directly: torn
journal tails, corrupt checkpoints falling back to their predecessor,
retention pruning, and the journaled facade's cursor bookkeeping.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.streaming import (
    CheckpointWriter,
    JournaledService,
    OpJournal,
    RecoveryError,
    state_digest,
)

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# One source of truth for the deterministic op schedule: the crash
# subprocess executes this string, and the in-process recovery and
# reference runs ``exec`` the very same string.
_SETUP = """
from repro.core import MQAGreedy
from repro.streaming import StreamConfig, StreamingService, workload_events
from repro.streaming.events import WorkerArrival
from repro.workloads import BurstyWorkload, WorkloadParams

USE_PREDICTION = {use_prediction}
workload = BurstyWorkload(
    WorkloadParams(num_workers=20, num_tasks=24, num_instances=5), seed=13
)
quality_model = workload.quality_model


def make_service():
    return StreamingService(
        MQAGreedy(),
        quality_model,
        config=StreamConfig(round_interval=0.5, use_prediction=USE_PREDICTION),
        seed=21,
    )


ops = []
boundary = 0.5
for event in workload_events(workload):
    while event.time > boundary:
        ops.append(("drain", boundary))
        boundary += 0.5
    if isinstance(event, WorkerArrival):
        ops.append(("worker", event.worker, event.time))
    else:
        ops.append(("task", event.task, event.time))
ops.append(("drain", boundary + 1.0))


def apply_op(svc, op):
    if op[0] == "drain":
        return svc.drain(op[1])
    if op[0] == "worker":
        return svc.submit_worker(op[1], op[2])
    return svc.submit_task(op[1], op[2])
"""

_CRASH_BODY = """
import os, signal
from repro.streaming import JournaledService
from repro.streaming.engine import StreamingEngine

# Die *inside* round {kill_at}'s build phase: by then the round has
# popped its events, mutated the pools and observed the predictors —
# the worst-possible partial state for a naive snapshotter.
calls = [0]
_orig_build = StreamingEngine._build_problem


def _lethal_build(self, *args, **kwargs):
    calls[0] += 1
    if calls[0] == {kill_at}:
        os.kill(os.getpid(), signal.SIGKILL)
    return _orig_build(self, *args, **kwargs)


StreamingEngine._build_problem = _lethal_build

svc = JournaledService.open(make_service, {directory!r}, checkpoint_every=2)
for op in ops:
    apply_op(svc, op)
raise SystemExit("expected SIGKILL before the schedule finished")
"""


def _run_script(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=_REPO,
        env={**os.environ, "PYTHONPATH": os.path.join(_REPO, "src")},
    )


def _load_schedule(use_prediction: bool) -> dict:
    namespace: dict = {}
    exec(textwrap.dedent(_SETUP.format(use_prediction=use_prediction)), namespace)
    return namespace


class TestKillAndReplay:
    @pytest.mark.parametrize("use_prediction", [True, False], ids=["pred", "nopred"])
    def test_sigkill_mid_round_recovers_bit_identical(
        self, tmp_path, use_prediction
    ):
        directory = str(tmp_path / "recovery")
        script = _SETUP.format(use_prediction=use_prediction) + _CRASH_BODY.format(
            kill_at=6, directory=directory
        )
        proc = _run_script(script)
        assert proc.returncode == -signal.SIGKILL, (proc.stdout, proc.stderr)
        # The crash must have left both halves of the durable state.
        assert list(Path(directory).glob("checkpoint-*.ckpt")), "no checkpoint written"
        assert (Path(directory) / "ops.journal").exists()

        ns = _load_schedule(use_prediction)
        recovered = JournaledService.open(
            ns["make_service"], directory, checkpoint_every=10_000
        )
        applied = recovered.ops_applied
        assert 0 < applied < len(ns["ops"]), applied
        for op in ns["ops"][applied:]:
            ns["apply_op"](recovered, op)

        reference = ns["make_service"]()
        for op in ns["ops"]:
            ns["apply_op"](reference, op)

        recovered_digest = state_digest(recovered.engine)
        reference_digest = state_digest(reference.engine)
        for component in sorted(reference_digest):
            assert recovered_digest[component] == reference_digest[component], (
                f"{component} diverged after kill-and-replay"
            )
        # The drain cursor survived too: nothing is re-delivered.
        assert recovered.service.drained_assignments == (
            recovered.engine.num_assignments
        )
        recovered.close(checkpoint=False)
        reference.close()


class TestOpJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal = OpJournal(path, fsync=False)
        ops = [("worker", 1, 0.5), ("task", 2, 0.75), ("drain", 1.0)]
        for op in ops:
            journal.append(op)
        journal.close()
        assert OpJournal.read_ops(path) == ops

    def test_missing_file_reads_empty(self, tmp_path):
        assert OpJournal.read_ops(tmp_path / "never-written") == []

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal = OpJournal(path, fsync=False)
        journal.append(("drain", 1.0))
        journal.append(("drain", 2.0))
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # a SIGKILL mid-write truncates the frame
        assert OpJournal.read_ops(path) == [("drain", 1.0)]

    def test_corrupt_frame_stops_the_read(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal = OpJournal(path, fsync=False)
        for stamp in (1.0, 2.0, 3.0):
            journal.append(("drain", stamp))
        journal.close()
        data = bytearray(path.read_bytes())
        # Flip a payload byte in the middle frame: its CRC fails, and
        # everything after it is unreachable (frame boundaries are gone).
        frame_len = struct.unpack_from("<I", data, 0)[0] + 8
        data[frame_len + 10] ^= 0xFF
        path.write_bytes(bytes(data))
        assert OpJournal.read_ops(path) == [("drain", 1.0)]

    def test_append_after_reopen_extends(self, tmp_path):
        path = tmp_path / "ops.journal"
        OpJournal(path, fsync=False).append(("drain", 1.0))
        journal = OpJournal(path, fsync=False)
        journal.append(("drain", 2.0))
        journal.close()
        assert OpJournal.read_ops(path) == [("drain", 1.0), ("drain", 2.0)]


class _FakeEngine:
    """Stands in for StreamingEngine in writer-only tests."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def export_state(self) -> bytes:
        return self.payload


class TestCheckpointWriter:
    def test_write_and_load_latest(self, tmp_path):
        writer = CheckpointWriter(tmp_path, fsync=False)
        writer.write(_FakeEngine(b"state-a"), journal_seq=3, drained_assignments=7)
        writer.write(_FakeEngine(b"state-b"), journal_seq=9, drained_assignments=11)
        record = CheckpointWriter.load_latest(tmp_path)
        assert record["journal_seq"] == 9
        assert record["drained_assignments"] == 11
        assert record["engine"] == b"state-b"

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointWriter.load_latest(tmp_path) is None
        assert CheckpointWriter.load_latest(tmp_path / "missing") is None

    def test_retention_prunes_oldest(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=2, fsync=False)
        for seq in (1, 2, 3, 4):
            writer.write(_FakeEngine(b"s"), journal_seq=seq, drained_assignments=0)
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*.ckpt"))
        assert names == ["checkpoint-000000000003.ckpt", "checkpoint-000000000004.ckpt"]

    def test_corrupt_latest_falls_back_to_predecessor(self, tmp_path):
        writer = CheckpointWriter(tmp_path, fsync=False)
        writer.write(_FakeEngine(b"good"), journal_seq=1, drained_assignments=0)
        newest = writer.write(_FakeEngine(b"bad"), journal_seq=2, drained_assignments=0)
        newest.write_bytes(newest.read_bytes()[: 40])  # torn at rest
        record = CheckpointWriter.load_latest(tmp_path)
        assert record["journal_seq"] == 1
        assert record["engine"] == b"good"

    def test_wrong_schema_is_skipped(self, tmp_path):
        writer = CheckpointWriter(tmp_path, fsync=False)
        writer.write(_FakeEngine(b"good"), journal_seq=1, drained_assignments=0)
        (tmp_path / "checkpoint-000000000009.ckpt").write_bytes(
            pickle.dumps({"schema": "something-else"})
        )
        assert CheckpointWriter.load_latest(tmp_path)["journal_seq"] == 1

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointWriter(tmp_path, keep=0)


class TestJournaledService:
    def _schedule(self):
        return _load_schedule(use_prediction=True)

    def test_fresh_directory_runs_factory(self, tmp_path):
        ns = self._schedule()
        svc = JournaledService.open(ns["make_service"], tmp_path, fsync=False)
        assert svc.ops_applied == 0
        assert svc.engine.rounds_run == 0
        svc.close()

    def test_reopen_resumes_where_it_left_off(self, tmp_path):
        ns = self._schedule()
        cut = len(ns["ops"]) // 2
        first = JournaledService.open(
            ns["make_service"], tmp_path, checkpoint_every=3, fsync=False
        )
        for op in ns["ops"][:cut]:
            ns["apply_op"](first, op)
        del first  # crash: no close, no final checkpoint

        second = JournaledService.open(
            ns["make_service"], tmp_path, checkpoint_every=3, fsync=False
        )
        assert second.ops_applied == cut
        for op in ns["ops"][cut:]:
            ns["apply_op"](second, op)

        reference = ns["make_service"]()
        for op in ns["ops"]:
            ns["apply_op"](reference, op)
        assert state_digest(second.engine) == state_digest(reference.engine)
        second.close()
        reference.close()

    def test_close_checkpoints_so_reopen_skips_replay(self, tmp_path):
        ns = self._schedule()
        svc = JournaledService.open(
            ns["make_service"], tmp_path, checkpoint_every=10_000, fsync=False
        )
        for op in ns["ops"]:
            ns["apply_op"](svc, op)
        rounds = svc.engine.rounds_run
        svc.close()  # final checkpoint covers the whole journal

        record = CheckpointWriter.load_latest(tmp_path)
        assert record["journal_seq"] == len(ns["ops"])
        reopened = JournaledService.open(ns["make_service"], tmp_path, fsync=False)
        assert reopened.engine.rounds_run == rounds
        reopened.close(checkpoint=False)

    def test_checkpoint_beyond_journal_raises(self, tmp_path):
        ns = self._schedule()
        svc = JournaledService.open(
            ns["make_service"], tmp_path, checkpoint_every=2, fsync=False
        )
        for op in ns["ops"]:
            ns["apply_op"](svc, op)
        svc.close()
        (tmp_path / "ops.journal").unlink()  # history mismatch
        with pytest.raises(RecoveryError, match="different histories"):
            JournaledService.open(ns["make_service"], tmp_path, fsync=False)

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        ns = self._schedule()
        with pytest.raises(ValueError, match="checkpoint_every"):
            JournaledService.open(
                ns["make_service"], tmp_path, checkpoint_every=0, fsync=False
            )

    def test_unknown_journal_op_raises(self, tmp_path):
        ns = self._schedule()
        OpJournal(tmp_path / "ops.journal", fsync=False).append(("frobnicate", 1))
        with pytest.raises(RecoveryError, match="unknown op kind"):
            JournaledService.open(ns["make_service"], tmp_path, fsync=False)


class TestStateDigest:
    def test_identical_runs_digest_equal(self):
        ns = _load_schedule(use_prediction=True)
        first = ns["make_service"]()
        second = ns["make_service"]()
        for op in ns["ops"]:
            ns["apply_op"](first, op)
            ns["apply_op"](second, op)
        assert state_digest(first.engine) == state_digest(second.engine)
        first.close()
        second.close()

    def test_different_histories_digest_differently(self):
        ns = _load_schedule(use_prediction=True)
        full = ns["make_service"]()
        partial = ns["make_service"]()
        for op in ns["ops"]:
            ns["apply_op"](full, op)
        for op in ns["ops"][:-4]:
            ns["apply_op"](partial, op)
        assert state_digest(full.engine) != state_digest(partial.engine)
        full.close()
        partial.close()

    def test_components_are_named(self):
        ns = _load_schedule(use_prediction=True)
        svc = ns["make_service"]()
        for op in ns["ops"]:
            ns["apply_op"](svc, op)
        digest = state_digest(svc.engine)
        assert set(digest) == {
            "pool",
            "selection",
            "predictors",
            "rng",
            "queue",
            "entities",
            "log",
        }
        assert all(len(v) == 64 for v in digest.values())
        svc.close()
