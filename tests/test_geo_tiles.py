"""Tile partition properties: exact coverage, margin membership, borders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GridIndex, TileGrid
from repro.geo.box import Box


class TestTileGridBasics:
    def test_from_shard_count_factors_squarely(self):
        assert (TileGrid.from_shard_count(1).nx, TileGrid.from_shard_count(1).ny) == (1, 1)
        assert (TileGrid.from_shard_count(2).nx, TileGrid.from_shard_count(2).ny) == (2, 1)
        assert (TileGrid.from_shard_count(4).nx, TileGrid.from_shard_count(4).ny) == (2, 2)
        assert (TileGrid.from_shard_count(6).nx, TileGrid.from_shard_count(6).ny) == (3, 2)
        assert (TileGrid.from_shard_count(7).nx, TileGrid.from_shard_count(7).ny) == (7, 1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TileGrid(0, 2)
        with pytest.raises(ValueError):
            TileGrid.from_shard_count(0)
        with pytest.raises(ValueError):
            TileGrid(2, 2).margin_members(np.array([0.5]), np.array([0.5]), -0.1)
        with pytest.raises(IndexError):
            TileGrid(2, 2).tile_box(4)

    def test_tile_boxes_partition_the_unit_square(self):
        tiles = TileGrid(3, 2)
        area = sum(
            (b.x_hi - b.x_lo) * (b.y_hi - b.y_lo)
            for b in (tiles.tile_box(t) for t in range(tiles.num_tiles))
        )
        assert area == pytest.approx(1.0)

    def test_owner_contains_point(self):
        tiles = TileGrid(4, 3)
        rng = np.random.default_rng(3)
        xs, ys = rng.random(500), rng.random(500)
        owners = tiles.tile_of_coordinates(xs, ys)
        for x, y, tile in zip(xs, ys, owners):
            box = tiles.tile_box(int(tile))
            assert box.x_lo <= x <= box.x_hi and box.y_lo <= y <= box.y_hi


class TestPartitionProperties:
    @given(
        nx=st.integers(min_value=1, max_value=5),
        ny=st.integers(min_value=1, max_value=5),
        gamma=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_cells_covered_exactly_once(self, nx, ny, gamma):
        """Ownership is a partition: every grid cell's center (and so
        every interior point) has exactly one owning tile, and the
        owners of all cells cover all tiles that contain any cell."""
        tiles = TileGrid(nx, ny)
        grid = GridIndex(gamma)
        centers = [grid.cell_center(c) for c in grid.cells()]
        xs = np.array([p.x for p in centers])
        ys = np.array([p.y for p in centers])
        owners = tiles.tile_of_coordinates(xs, ys)
        # Exactly one owner per cell by construction; the zero-margin
        # membership of the owner always includes the cell.
        counts = tiles.membership_counts(xs, ys, 0.0)
        assert (counts >= 1).all()
        members = tiles.margin_members(xs, ys, 0.0)
        seen = np.zeros(xs.size, dtype=int)
        for tile, rows in enumerate(members):
            seen[rows] += tile == owners[rows]
        np.testing.assert_array_equal(seen, np.ones(xs.size, dtype=int))

    @given(
        nx=st.integers(min_value=1, max_value=4),
        ny=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        margin=st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_margin_membership_bounds(self, nx, ny, seed, margin):
        """Margin zones are covers with bounded duplication: every
        point is seen by its owner; a point is *border* iff more than
        one tile sees it; and when the margin is smaller than a tile,
        duplication is bounded by 2 per split axis (<= 2 shards for a
        strip partition, <= 4 at the corner of a 2x2 cross)."""
        tiles = TileGrid(nx, ny)
        rng = np.random.default_rng(seed)
        xs, ys = rng.random(300), rng.random(300)
        owners = tiles.tile_of_coordinates(xs, ys)
        members = tiles.margin_members(xs, ys, margin)
        counts = tiles.membership_counts(xs, ys, margin)
        in_owner = np.zeros(xs.size, dtype=bool)
        total = 0
        for tile, rows in enumerate(members):
            in_owner[rows[owners[rows] == tile]] = True
            total += rows.size
        assert in_owner.all()
        assert total == counts.sum()
        border = tiles.is_border(xs, ys, margin)
        np.testing.assert_array_equal(border, counts > 1)
        if margin < min(tiles.tile_width, tiles.tile_height) / 2:
            cap = (2 if nx > 1 else 1) * (2 if ny > 1 else 1)
            assert counts.max() <= cap
        if nx == ny == 1:
            assert not border.any()

    @given(
        gamma=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        margin=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_cells_intersecting_box_is_exact(self, gamma, seed, margin):
        """The CSR-slicing predicate agrees with brute force: a cell is
        kept iff the gap between its closed box and the query box is at
        most the margin."""
        grid = GridIndex(gamma)
        rng = np.random.default_rng(seed)
        x_lo, y_lo = rng.random(2) * 0.8
        box = Box(x_lo, x_lo + 0.2 * rng.random(), y_lo, y_lo + 0.2 * rng.random())
        got = set(int(c) for c in grid.cells_intersecting_box(box, margin))
        expected = set()
        for cell in grid.cells():
            cb = grid.cell_box(cell)
            dx = max(cb.x_lo - box.x_hi, box.x_lo - cb.x_hi, 0.0)
            dy = max(cb.y_lo - box.y_hi, box.y_lo - cb.y_hi, 0.0)
            if float(np.hypot(dx, dy)) <= margin:
                expected.add(cell)
        assert got == expected

    def test_cells_intersecting_box_zero_margin_is_border_membership(self):
        grid = GridIndex(4)
        tiles = TileGrid(2, 2)
        cells = grid.cells_intersecting_box(tiles.tile_box(0), 0.0)
        # Tile 0 covers cells rows 0-1 x cols 0-1 plus the touching
        # ring at row/col 2 (closed boxes share the boundary edge).
        assert set(int(c) for c in cells) == {0, 1, 2, 4, 5, 6, 8, 9, 10}
