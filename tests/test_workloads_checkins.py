"""Tests for repro.workloads.checkins."""

import numpy as np
import pytest

from repro.workloads.checkins import (
    SAN_FRANCISCO_BOUNDS,
    CheckinGeneratorConfig,
    CheckinRecord,
    generate_checkins,
    load_checkins_csv,
    load_foursquare_checkins,
    load_gowalla_checkins,
    save_checkins,
)


class TestGeneratorConfig:
    def test_defaults_valid(self):
        CheckinGeneratorConfig()

    def test_invalid_stability(self):
        with pytest.raises(ValueError):
            CheckinGeneratorConfig(stability=1.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            CheckinGeneratorConfig(bounds=(1.0, 0.0, 0.0, 1.0))

    def test_invalid_drift(self):
        with pytest.raises(ValueError):
            CheckinGeneratorConfig(drift_amplitude=1.0)


class TestGenerateCheckins:
    def test_record_count(self, rng):
        records = generate_checkins(CheckinGeneratorConfig(num_records=500), rng)
        assert len(records) == 500

    def test_zero_records(self, rng):
        assert generate_checkins(CheckinGeneratorConfig(num_records=0), rng) == []

    def test_records_within_bounds(self, rng):
        records = generate_checkins(CheckinGeneratorConfig(num_records=300), rng)
        lat_min, lat_max, lon_min, lon_max = SAN_FRANCISCO_BOUNDS
        for record in records:
            assert lat_min <= record.latitude <= lat_max
            assert lon_min <= record.longitude <= lon_max

    def test_times_sorted_within_span(self, rng):
        config = CheckinGeneratorConfig(num_records=300, span_days=10.0)
        records = generate_checkins(config, rng)
        times = [r.time for r in records]
        assert times == sorted(times)
        assert times[0] >= 0.0
        assert times[-1] <= 10.0 * 86400.0

    def test_user_ids_in_range(self, rng):
        config = CheckinGeneratorConfig(num_records=200, num_users=50)
        records = generate_checkins(config, rng)
        assert all(0 <= r.user_id < 50 for r in records)

    def test_spatial_concentration(self, rng):
        """Check-ins cluster in hotspots: a few cells hold most mass."""
        config = CheckinGeneratorConfig(num_records=2000, num_hotspots=4)
        records = generate_checkins(config, rng)
        lat_min, lat_max, lon_min, lon_max = SAN_FRANCISCO_BOUNDS
        rows = np.minimum(
            ((np.array([r.latitude for r in records]) - lat_min)
             / (lat_max - lat_min) * 10).astype(int), 9)
        cols = np.minimum(
            ((np.array([r.longitude for r in records]) - lon_min)
             / (lon_max - lon_min) * 10).astype(int), 9)
        counts = np.bincount(rows * 10 + cols, minlength=100)
        top10_share = np.sort(counts)[-10:].sum() / counts.sum()
        assert top10_share > 0.5

    def test_temporal_stability_of_cell_counts(self, rng):
        """The quota stream keeps per-cell counts smooth across windows."""
        config = CheckinGeneratorConfig(num_records=3000, stability=0.98)
        records = generate_checkins(config, rng)
        lat_min, lat_max, lon_min, lon_max = SAN_FRANCISCO_BOUNDS
        spans = 10
        t_max = max(r.time for r in records) + 1e-6
        counts = np.zeros((spans, 100))
        for r in records:
            window = min(int(r.time / t_max * spans), spans - 1)
            row = min(int((r.latitude - lat_min) / (lat_max - lat_min) * 10), 9)
            col = min(int((r.longitude - lon_min) / (lon_max - lon_min) * 10), 9)
            counts[window, row * 10 + col] += 1
        active = counts.mean(axis=0) >= 5.0
        assert active.any()
        variation = counts[:, active].std(axis=0) / counts[:, active].mean(axis=0)
        assert float(np.median(variation)) < 0.4


class TestPersistence:
    def test_csv_roundtrip(self, rng, tmp_path):
        records = generate_checkins(CheckinGeneratorConfig(num_records=50), rng)
        path = tmp_path / "checkins.csv"
        save_checkins(records, path)
        loaded = load_checkins_csv(path)
        assert loaded == sorted(records, key=lambda r: r.time)

    def test_gowalla_loader_parses_snap_format(self, tmp_path):
        path = tmp_path / "gowalla.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t30.2359091167\t-97.7951395833\t22847\n"
            "1\t2010-10-18T22:17:43Z\t30.2691029532\t-97.7493953705\t420315\n"
            "garbage line without tabs\n"
            "2\tnot-a-date\t30.0\t-97.0\t1\n"
        )
        records = load_gowalla_checkins(path)
        assert len(records) == 2
        assert records[0].time == 0.0  # earliest record is the origin
        assert records[0].user_id == 1  # earlier timestamp sorts first

    def test_gowalla_loader_bounds_filter(self, tmp_path):
        path = tmp_path / "gowalla.txt"
        path.write_text(
            "0\t2010-10-19T23:55:27Z\t37.75\t-122.45\t1\n"
            "1\t2010-10-19T23:56:27Z\t40.00\t-74.00\t2\n"
        )
        records = load_gowalla_checkins(path, bounds=SAN_FRANCISCO_BOUNDS)
        assert len(records) == 1
        assert records[0].user_id == 0

    def test_gowalla_loader_limit(self, tmp_path):
        path = tmp_path / "gowalla.txt"
        lines = [
            f"{i}\t2010-10-19T23:55:{i:02d}Z\t37.75\t-122.45\t{i}\n" for i in range(20)
        ]
        path.write_text("".join(lines))
        assert len(load_gowalla_checkins(path, limit=5)) == 5

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert load_gowalla_checkins(path) == []

    def test_foursquare_loader_parses_yang_format(self, tmp_path):
        path = tmp_path / "foursquare.txt"
        path.write_text(
            "470\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\tBar\t"
            "40.733596\t-74.003139\t-240\tTue Apr 03 18:00:06 +0000 2012\n"
            "979\t4a43c0aef964a520c6a61fe3\t4bf58dd8d48988d1df941735\tBridge\t"
            "40.606800\t-74.044170\t-240\tTue Apr 03 18:00:25 +0000 2012\n"
            "garbage\n"
            "1\tv\tc\tC\tnot-a-lat\t-74.0\t-240\tTue Apr 03 18:01:00 +0000 2012\n"
        )
        records = load_foursquare_checkins(path)
        assert len(records) == 2
        assert records[0].user_id == 470
        assert records[0].time == 0.0
        assert records[1].time == pytest.approx(19.0)

    def test_foursquare_loader_bounds_and_limit(self, tmp_path):
        path = tmp_path / "foursquare.txt"
        lines = [
            f"{i}\tv\tc\tC\t37.75\t-122.45\t-240\tTue Apr 03 18:00:{i:02d} +0000 2012\n"
            for i in range(10)
        ]
        lines.append(
            "99\tv\tc\tC\t40.0\t-74.0\t-240\tTue Apr 03 19:00:00 +0000 2012\n"
        )
        path.write_text("".join(lines))
        records = load_foursquare_checkins(
            path, bounds=SAN_FRANCISCO_BOUNDS, limit=4
        )
        assert len(records) == 4
        assert all(37.709 <= r.latitude <= 37.839 for r in records)
