"""Tests for repro.model.validity (pair reachability)."""

import pytest

from repro.geo.box import Box
from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.model.validity import can_reach, latest_feasible_distance


def worker_at(x, y, velocity=0.5, arrival=0.0, predicted=False, box=None):
    return Worker(
        id=1, location=Point(x, y), velocity=velocity, arrival=arrival,
        predicted=predicted, box=box,
    )


def task_at(x, y, deadline, arrival=0.0, predicted=False, box=None):
    return Task(
        id=2, location=Point(x, y), deadline=deadline, arrival=arrival,
        predicted=predicted, box=box,
    )


class TestLatestFeasibleDistance:
    def test_budget_distance(self):
        worker = worker_at(0, 0, velocity=0.5)
        task = task_at(1, 0, deadline=2.0)
        assert latest_feasible_distance(worker, task, now=0.0) == pytest.approx(1.0)

    def test_expired_horizon_negative(self):
        worker = worker_at(0, 0)
        task = task_at(1, 0, deadline=1.0)
        assert latest_feasible_distance(worker, task, now=2.0) == -1.0

    def test_departure_waits_for_late_arrival(self):
        """A predicted entity cannot travel before it joins."""
        worker = worker_at(0, 0, velocity=0.5, arrival=1.0, predicted=True)
        task = task_at(1, 0, deadline=2.0)
        # Departure at t=1, horizon 1, budget distance 0.5.
        assert latest_feasible_distance(worker, task, now=0.0) == pytest.approx(0.5)


class TestCanReach:
    def test_reachable(self):
        assert can_reach(worker_at(0, 0, velocity=0.5), task_at(0.6, 0, 2.0), now=0.0)

    def test_too_far(self):
        assert not can_reach(worker_at(0, 0, velocity=0.1), task_at(0.9, 0, 2.0), now=0.0)

    def test_boundary_exactly_reachable(self):
        assert can_reach(worker_at(0, 0, velocity=0.5), task_at(1.0, 0, 2.0), now=0.0)

    def test_expired_task(self):
        assert not can_reach(worker_at(0, 0), task_at(0.0, 0.01, 1.0), now=1.5)

    def test_predicted_uses_optimistic_box_distance(self):
        box = Box(0.4, 0.8, 0.0, 0.0)
        worker = worker_at(0.6, 0.0, velocity=0.25, arrival=1.0, predicted=True, box=box)
        task = task_at(0.3, 0.0, deadline=2.0)
        # Min box distance = 0.1 (from x=0.4); center distance would be 0.3.
        # Horizon after departure at t=1 is 1 -> budget distance 0.25.
        assert can_reach(worker, task, now=0.0)

    def test_zero_horizon_is_invalid(self):
        worker = worker_at(0, 0)
        task = task_at(0.0, 0.0, deadline=0.0)
        assert not can_reach(worker, task, now=0.0)
