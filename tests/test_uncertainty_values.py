"""Tests for repro.uncertainty.values."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.values import UncertainValue

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def uncertain_values():
    return st.builds(
        lambda lo, spread, mean_frac, var: UncertainValue(
            mean=lo + mean_frac * spread,
            variance=var,
            lower=lo,
            upper=lo + spread,
        ),
        finite,
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=4.0),
    )


class TestConstruction:
    def test_certain_value(self):
        v = UncertainValue.certain(2.5)
        assert v.is_certain
        assert v.mean == v.lower == v.upper == 2.5
        assert v.variance == 0.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue(mean=0.0, variance=-1.0, lower=-1.0, upper=1.0)

    def test_tiny_negative_variance_clamped(self):
        v = UncertainValue(mean=0.0, variance=-1e-12, lower=-1.0, upper=1.0)
        assert v.variance == 0.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue(mean=0.5, variance=0.0, lower=1.0, upper=0.0)

    def test_mean_outside_bounds_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue(mean=5.0, variance=0.1, lower=0.0, upper=1.0)

    def test_std(self):
        assert UncertainValue(2.0, 4.0, 0.0, 4.0).std == pytest.approx(2.0)


class TestFromSamples:
    def test_single_sample(self):
        v = UncertainValue.from_samples([3.0])
        assert v.mean == 3.0
        assert v.variance == 0.0
        assert v.lower == v.upper == 3.0

    def test_population_moments(self):
        v = UncertainValue.from_samples([1.0, 2.0, 3.0])
        assert v.mean == pytest.approx(2.0)
        assert v.variance == pytest.approx(2.0 / 3.0)
        assert (v.lower, v.upper) == (1.0, 3.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue.from_samples([])

    @given(st.lists(finite, min_size=1, max_size=30))
    def test_mean_within_bounds(self, samples):
        v = UncertainValue.from_samples(samples)
        assert v.lower - 1e-9 <= v.mean <= v.upper + 1e-9
        assert v.variance >= 0.0


class TestArithmetic:
    def test_scaling(self):
        v = UncertainValue(2.0, 1.0, 1.0, 3.0).scaled(2.0)
        assert v.mean == 4.0
        assert v.variance == 4.0
        assert (v.lower, v.upper) == (2.0, 6.0)

    def test_scaling_by_zero_collapses(self):
        v = UncertainValue(2.0, 1.0, 1.0, 3.0).scaled(0.0)
        assert v.is_certain
        assert v.mean == 0.0

    def test_negative_scaling_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue.certain(1.0).scaled(-1.0)

    def test_shift(self):
        v = UncertainValue(2.0, 1.0, 1.0, 3.0).shifted(10.0)
        assert v.mean == 12.0
        assert v.variance == 1.0
        assert (v.lower, v.upper) == (11.0, 13.0)

    def test_addition_of_independent_values(self):
        a = UncertainValue(1.0, 0.5, 0.0, 2.0)
        b = UncertainValue(2.0, 0.25, 1.0, 3.0)
        c = a + b
        assert c.mean == 3.0
        assert c.variance == 0.75
        assert (c.lower, c.upper) == (1.0, 5.0)

    @given(uncertain_values(), st.floats(min_value=0.0, max_value=3.0))
    def test_scaled_preserves_invariants(self, v, k):
        s = v.scaled(k)
        assert s.lower - 1e-9 <= s.mean <= s.upper + 1e-9
        assert s.variance >= 0.0


class TestDiscounting:
    def test_full_probability_is_identity(self):
        v = UncertainValue(1.5, 0.2, 1.0, 2.0)
        d = v.discounted(1.0)
        assert d.mean == pytest.approx(v.mean)
        assert d.variance == pytest.approx(v.variance)
        assert (d.lower, d.upper) == (v.lower, v.upper)

    def test_zero_probability_kills_mean(self):
        d = UncertainValue(1.5, 0.2, 1.0, 2.0).discounted(0.0)
        assert d.mean == 0.0
        assert d.variance == 0.0

    def test_bernoulli_variance_formula(self):
        v = UncertainValue(2.0, 1.0, 0.0, 4.0)
        p = 0.5
        d = v.discounted(p)
        # Var(B X) = p(Var X + E X^2) - (p E X)^2
        assert d.variance == pytest.approx(p * (1.0 + 4.0) - (p * 2.0) ** 2)

    def test_lower_bound_drops_to_zero(self):
        d = UncertainValue(1.5, 0.0, 1.5, 1.5).discounted(0.7)
        assert d.lower == 0.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            UncertainValue.certain(1.0).discounted(1.5)

    @given(uncertain_values(), st.floats(min_value=0.0, max_value=1.0))
    def test_discount_shrinks_positive_mean(self, v, p):
        if v.mean >= 0.0 and v.lower >= 0.0:
            d = v.discounted(p)
            assert d.mean <= v.mean + 1e-9
            assert d.variance >= 0.0
