"""Tests for the selection-objective option (probability vs efficiency)."""

import numpy as np
import pytest

from repro.core.divide_conquer import DivideConquerConfig, MQADivideConquer
from repro.core.greedy import GreedyConfig, MQAGreedy
from repro.core.selection import select_best_row
from test_core_pruning import pool_from_rows

from repro.testing import make_problem

RNG = np.random.default_rng(0)


class TestSelectBestRowObjectives:
    def test_efficiency_prefers_cost_effective_pair(self):
        # Row 0: q=2.0 at cost 4.0 (density 0.5); row 1: q=1.5 at cost
        # 1.0 (density 1.5).  Probability picks 0, efficiency picks 1.
        pool = pool_from_rows([(4.0, 4.0, 2.0, 2.0), (1.0, 1.0, 1.5, 1.5)])
        assert select_best_row(pool, np.arange(2), "probability") == 0
        assert select_best_row(pool, np.arange(2), "efficiency") == 1

    def test_efficiency_handles_zero_cost(self):
        pool = pool_from_rows([(0.0, 0.0, 1.0, 1.0), (0.0, 0.0, 2.0, 2.0)])
        assert select_best_row(pool, np.arange(2), "efficiency") == 1

    def test_unknown_objective_rejected(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            select_best_row(pool, np.arange(1), "roi")

    def test_single_candidate_any_objective(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0)])
        assert select_best_row(pool, np.arange(1), "efficiency") == 0


class TestConfigValidation:
    def test_greedy_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            GreedyConfig(selection_objective="roi")

    def test_dc_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            DivideConquerConfig(selection_objective="roi")

    def test_dc_propagates_objective(self):
        config = DivideConquerConfig(selection_objective="efficiency")
        assert config.greedy_config().selection_objective == "efficiency"


class TestEfficiencyMode:
    def test_invariants_hold(self):
        problem = make_problem(seed=6, num_workers=10, num_tasks=9)
        for assigner in (
            MQAGreedy(GreedyConfig(selection_objective="efficiency")),
            MQADivideConquer(DivideConquerConfig(selection_objective="efficiency")),
        ):
            result = assigner.assign(problem, 8.0, 0.0, RNG)
            workers = [p.worker.id for p in result.pairs]
            assert len(set(workers)) == len(workers)
            assert result.total_cost <= 8.0 + 1e-6

    def test_efficiency_assigns_at_least_as_many_under_tight_budget(self):
        """Quality-per-cost selection stretches a tight budget further."""
        totals = {"probability": 0, "efficiency": 0}
        for seed in range(6):
            problem = make_problem(seed=seed, num_workers=12, num_tasks=12)
            for objective in totals:
                assigner = MQAGreedy(GreedyConfig(selection_objective=objective))
                result = assigner.assign(problem, 3.0, 0.0, RNG)
                totals[objective] += result.num_assigned
        assert totals["efficiency"] >= totals["probability"]
