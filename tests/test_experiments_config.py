"""Tests for repro.experiments.config."""

import pytest

from repro.experiments.config import PAPER_DEFAULTS, ExperimentConfig, scaled_config


class TestPaperDefaults:
    def test_table_iv_bold_values(self):
        params = PAPER_DEFAULTS.params
        assert params.num_workers == 5000
        assert params.num_tasks == 5000
        assert params.num_instances == 15
        assert params.quality_range == (1.0, 2.0)
        assert params.deadline_range == (1.0, 2.0)
        assert params.velocity_range == (0.2, 0.3)
        assert PAPER_DEFAULTS.unit_cost == 10.0
        assert PAPER_DEFAULTS.window == 3


class TestScaledConfig:
    def test_identity_scale(self):
        config = scaled_config(1.0)
        assert config.params.num_workers == 5000
        assert config.budget == 300.0

    def test_proportional_scaling(self):
        config = scaled_config(0.1)
        assert config.params.num_workers == 500
        assert config.params.num_tasks == 500
        assert config.budget == pytest.approx(30.0)
        # Non-scaled knobs unchanged.
        assert config.unit_cost == 10.0
        assert config.params.num_instances == 15

    def test_minimum_one_entity(self):
        config = scaled_config(0.00001)
        assert config.params.num_workers >= 1

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_config(0.0)

    def test_with_params_override(self):
        config = scaled_config(0.1).with_params(num_tasks=123)
        assert config.params.num_tasks == 123
        assert config.params.num_workers == 500  # untouched

    def test_with_fields_override(self):
        config = scaled_config(0.1).with_fields(budget=7.0, window=5)
        assert config.budget == 7.0
        assert config.window == 5
