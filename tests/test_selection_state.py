"""Persistent selection state: churn repair must be invisible.

Locks the :class:`repro.core.triplet_select.SelectionState` contract
from four sides:

- ``_merge_sorted_positions`` reproduces a from-scratch lexicographic
  sort on arbitrary tie-heavy runs (the primitive every repair rests
  on);
- warm selections are bit-identical to cold solves under random churn
  and under the named adversarial corpus (``tests/conftest.py``), for
  trusted :class:`~repro.model.delta.ChurnRecord` origins and for
  self-diffed ones, with and without predicted entities — and the
  repair path actually serves (not a silent every-round fallback);
- the lifecycle edges behave: the trusted carry survives declined
  rounds, churn overflows fall back to cold builds, and the
  ``triplet_min_rows`` floor gates engagement exactly at the boundary;
- the streaming engine reproduces its cold self with warm selection
  on, for the greedy, divide-and-conquer and Hungarian assigners, and
  :class:`~repro.streaming.sharding.TileSelectionStates` keys one
  independent state per tile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HungarianAssigner, MQADivideConquer, MQAGreedy
from repro.core.greedy import GreedyConfig, greedy_select
from repro.core.triplet_select import (
    SelectionState,
    _merge_sorted_positions,
)
from repro.model.delta import DeltaPoolBuilder
from repro.streaming import StreamConfig, run_stream
from repro.streaming.sharding import TileSelectionStates
from repro.testing import make_problem
from repro.workloads import BurstyWorkload, WorkloadParams
from repro.workloads.quality import HashQualityModel

_GAMMA = 16
_UNIT_COST = 10.0
_BUDGET_CURRENT = 8.0
_BUDGET_MAX = 12.0
#: Low engine floor so the small worlds here route through the
#: amortized engine (and therefore through the warm path).
_CFG = GreedyConfig(triplet_min_rows=8)


# ---------------------------------------------------------------------------
# the merge primitive
# ---------------------------------------------------------------------------


def _reference_merge(a, b, keys):
    """From-scratch (*keys, position) sort of the union."""
    union = np.sort(np.concatenate((a, b)))
    order = np.lexsort((union,) + tuple(k[union] for k in reversed(keys)))
    return union[order]


class TestMergeSortedPositions:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=120),
        distinct=st.integers(min_value=1, max_value=6),
        two_keys=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_sort_under_heavy_ties(
        self, seed, n, distinct, two_keys
    ):
        rng = np.random.default_rng(seed)
        # Few distinct key values force cross-run ties, the only case
        # where the scatter order can disagree with the lexicographic
        # one and the tie-resort path must fire.
        primary = rng.integers(0, distinct, n).astype(float)
        keys = (primary,)
        if two_keys:
            keys = (primary, rng.integers(0, distinct, n).astype(float))
        split = int(rng.integers(0, n + 1))
        perm = rng.permutation(n)
        a_pos, b_pos = perm[:split], perm[split:]

        def run_order(positions):
            sub = np.sort(positions)
            order = np.lexsort((sub,) + tuple(k[sub] for k in reversed(keys)))
            return sub[order]

        a, b = run_order(a_pos), run_order(b_pos)
        merged = _merge_sorted_positions(a, b, keys)
        np.testing.assert_array_equal(merged, _reference_merge(a, b, keys))

    def test_empty_runs(self):
        keys = (np.array([0.3, 0.1, 0.2]),)
        run = np.array([1, 2, 0], dtype=np.int64)
        empty = np.array([], dtype=np.int64)
        np.testing.assert_array_equal(
            _merge_sorted_positions(run, empty, keys), run
        )
        np.testing.assert_array_equal(
            _merge_sorted_positions(empty, run, keys), run
        )


# ---------------------------------------------------------------------------
# warm == cold differentials (direct drive through DeltaPoolBuilder)
# ---------------------------------------------------------------------------


def _make_builder(world):
    qm = HashQualityModel((0.0, 1.0), seed=3)
    builder = DeltaPoolBuilder(
        qm,
        _UNIT_COST,
        world.index,
        index_gamma=_GAMMA,
        slack=world.slack,
        assume_static_queries=False,
    )
    return builder


def _check_round(state, builder, world, use_prediction, trusted, config=_CFG):
    """Build one round, run warm and cold selection, compare exactly."""
    predicted_workers, predicted_tasks = world.predicted(use_prediction)
    instance = builder.build(
        world.workers, world.tasks, predicted_workers, predicted_tasks, world.now
    )
    pool = instance.pool
    rows = np.arange(len(pool), dtype=np.int64)
    state.begin_round(instance, builder.last_churn if trusted else None)
    warm = state.select(pool, rows, _BUDGET_CURRENT, _BUDGET_MAX, config)
    cold = greedy_select(pool, rows, _BUDGET_CURRENT, _BUDGET_MAX, config)
    if warm is not None:
        assert warm == cold
    return warm


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    use_prediction=st.booleans(),
    trusted=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_warm_matches_cold_under_random_churn(
    churn_world_cls, seed, use_prediction, trusted
):
    """Hypothesis core: random lifecycle/motion streams, trusted and
    self-diff origins, both prediction legs — every engaged round's
    warm selection equals the cold solve."""
    rng = np.random.default_rng(seed)
    world = churn_world_cls(rng, slack=0.03, index_gamma=_GAMMA)
    world.arrive_workers(12)
    world.arrive_tasks(14)
    builder = _make_builder(world)
    state = SelectionState()
    _check_round(state, builder, world, use_prediction, trusted)
    for _ in range(5):
        world.now += float(rng.uniform(0.1, 0.4))
        world.arrive_workers(int(rng.integers(0, 4)))
        world.arrive_tasks(int(rng.integers(0, 5)))
        world.remove_workers(int(rng.integers(0, 2)))
        world.remove_tasks(int(rng.integers(0, 2)))
        world.move_tasks(int(rng.integers(0, 3)), 0.05)
        world.move_workers(int(rng.integers(0, 2)), 0.05)
        _check_round(state, builder, world, use_prediction, trusted)
    stats = state.stats
    assert stats.primes + stats.repaired == stats.rounds


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    trusted=st.booleans(),
)
@settings(max_examples=6, deadline=None)
def test_warm_matches_cold_on_adversarial_corpus(
    adversarial_scenario, churn_world_cls, seed, trusted
):
    """The same named worst-case scripts the delta builder faces
    (``test_model_delta``) cannot make a repaired selection diverge."""
    rng = np.random.default_rng(seed)
    world = churn_world_cls(rng, slack=0.03, index_gamma=_GAMMA)
    builder = _make_builder(world)
    state = SelectionState()
    for i in range(adversarial_scenario.num_rounds):
        adversarial_scenario.drive(world, i)
        _check_round(state, builder, world, False, trusted)
    stats = state.stats
    assert stats.primes + stats.repaired == stats.rounds


def test_repair_path_actually_serves(churn_world_cls):
    """Low churn on a standing pool must route through the repair path
    (repaired rounds, zero guard fallbacks) — not silently cold-prime
    every round, which would pass every differential while delivering
    no amortization."""
    rng = np.random.default_rng(7)
    world = churn_world_cls(rng, slack=0.05, index_gamma=_GAMMA)
    world.arrive_workers(20)
    world.arrive_tasks(24)
    builder = _make_builder(world)
    state = SelectionState()
    for _ in range(6):
        _check_round(state, builder, world, False, True)
        world.now += 0.05
        world.arrive_tasks(1)
    stats = state.stats
    assert stats.rounds == 6
    assert stats.repaired > 0
    assert stats.guard_fallbacks == 0
    assert stats.rows_survived > stats.rows_fresh


# ---------------------------------------------------------------------------
# lifecycle edges
# ---------------------------------------------------------------------------


def test_carry_composes_across_declined_rounds(churn_world_cls):
    """A declined round (pool under the engine floor that round) must
    not break the trusted-origin chain: the churn record observed on
    the declined round composes into the carry, and the next engaged
    round still repairs."""
    rng = np.random.default_rng(11)
    world = churn_world_cls(rng, slack=0.05, index_gamma=_GAMMA)
    world.arrive_workers(18)
    world.arrive_tasks(20)
    builder = _make_builder(world)
    state = SelectionState()
    engaged = GreedyConfig(triplet_min_rows=8)
    # A config whose floor no realistic pool reaches: the round goes
    # through select() but is declined after the churn is observed —
    # exactly what a small-pool gap between engaged rounds looks like.
    declined = GreedyConfig(triplet_min_rows=10**6)

    assert _check_round(state, builder, world, False, True, engaged) is not None
    assert state.stats.primes == 1
    for _ in range(2):
        world.now += 0.05
        world.arrive_tasks(1)
        assert (
            _check_round(state, builder, world, False, True, declined) is None
        )
    assert state.stats.declined == 2
    world.now += 0.05
    world.arrive_tasks(1)
    assert _check_round(state, builder, world, False, True, engaged) is not None
    assert state.stats.repaired == 1, (
        "the engaged round after the gap should repair through the "
        "composed carry, not cold-prime"
    )
    assert state.stats.guard_fallbacks == 0


def test_mass_churn_falls_back_to_cold_build(churn_world_cls):
    """Replacing most of the population in one round overflows the
    repair economics: the state must take the total fallback (a cold
    structural build), still bit-identically."""
    rng = np.random.default_rng(13)
    world = churn_world_cls(rng, slack=0.05, index_gamma=_GAMMA)
    world.arrive_workers(16)
    world.arrive_tasks(20)
    builder = _make_builder(world)
    state = SelectionState(repair_ratio=0.3)
    _check_round(state, builder, world, False, True)
    world.now += 0.05
    world.remove_tasks(16)
    world.arrive_tasks(18)
    _check_round(state, builder, world, False, True)
    assert state.stats.churn_fallbacks >= 1
    assert state.stats.rounds == 2


def test_invalidate_forces_cold_prime(churn_world_cls):
    rng = np.random.default_rng(17)
    world = churn_world_cls(rng, slack=0.05, index_gamma=_GAMMA)
    world.arrive_workers(14)
    world.arrive_tasks(16)
    builder = _make_builder(world)
    state = SelectionState()
    _check_round(state, builder, world, False, True)
    world.now += 0.05
    state.invalidate()
    _check_round(state, builder, world, False, True)
    assert state.stats.primes == 2
    assert state.stats.repaired == 0


def test_repair_ratio_validation():
    with pytest.raises(ValueError, match="repair_ratio"):
        SelectionState(repair_ratio=0.0)
    with pytest.raises(ValueError, match="repair_ratio"):
        SelectionState(repair_ratio=1.5)


class TestTripletMinRowsBoundary:
    """The engine floor gates warm engagement exactly at the boundary."""

    def _armed_state(self, problem):
        state = SelectionState()
        state.begin_round(problem)
        return state

    def test_at_floor_engages(self):
        problem = make_problem(seed=3)
        n = len(problem.pool)
        assert n > 1
        state = self._armed_state(problem)
        config = GreedyConfig(triplet_min_rows=n)
        rows = np.arange(n, dtype=np.int64)
        selected = state.select(
            problem.pool, rows, _BUDGET_CURRENT, _BUDGET_MAX, config
        )
        assert selected is not None
        assert state.stats.rounds == 1 and state.stats.primes == 1
        assert selected == greedy_select(
            problem.pool, rows, _BUDGET_CURRENT, _BUDGET_MAX, config
        )

    def test_below_floor_declines(self):
        problem = make_problem(seed=3)
        n = len(problem.pool)
        state = self._armed_state(problem)
        config = GreedyConfig(triplet_min_rows=n + 1)
        selected = state.select(
            problem.pool,
            np.arange(n, dtype=np.int64),
            _BUDGET_CURRENT,
            _BUDGET_MAX,
            config,
        )
        assert selected is None
        assert state.stats.declined == 1 and state.stats.rounds == 0

    def test_subset_row_sets_decline(self):
        problem = make_problem(seed=3)
        n = len(problem.pool)
        state = self._armed_state(problem)
        selected = state.select(
            problem.pool,
            np.arange(n - 1, dtype=np.int64),
            _BUDGET_CURRENT,
            _BUDGET_MAX,
            GreedyConfig(triplet_min_rows=1),
        )
        assert selected is None
        assert state.stats.declined == 1


# ---------------------------------------------------------------------------
# engine level
# ---------------------------------------------------------------------------


class TestEngineWarmEqualsCold:
    """The full streaming engine, warm selection on vs off."""

    @pytest.mark.parametrize(
        "make_assigner",
        [
            lambda: MQAGreedy(GreedyConfig(triplet_min_rows=64)),
            MQADivideConquer,
            HungarianAssigner,
        ],
        ids=["greedy", "dc", "hungarian"],
    )
    def test_results_identical(self, make_assigner):
        workload = BurstyWorkload(
            WorkloadParams(num_workers=110, num_tasks=110, num_instances=4),
            seed=9,
        )
        results = {}
        for warm in (False, True):
            config = StreamConfig(
                round_interval=0.5,
                budget=25.0,
                use_delta_builder=True,
                use_warm_select=warm,
            )
            results[warm] = run_stream(
                workload, make_assigner(), config=config, seed=9
            )
        cold, warm = results[False], results[True]
        assert warm.total_assigned == cold.total_assigned
        assert warm.total_quality == cold.total_quality
        assert warm.total_cost == cold.total_cost
        assert warm.assignments == cold.assignments


class TestTileSelectionStates:
    def test_states_keyed_per_tile(self):
        tiles = TileSelectionStates(num_tiles=4)
        a, b = tiles.state_for(0), tiles.state_for(3)
        assert a is not b
        assert tiles.state_for(0) is a  # lazy but persistent
        assert tiles.global_state not in (a, b)
        assert tiles.num_tiles == 4

    def test_tile_range_validated(self):
        tiles = TileSelectionStates(num_tiles=2)
        with pytest.raises(ValueError, match="tile"):
            tiles.state_for(2)
        with pytest.raises(ValueError, match="tile"):
            tiles.state_for(-1)
        with pytest.raises(ValueError, match="num_tiles"):
            TileSelectionStates(num_tiles=0)

    def test_per_tile_states_repair_independently(self, churn_world_cls):
        """Two tiles' sub-streams repair against their own history."""
        rng = np.random.default_rng(23)
        worlds = [
            churn_world_cls(np.random.default_rng(s), slack=0.05, index_gamma=_GAMMA)
            for s in (31, 37)
        ]
        builders = []
        for world in worlds:
            world.arrive_workers(16)
            world.arrive_tasks(18)
            builders.append(_make_builder(world))
        tiles = TileSelectionStates(num_tiles=2)
        for _ in range(4):
            for tile, (world, builder) in enumerate(zip(worlds, builders)):
                _check_round(
                    tiles.state_for(tile), builder, world, False, True
                )
                world.now += 0.05
                world.arrive_tasks(1)
        del rng
        for tile in (0, 1):
            stats = tiles.state_for(tile).stats
            assert stats.rounds == 4
            assert stats.repaired > 0
