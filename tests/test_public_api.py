"""The public API surface: everything README promises is importable."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_core_entry_points(self):
        assert callable(repro.MQAGreedy)
        assert callable(repro.MQADivideConquer)
        assert callable(repro.RandomAssigner)
        assert callable(repro.HungarianAssigner)
        assert callable(repro.exact_assignment)

    def test_simulation_entry_points(self):
        assert callable(repro.SimulationEngine)
        assert callable(repro.EngineConfig)

    def test_workload_entry_points(self):
        assert callable(repro.SyntheticWorkload)
        assert callable(repro.RealWorkload)
        assert callable(repro.WorkloadParams)

    def test_cli_module_importable(self):
        from repro.cli import main

        assert callable(main)

    def test_experiments_registry_complete(self):
        from repro.experiments import FIGURES

        expected = {
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig18_19", "fig20", "fig21", "fig22", "fig23", "fig24",
            "fig25", "fig26", "fig27",
        }
        assert set(FIGURES) == expected

    def test_result_serialization(self):
        from repro.simulation.metrics import InstanceMetrics, SimulationResult

        result = SimulationResult(
            instances=[
                InstanceMetrics(
                    instance=0, quality=1.0, cost=2.0, assigned=1,
                    num_workers=3, num_tasks=3, num_predicted_workers=0,
                    num_predicted_tasks=0, num_pairs=5, cpu_seconds=0.1,
                )
            ]
        )
        rows = result.to_rows()
        assert rows[0]["quality"] == 1.0
        assert result.average_quality_per_assignment == 1.0
        assert result.average_cost_per_assignment == 2.0
        assert result.budget_utilization_for(4.0) == 0.5
        assert 0.0 <= result.task_completion_rate <= 1.0
