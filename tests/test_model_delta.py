"""Differential tests: incremental round-over-round pool maintenance.

Random event sequences — arrivals, expiries, assignments, and motion
including slack-boundary crossings — must leave the
:class:`~repro.model.delta.DeltaPoolBuilder` emitting pools
bit-identical to a fresh :func:`~repro.model.sparse.
build_problem_sparse` build every round, for both prediction legs,
with trusted churn hints and with the builder deriving the diff
itself.  The fallback triggers (clock regression, journal overflow,
churn ratio, list/journal disagreement) are exercised separately: the
builder must stay *total* — exact output, merely repaired less often.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.box import Box
from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex
from repro.model.delta import DeltaPoolBuilder
from repro.model.entities import Task, Worker
from repro.model.sparse import build_problem_sparse
from repro.testing import make_predicted_tasks, make_predicted_workers
from repro.workloads.quality import HashQualityModel

_POOL_COLUMNS = (
    "worker_idx",
    "task_idx",
    "cost_mean",
    "cost_var",
    "cost_lb",
    "cost_ub",
    "quality_mean",
    "quality_var",
    "quality_lb",
    "quality_ub",
    "existence",
    "is_current",
)

#: Fine enough that cell-granularity gather padding (half a cell side,
#: 1/32) cannot silently absorb a missing slack term in a join radius —
#: the tested slacks go up to 0.1.
_GAMMA = 16
_UNIT_COST = 10.0


def _assert_pools_identical(expected, actual):
    assert len(expected.pool) == len(actual.pool)
    for name in _POOL_COLUMNS:
        np.testing.assert_array_equal(
            getattr(expected.pool, name), getattr(actual.pool, name), err_msg=name
        )


def _clip01(value: float) -> float:
    return float(min(max(value, 0.0), 1.0))


class _World:
    """A random stream of entity lifecycle events driven by one rng."""

    def __init__(self, rng: np.random.Generator, slack: float):
        self.rng = rng
        self.slack = slack
        self.index = SpatialIndex(GridIndex(_GAMMA))
        self.workers: list[Worker] = []
        self.tasks: list[Task] = []
        self.now = 0.0
        self._next_id = 0

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def arrive_workers(self, count: int) -> None:
        for _ in range(count):
            self.workers.append(
                Worker(
                    id=self._new_id(),
                    location=Point(*self.rng.uniform(0.0, 1.0, 2)),
                    velocity=float(self.rng.uniform(0.05, 0.4)),
                    arrival=self.now,
                )
            )

    def arrive_tasks(self, count: int) -> None:
        for _ in range(count):
            task = Task(
                id=self._new_id(),
                location=Point(*self.rng.uniform(0.0, 1.0, 2)),
                deadline=self.now + float(self.rng.uniform(0.3, 3.0)),
                arrival=self.now,
            )
            self.tasks.append(task)
            self.index.insert(task.id, task.location)

    def remove_workers(self, count: int) -> list[int]:
        removed = []
        for _ in range(min(count, len(self.workers))):
            position = int(self.rng.integers(len(self.workers)))
            removed.append(self.workers.pop(position).id)
        return removed

    def remove_tasks(self, count: int) -> None:
        for _ in range(min(count, len(self.tasks))):
            position = int(self.rng.integers(len(self.tasks)))
            task = self.tasks.pop(position)
            self.index.remove(task.id)

    def move_tasks(self, count: int, scale: float) -> None:
        """Displace random tasks; ``scale`` around the slack boundary
        exercises both the keep-cached and the drop-and-rejoin path."""
        for _ in range(min(count, len(self.tasks))):
            position = int(self.rng.integers(len(self.tasks)))
            task = self.tasks[position]
            step = self.rng.uniform(-scale, scale, 2)
            point = Point(
                _clip01(task.location.x + step[0]), _clip01(task.location.y + step[1])
            )
            moved = replace(task, location=point, box=Box.from_point(point))
            self.tasks[position] = moved
            self.index.move(moved.id, point)

    def move_workers(self, count: int, scale: float) -> None:
        for _ in range(min(count, len(self.workers))):
            position = int(self.rng.integers(len(self.workers)))
            worker = self.workers[position]
            step = self.rng.uniform(-scale, scale, 2)
            point = Point(
                _clip01(worker.location.x + step[0]),
                _clip01(worker.location.y + step[1]),
            )
            self.workers[position] = replace(
                worker, location=point, box=Box.from_point(point)
            )

    def random_round(self, allow_worker_motion: bool) -> None:
        rng = self.rng
        self.now += float(rng.uniform(0.0, 0.6))
        self.arrive_workers(int(rng.integers(0, 5)))
        self.arrive_tasks(int(rng.integers(0, 6)))
        self.remove_workers(int(rng.integers(0, 3)))
        self.remove_tasks(int(rng.integers(0, 3)))
        if rng.random() < 0.7:
            # Mix sub-slack jitter with boundary-crossing jumps.
            self.move_tasks(int(rng.integers(0, 3)), self.slack * 0.8)
            self.move_tasks(int(rng.integers(0, 2)), self.slack * 3.0 + 0.05)
        if allow_worker_motion and rng.random() < 0.7:
            self.move_workers(int(rng.integers(0, 3)), self.slack * 0.8)
            self.move_workers(int(rng.integers(0, 2)), self.slack * 3.0 + 0.05)

    def predicted(self, use_prediction: bool):
        if not use_prediction:
            return [], []
        k = int(self.rng.integers(0, 5))
        l = int(self.rng.integers(0, 5))
        seed = int(self.rng.integers(0, 2**31))
        prng = np.random.default_rng(seed)
        return (
            make_predicted_workers(
                prng, k, arrival=self.now + 0.5, id_offset=5_000_000
            ),
            make_predicted_tasks(
                prng, l, arrival=self.now + 0.5, id_offset=6_000_000
            ),
        )


def _check_round(world: _World, builder: DeltaPoolBuilder, qm, use_prediction: bool):
    predicted_workers, predicted_tasks = world.predicted(use_prediction)
    fresh = build_problem_sparse(
        world.workers,
        world.tasks,
        predicted_workers,
        predicted_tasks,
        qm,
        _UNIT_COST,
        world.now,
        task_index=world.index if world.tasks else None,
        index_gamma=_GAMMA,
    )
    maintained = builder.build(
        world.workers, world.tasks, predicted_workers, predicted_tasks, world.now
    )
    _assert_pools_identical(fresh, maintained)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rounds=st.integers(min_value=2, max_value=8),
    slack=st.sampled_from([0.0, 0.03, 0.1]),
    use_prediction=st.booleans(),
    static_queries=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_delta_bit_identical_under_random_event_sequences(
    seed, rounds, slack, use_prediction, static_queries
):
    """The core differential: every round of a random lifecycle/motion
    stream emits a pool bit-identical to a fresh sparse build."""
    rng = np.random.default_rng(seed)
    qm = HashQualityModel((0.0, 1.0), seed=3)
    world = _World(rng, slack=max(slack, 0.02))
    world.arrive_workers(int(rng.integers(0, 12)))
    world.arrive_tasks(int(rng.integers(0, 12)))
    # Static-query mode promises immutable workers, so motion only
    # happens on the task side there.
    allow_worker_motion = not static_queries
    builder = DeltaPoolBuilder(
        qm,
        _UNIT_COST,
        world.index,
        index_gamma=_GAMMA,
        slack=slack,
        assume_static_queries=static_queries,
    )
    _check_round(world, builder, qm, use_prediction)
    for _ in range(rounds):
        world.random_round(allow_worker_motion)
        _check_round(world, builder, qm, use_prediction)
    stats = builder.delta_stats
    assert stats.rounds == rounds + 1
    assert stats.primes + stats.incremental_rounds == stats.rounds


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    use_prediction=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_delta_adversarial_corpus(
    adversarial_scenario, churn_world_cls, seed, use_prediction
):
    """The named worst-case churn scripts (slack-boundary oscillators,
    mass-expiry cliffs, ... — the conftest corpus) cannot break
    pool-maintenance bit-identity.  The same scripts are run against
    the selection-state repair in ``test_selection_state``."""
    rng = np.random.default_rng(seed)
    qm = HashQualityModel((0.0, 1.0), seed=3)
    world = churn_world_cls(rng, slack=0.03, index_gamma=_GAMMA)
    # The scripts move workers, so static-query mode (which promises
    # immutable workers) must be off.
    builder = DeltaPoolBuilder(
        qm,
        _UNIT_COST,
        world.index,
        index_gamma=_GAMMA,
        slack=0.03,
        assume_static_queries=False,
    )
    for i in range(adversarial_scenario.num_rounds):
        adversarial_scenario.drive(world, i)
        _check_round(world, builder, qm, use_prediction)
    stats = builder.delta_stats
    assert stats.rounds == adversarial_scenario.num_rounds


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_delta_trusted_hints_match_selfdiff(seed):
    """The engine-style trusted churn hints and the self-derived diff
    must repair to the same pool (both bit-identical to fresh)."""
    rng = np.random.default_rng(seed)
    qm = HashQualityModel((0.0, 1.0), seed=3)
    world = _World(rng, slack=0.0)
    world.arrive_workers(20)
    world.arrive_tasks(20)
    builder = DeltaPoolBuilder(qm, _UNIT_COST, world.index, index_gamma=_GAMMA)
    builder.build(world.workers, world.tasks, [], [], world.now)

    world.now += 0.4
    removed = world.remove_workers(2)
    before = len(world.workers)
    world.arrive_workers(3)
    arrivals = world.workers[before:]
    world.remove_tasks(2)
    world.arrive_tasks(3)

    fresh = build_problem_sparse(
        world.workers, world.tasks, [], [], qm, _UNIT_COST, world.now,
        task_index=world.index if world.tasks else None, index_gamma=_GAMMA,
    )
    maintained = builder.build(
        world.workers, world.tasks, [], [], world.now,
        worker_arrivals=arrivals, worker_removed_ids=removed,
    )
    _assert_pools_identical(fresh, maintained)
    assert builder.delta_stats.incremental_rounds >= 1


def test_stale_bucket_within_slack_keeps_predicted_family_exact():
    """Regression: a task moved within the slack keeps its stale CSR
    bucket, so the <w_hat, t> gather must inflate by the slack or a
    predicted worker reaching the task's *current* position (but not
    its bucket) silently loses a valid pair.  Fine grid on purpose —
    cell padding must not absorb the missing term."""
    gamma = 64
    qm = HashQualityModel((0.0, 1.0), seed=3)
    index = SpatialIndex(GridIndex(gamma))
    task = Task(id=1, location=Point(0.60, 0.5), deadline=5.0, arrival=0.0)
    decoy = Task(id=2, location=Point(0.10, 0.9), deadline=5.0, arrival=0.0)
    workers = [Worker(id=3, location=Point(0.05, 0.05), velocity=0.01, arrival=0.0)]
    tasks = [task, decoy]
    for t in tasks:
        index.insert(t.id, t.location)
    builder = DeltaPoolBuilder(
        qm, _UNIT_COST, index, index_gamma=gamma, slack=0.1
    )
    builder.build(workers, tasks, [], [], 0.0)
    # Move within slack: bucket (anchor) stays at 0.60.
    moved = replace(task, location=Point(0.52, 0.5), box=Box.from_point(Point(0.52, 0.5)))
    tasks[0] = moved
    index.move(moved.id, moved.location)
    rng = np.random.default_rng(0)
    for velocity in (0.030, 0.035, 0.040):
        predicted = [
            replace(
                make_predicted_workers(rng, 1, half_width=0.02, arrival=1.5)[0],
                location=Point(0.40, 0.5),
                velocity=velocity,
                box=Box.from_center(Point(0.40, 0.5), 0.02, 0.02).clipped(),
            )
        ]
        fresh = build_problem_sparse(
            workers, tasks, predicted, [], qm, _UNIT_COST, 1.0,
            task_index=index, index_gamma=gamma,
        )
        maintained = builder.build(workers, tasks, predicted, [], 1.0)
        _assert_pools_identical(fresh, maintained)


class TestFallbackTriggers:
    """The repair path must yield to a full rebuild exactly when the
    incremental invariants no longer hold — and stay exact."""

    def _fixture(self, seed=1):
        rng = np.random.default_rng(seed)
        qm = HashQualityModel((0.0, 1.0), seed=3)
        world = _World(rng, slack=0.0)
        world.arrive_workers(10)
        world.arrive_tasks(12)
        builder = DeltaPoolBuilder(qm, _UNIT_COST, world.index, index_gamma=_GAMMA)
        _check_round(world, builder, qm, False)
        return world, builder, qm

    def test_clock_regression_reprimes(self):
        world, builder, qm = self._fixture()
        world.now += 1.0
        _check_round(world, builder, qm, False)
        world.now -= 0.5
        _check_round(world, builder, qm, False)
        assert builder.delta_stats.primes == 2
        assert builder.delta_stats.rounds == 3

    def test_journal_overflow_reprimes(self):
        rng = np.random.default_rng(2)
        qm = HashQualityModel((0.0, 1.0), seed=3)
        world = _World(rng, slack=0.0)
        world.arrive_tasks(5)
        world.arrive_workers(5)
        index = world.index
        builder = DeltaPoolBuilder(qm, _UNIT_COST, index, index_gamma=_GAMMA)
        # Shrink the already-subscribed log so a burst overflows it.
        builder._log._capacity = 8
        _check_round(world, builder, qm, False)
        world.now += 0.2
        world.arrive_tasks(10)  # 10 inserts > capacity 8
        _check_round(world, builder, qm, False)
        assert builder.delta_stats.primes == 2

    def test_churn_ratio_reprimes(self):
        rng = np.random.default_rng(3)
        qm = HashQualityModel((0.0, 1.0), seed=3)
        world = _World(rng, slack=0.0)
        world.arrive_workers(4)
        world.arrive_tasks(4)
        builder = DeltaPoolBuilder(
            qm, _UNIT_COST, world.index, index_gamma=_GAMMA, rebuild_churn_ratio=0.25
        )
        _check_round(world, builder, qm, False)
        world.now += 0.2
        world.arrive_tasks(6)  # 6 / 8 cached >> 0.25
        _check_round(world, builder, qm, False)
        assert builder.delta_stats.primes == 2
        # A quiet follow-up round repairs incrementally again.
        world.now += 0.2
        _check_round(world, builder, qm, False)
        assert builder.delta_stats.incremental_rounds == 1

    def test_list_out_of_sync_with_journal_reprimes(self):
        world, builder, qm = self._fixture()
        # Drop a task from the list but *not* from the index: the
        # repaired cache cannot mirror the lists, so the builder must
        # fall back to a prime built from the lists (and stay exact).
        orphan = world.tasks.pop()
        world.now += 0.1
        predicted = ([], [])
        fresh = build_problem_sparse(
            world.workers, world.tasks, *predicted, qm, _UNIT_COST, world.now,
            index_gamma=_GAMMA,
        )
        maintained = builder.build(
            world.workers, world.tasks, *predicted, world.now
        )
        _assert_pools_identical(fresh, maintained)
        assert builder.delta_stats.primes == 2
        world.index.remove(orphan.id)

    def test_invalidate_forces_prime(self):
        world, builder, qm = self._fixture()
        builder.invalidate()
        world.now += 0.1
        _check_round(world, builder, qm, False)
        assert builder.delta_stats.primes == 2


class TestConstructorValidation:
    def test_rejects_negative_slack(self):
        qm = HashQualityModel((0.0, 1.0), seed=3)
        with pytest.raises(ValueError, match="slack"):
            DeltaPoolBuilder(qm, 1.0, SpatialIndex(GridIndex(4)), slack=-0.1)

    def test_rejects_bad_churn_ratio(self):
        qm = HashQualityModel((0.0, 1.0), seed=3)
        with pytest.raises(ValueError, match="rebuild_churn_ratio"):
            DeltaPoolBuilder(
                qm, 1.0, SpatialIndex(GridIndex(4)), rebuild_churn_ratio=0.0
            )

    def test_rejects_negative_unit_cost(self):
        qm = HashQualityModel((0.0, 1.0), seed=3)
        with pytest.raises(ValueError, match="unit cost"):
            DeltaPoolBuilder(qm, -1.0, SpatialIndex(GridIndex(4)))

    def test_rejects_predicted_entity_in_cache(self):
        qm = HashQualityModel((0.0, 1.0), seed=3)
        index = SpatialIndex(GridIndex(4))
        builder = DeltaPoolBuilder(qm, 1.0, index)
        rng = np.random.default_rng(0)
        predicted = make_predicted_workers(rng, 1)
        with pytest.raises(ValueError, match="predicted"):
            builder.build(predicted, [], [], [], 0.0)
