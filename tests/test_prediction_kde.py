"""Tests for repro.prediction.kde."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.prediction.kde import (
    UNIFORM_KERNEL_CONSTANT,
    kde_bandwidth,
    sample_boxes,
)


class TestBandwidth:
    def test_paper_constant(self):
        assert UNIFORM_KERNEL_CONSTANT == pytest.approx(1.8431)

    def test_known_value(self):
        # h = sigma * 1.8431 * n^(-1/5)
        assert kde_bandwidth(0.25, 32) == pytest.approx(0.25 * 1.8431 * 32 ** (-0.2))

    def test_zero_std_gives_zero_bandwidth(self):
        assert kde_bandwidth(0.0, 100) == 0.0

    def test_zero_samples_gives_zero_bandwidth(self):
        assert kde_bandwidth(0.3, 0) == 0.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            kde_bandwidth(-0.1, 10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            kde_bandwidth(0.1, -1)

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_bandwidth_positive_and_shrinks_with_n(self, std, n):
        h1 = kde_bandwidth(std, n)
        h2 = kde_bandwidth(std, n * 2)
        assert h1 > 0.0
        assert h2 < h1


class TestSampleBoxes:
    def test_boxes_centered_on_samples(self):
        samples = [Point(0.5, 0.5)]
        box = sample_boxes(samples, 0.1, 0.2, clip=False)[0]
        assert (box.x_lo, box.x_hi) == (0.4, 0.6)
        assert (box.y_lo, box.y_hi) == pytest.approx((0.3, 0.7))

    def test_clipping_at_boundary(self):
        box = sample_boxes([Point(0.02, 0.98)], 0.1, 0.1)[0]
        assert box.x_lo == 0.0
        assert box.y_hi == 1.0

    def test_zero_bandwidth_degenerate(self):
        box = sample_boxes([Point(0.3, 0.3)], 0.0, 0.0)[0]
        assert box.is_degenerate

    def test_one_box_per_sample(self):
        samples = [Point(0.1, 0.1), Point(0.2, 0.2), Point(0.3, 0.3)]
        assert len(sample_boxes(samples, 0.05, 0.05)) == 3

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            sample_boxes([Point(0.5, 0.5)], -0.1, 0.1)

    def test_samples_inside_their_boxes(self):
        samples = [Point(0.4, 0.6), Point(0.9, 0.1)]
        for sample, box in zip(samples, sample_boxes(samples, 0.07, 0.03)):
            assert box.contains(sample)
