"""Tests for repro.experiments.reporting."""

from repro.experiments.reporting import format_figure, format_figure_csv
from repro.experiments.runner import FigureResult, SeriesPoint


def sample_result():
    points = [
        SeriesPoint("100", "GREEDY", 10.0, 0.01, 5, 3.0),
        SeriesPoint("200", "GREEDY", 20.0, 0.02, 9, 6.0),
        SeriesPoint("100", "RANDOM", 4.0, 0.001, 4, 3.0),
        SeriesPoint("200", "RANDOM", 8.0, 0.001, 8, 6.0),
    ]
    return FigureResult(
        figure_id="fig11",
        title="Effect of the budget B",
        x_name="B",
        x_labels=["100", "200"],
        algorithms=["GREEDY", "RANDOM"],
        points=points,
    )


class TestFormatFigure:
    def test_contains_header_and_series(self):
        text = format_figure(sample_result())
        assert "fig11" in text
        assert "Overall quality score" in text
        assert "Running time (s/instance)" in text
        assert "GREEDY" in text and "RANDOM" in text
        assert "10.00" in text and "20.00" in text

    def test_fig10_uses_error_header(self):
        result = sample_result()
        result = FigureResult(
            figure_id="fig10",
            title=result.title,
            x_name=result.x_name,
            x_labels=result.x_labels,
            algorithms=result.algorithms,
            points=result.points,
        )
        assert "Average relative error" in format_figure(result)

    def test_nan_rendered_as_dash(self):
        result = FigureResult(
            figure_id="x", title="t", x_name="w", x_labels=["1"],
            algorithms=["A"],
            points=[SeriesPoint("1", "A", float("nan"), 0.0, 0, 0.0)],
        )
        assert "-" in format_figure(result)


class TestFormatCsv:
    def test_csv_rows(self):
        csv_text = format_figure_csv(sample_result())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "figure,x,algorithm,quality,cpu_seconds,assigned,cost"
        assert len(lines) == 5
        assert lines[1].startswith("fig11,100,GREEDY,10.0000")
