"""Tests for repro.uncertainty.moments (Eqs. 2-5 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.box import Box
from repro.geo.point import Point
from repro.uncertainty.moments import (
    distance_value,
    squared_distance_moments,
    uniform_mean,
    uniform_raw_moment,
    uniform_variance,
)

interval = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
).map(lambda ab: (min(ab), max(ab)))


class TestUniformRawMoments:
    def test_degenerate_interval(self):
        assert uniform_raw_moment(0.5, 0.5, 3) == pytest.approx(0.125)

    def test_first_moment_is_midpoint(self):
        assert uniform_raw_moment(0.0, 1.0, 1) == pytest.approx(0.5)
        assert uniform_raw_moment(2.0, 4.0, 1) == pytest.approx(3.0)

    def test_second_moment_standard_uniform(self):
        assert uniform_raw_moment(0.0, 1.0, 2) == pytest.approx(1.0 / 3.0)

    def test_fourth_moment_standard_uniform(self):
        assert uniform_raw_moment(0.0, 1.0, 4) == pytest.approx(0.2)

    def test_zeroth_moment_is_one(self):
        assert uniform_raw_moment(0.3, 0.9, 0) == pytest.approx(1.0)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            uniform_raw_moment(0.0, 1.0, -1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            uniform_raw_moment(1.0, 0.0, 2)

    @given(interval, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_against_monte_carlo(self, bounds, k):
        lb, ub = bounds
        rng = np.random.default_rng(12345)
        samples = rng.uniform(lb, ub, size=200_000) if lb < ub else np.full(1000, lb)
        empirical = float(np.mean(samples**k))
        assert uniform_raw_moment(lb, ub, k) == pytest.approx(empirical, abs=2e-2)

    def test_mean_and_variance_helpers(self):
        assert uniform_mean(0.2, 0.8) == pytest.approx(0.5)
        assert uniform_variance(0.0, 1.0) == pytest.approx(1.0 / 12.0)
        assert uniform_variance(0.5, 0.5) == 0.0


class TestSquaredDistanceMoments:
    def test_two_points(self):
        a = Box.from_point(Point(0.0, 0.0))
        b = Box.from_point(Point(0.3, 0.4))
        mean, variance = squared_distance_moments(a, b)
        assert mean == pytest.approx(0.25)
        assert variance == pytest.approx(0.0, abs=1e-12)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(7)
        a = Box(0.1, 0.3, 0.2, 0.5)
        b = Box(0.6, 0.9, 0.1, 0.2)
        n = 400_000
        ax = rng.uniform(a.x_lo, a.x_hi, n)
        ay = rng.uniform(a.y_lo, a.y_hi, n)
        bx = rng.uniform(b.x_lo, b.x_hi, n)
        by = rng.uniform(b.y_lo, b.y_hi, n)
        z_sq = (ax - bx) ** 2 + (ay - by) ** 2
        mean, variance = squared_distance_moments(a, b)
        assert mean == pytest.approx(float(z_sq.mean()), rel=1e-2)
        assert variance == pytest.approx(float(z_sq.var()), rel=5e-2)

    def test_point_vs_box_monte_carlo(self):
        rng = np.random.default_rng(11)
        a = Box.from_point(Point(0.2, 0.2))
        b = Box(0.5, 0.8, 0.5, 0.9)
        n = 400_000
        bx = rng.uniform(b.x_lo, b.x_hi, n)
        by = rng.uniform(b.y_lo, b.y_hi, n)
        z_sq = (0.2 - bx) ** 2 + (0.2 - by) ** 2
        mean, variance = squared_distance_moments(a, b)
        assert mean == pytest.approx(float(z_sq.mean()), rel=1e-2)
        assert variance == pytest.approx(float(z_sq.var()), rel=5e-2)

    def test_symmetry(self):
        a = Box(0.1, 0.4, 0.1, 0.4)
        b = Box(0.5, 0.7, 0.6, 0.9)
        assert squared_distance_moments(a, b) == pytest.approx(
            squared_distance_moments(b, a)
        )

    def test_identical_points_zero(self):
        a = Box.from_point(Point(0.5, 0.5))
        mean, variance = squared_distance_moments(a, a)
        assert mean == 0.0
        assert variance == 0.0


class TestDistanceValue:
    def test_point_pair_is_certain(self):
        a = Box.from_point(Point(0.0, 0.0))
        b = Box.from_point(Point(0.6, 0.8))
        v = distance_value(a, b)
        assert v.is_certain
        assert v.mean == pytest.approx(1.0)

    def test_bounds_are_exact_box_distances(self):
        a = Box(0.0, 0.1, 0.0, 0.1)
        b = Box(0.5, 0.6, 0.0, 0.1)
        v = distance_value(a, b)
        assert v.lower == pytest.approx(0.4)
        assert v.upper == pytest.approx((0.6**2 + 0.1**2) ** 0.5)

    def test_delta_method_mean_close_to_monte_carlo(self):
        rng = np.random.default_rng(23)
        a = Box(0.1, 0.3, 0.1, 0.3)
        b = Box(0.6, 0.9, 0.5, 0.8)
        n = 400_000
        ax = rng.uniform(a.x_lo, a.x_hi, n)
        ay = rng.uniform(a.y_lo, a.y_hi, n)
        bx = rng.uniform(b.x_lo, b.x_hi, n)
        by = rng.uniform(b.y_lo, b.y_hi, n)
        distances = np.hypot(ax - bx, ay - by)
        v = distance_value(a, b)
        # sqrt(E[Z^2]) >= E[Z] (Jensen); the delta method stays close.
        assert v.mean == pytest.approx(float(distances.mean()), rel=5e-2)
        assert v.variance == pytest.approx(float(distances.var()), rel=0.3)

    def test_same_point_distance_zero(self):
        a = Box.from_point(Point(0.4, 0.4))
        v = distance_value(a, a)
        assert v.is_certain
        assert v.mean == 0.0

    def test_mean_clamped_within_bounds(self):
        a = Box(0.0, 0.5, 0.0, 0.5)
        b = Box(0.0, 0.5, 0.0, 0.5)
        v = distance_value(a, b)
        assert v.lower <= v.mean <= v.upper
