"""Differential tests: batched cell-join candidate generation.

The batched sparse builder (one bulk cell-join query per occupied
query cell, exact-validity scan, deferred pricing) must emit pools
bit-identical — rows, columns, and all four cost/quality channels —
to the retained per-entity reference loops (``batch_queries=False``)
and, transitively, to the dense builder, across random unit-square
workloads with and without ``exact_predicted_quality``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.instance import build_problem
from repro.model.sparse import SparseBuildStats, build_problem_sparse
from repro.testing import (
    make_predicted_tasks,
    make_predicted_workers,
    make_tasks,
    make_workers,
)
from repro.workloads.quality import HashQualityModel

_POOL_COLUMNS = (
    "worker_idx",
    "task_idx",
    "cost_mean",
    "cost_var",
    "cost_lb",
    "cost_ub",
    "quality_mean",
    "quality_var",
    "quality_lb",
    "quality_ub",
    "existence",
    "is_current",
)


def _assert_pools_identical(expected, actual):
    assert len(expected.pool) == len(actual.pool)
    for name in _POOL_COLUMNS:
        np.testing.assert_array_equal(
            getattr(expected.pool, name), getattr(actual.pool, name), err_msg=name
        )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=0, max_value=20),
    m=st.integers(min_value=0, max_value=20),
    k=st.integers(min_value=0, max_value=8),
    l=st.integers(min_value=0, max_value=8),
    velocity=st.floats(min_value=0.02, max_value=0.6),
    deadline_offset=st.floats(min_value=0.1, max_value=2.5),
    discount=st.booleans(),
    reservation=st.booleans(),
    future_future=st.booleans(),
    exact=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_batched_bit_identical_to_per_entity_loops(
    seed,
    n,
    m,
    k,
    l,
    velocity,
    deadline_offset,
    discount,
    reservation,
    future_future,
    exact,
):
    rng = np.random.default_rng(seed)
    workers = make_workers(rng, n, velocity=velocity)
    tasks = make_tasks(rng, m, deadline_offset=deadline_offset)
    predicted_workers = make_predicted_workers(rng, k)
    predicted_tasks = make_predicted_tasks(rng, l)
    quality_model = HashQualityModel((1.0, 2.0), seed=seed)
    kwargs = dict(
        discount_by_existence=discount,
        reservation_filter=reservation,
        include_future_future_pairs=future_future,
        exact_predicted_quality=exact,
    )
    batched = build_problem_sparse(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, 10.0, 0.0, **kwargs,
    )
    per_entity = build_problem_sparse(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, 10.0, 0.0, batch_queries=False, **kwargs,
    )
    _assert_pools_identical(per_entity, batched)
    # Transitively, both must equal the dense builder as well.
    dense = build_problem(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, 10.0, 0.0, **kwargs,
    )
    _assert_pools_identical(dense, batched)


def test_batched_counters_are_consistent():
    """gathered >= candidates >= emitted, and fewer pairs are priced
    than the per-entity loop's cell-level candidate count."""
    rng = np.random.default_rng(11)
    workers = make_workers(rng, 150, velocity=0.06)
    tasks = make_tasks(rng, 150, deadline_offset=0.7)
    predicted_workers = make_predicted_workers(rng, 40)
    predicted_tasks = make_predicted_tasks(rng, 40)
    quality_model = HashQualityModel((1.0, 2.0), seed=11)

    batched_stats = SparseBuildStats()
    build_problem_sparse(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, 10.0, 0.0, stats=batched_stats,
    )
    reference_stats = SparseBuildStats()
    build_problem_sparse(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, 10.0, 0.0, batch_queries=False, stats=reference_stats,
    )
    assert batched_stats.gathered >= batched_stats.candidates >= batched_stats.emitted
    assert batched_stats.emitted == reference_stats.emitted
    # The batched scan applies the exact validity predicate before
    # pricing, so it prices no more pairs than the reference examines.
    assert batched_stats.candidates <= reference_stats.candidates
    # One cell-join query per occupied query cell, not one per entity.
    assert batched_stats.queries < reference_stats.queries
    assert batched_stats.dense_equivalent == reference_stats.dense_equivalent


def test_batched_with_maintained_index():
    from repro.geo import GridIndex, SpatialIndex

    rng = np.random.default_rng(8)
    workers = make_workers(rng, 40, velocity=0.2)
    tasks = make_tasks(rng, 35)
    predicted_workers = make_predicted_workers(rng, 10)
    index = SpatialIndex(GridIndex(8))
    for task in tasks:
        index.insert(task.id, task.location)
    quality_model = HashQualityModel((1.0, 2.0), seed=8)
    dense = build_problem(workers, tasks, predicted_workers, [], quality_model, 10.0, 0.0)
    sparse = build_problem_sparse(
        workers, tasks, predicted_workers, [], quality_model, 10.0, 0.0,
        task_index=index,
    )
    _assert_pools_identical(dense, sparse)
