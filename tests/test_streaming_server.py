"""The async multi-tenant serving layer.

Contracts under test, in order of importance:

- **Determinism under multiplexing**: four tenants replaying known
  schedules concurrently through the server reach engines
  bit-identical (:func:`state_digest`) to serial single-tenant runs —
  the per-tenant pump serializes each tenant's ops, so concurrency
  across tenants never leaks into any tenant's results.
- **Admission control**: bounded queues, token-bucket rate limits and
  closed/unknown tenants reject *immediately* with a typed
  :class:`AdmissionError`, and every rejection is counted per
  (tenant, reason).
- **SLO export**: per-tenant phase p50/p95/p99 gauges and admission
  wait histograms appear in one Prometheus scrape.

No pytest-asyncio in the image: every test drives its own loop with
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import MQAGreedy
from repro.streaming import (
    AdmissionError,
    ServerConfig,
    StreamConfig,
    StreamingService,
    StreamServer,
    TenantSpec,
    state_digest,
    workload_events,
)
from repro.streaming.events import WorkerArrival
from repro.workloads import BurstyWorkload, WorkloadParams


def _schedule(seed: int):
    """A deterministic (factory, ops) pair for one tenant."""
    workload = BurstyWorkload(
        WorkloadParams(num_workers=18, num_tasks=22, num_instances=4), seed=seed
    )
    quality_model = workload.quality_model

    def factory():
        return StreamingService(
            MQAGreedy(),
            quality_model,
            config=StreamConfig(round_interval=0.5),
            seed=seed,
        )

    ops = []
    boundary = 0.5
    for event in workload_events(workload):
        while event.time > boundary:
            ops.append(("drain", boundary))
            boundary += 0.5
        if isinstance(event, WorkerArrival):
            ops.append(("worker", event.worker, event.time))
        else:
            ops.append(("task", event.task, event.time))
    ops.append(("drain", boundary + 1.0))
    return factory, ops


async def _replay(server: StreamServer, tenant: str, ops) -> None:
    for op in ops:
        if op[0] == "drain":
            await server.drain(tenant, op[1])
        elif op[0] == "worker":
            await server.submit_worker(tenant, op[1], op[2])
        else:
            await server.submit_task(tenant, op[1], op[2])


def _replay_serial(service: StreamingService, ops) -> None:
    for op in ops:
        if op[0] == "drain":
            service.drain(op[1])
        elif op[0] == "worker":
            service.submit_worker(op[1], op[2])
        else:
            service.submit_task(op[1], op[2])


class TestConcurrentTenants:
    def test_four_tenants_match_serial_references(self):
        """≥ 4 concurrent tenants over 2 slots == 4 serial runs."""
        tenants = {f"city-{i}": _schedule(seed=i) for i in range(4)}

        async def serve():
            digests = {}
            async with StreamServer(ServerConfig(num_workers=2)) as server:
                for name, (factory, _) in tenants.items():
                    server.add_tenant(TenantSpec(name=name, max_queue_depth=256), factory)
                await asyncio.gather(
                    *(_replay(server, n, ops) for n, (_, ops) in tenants.items())
                )
                for name in tenants:
                    digests[name] = state_digest(server.service(name).engine)
                assert server.tenants() == sorted(tenants)
            return digests

        served = asyncio.run(serve())
        for name, (factory, ops) in tenants.items():
            reference = factory()
            _replay_serial(reference, ops)
            assert served[name] == state_digest(reference.engine), name
            reference.close()

    def test_snapshot_is_read_only_and_admission_free(self):
        factory, ops = _schedule(seed=5)

        async def serve():
            async with StreamServer() as server:
                server.add_tenant(TenantSpec(name="t", max_queue_depth=256), factory)
                await _replay(server, "t", ops)
                snap = await server.snapshot("t")
                again = await server.snapshot("t")
                return snap, again

        snap, again = asyncio.run(serve())
        assert snap.rounds_run == again.rounds_run
        assert snap.assignments > 0
        assert snap.phase_latencies  # engine metrics flow through


class _GatedService:
    """Delegating wrapper whose mutating ops block on an event —
    deterministic backpressure for the queue_full tests."""

    def __init__(self, inner: StreamingService, gate: threading.Event) -> None:
        self._inner = inner
        self._gate = gate

    def submit_worker(self, worker, at=None):
        self._gate.wait(timeout=10)
        return self._inner.submit_worker(worker, at)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestAdmissionControl:
    def test_unknown_tenant(self):
        async def serve():
            async with StreamServer() as server:
                with pytest.raises(AdmissionError) as excinfo:
                    await server.submit_worker("ghost", None)
                assert excinfo.value.reason == "unknown_tenant"
                assert excinfo.value.tenant == "ghost"
                rejected = server.registry.find("server_rejected_total")
                assert [dict(c.labels) for c in rejected] == [
                    {"reason": "unknown_tenant", "tenant": "ghost"}
                ]

        asyncio.run(serve())

    def test_queue_full_rejects_typed(self):
        factory, ops = _schedule(seed=6)
        gate = threading.Event()
        workers = [op[1] for op in ops if op[0] == "worker"]

        async def serve():
            async with StreamServer(ServerConfig(num_workers=1)) as server:
                server.add_tenant(
                    TenantSpec(name="t", max_queue_depth=2),
                    lambda: _GatedService(factory(), gate),
                )
                # Op 1 occupies the pump (blocked on the gate): wait
                # until the admission-wait histogram records it as
                # *executing*, so the queue is empty again.
                first = asyncio.ensure_future(server.submit_worker("t", workers[0], 0.0))
                wait_hist = server.registry.histogram(
                    "server_admission_wait_seconds", {"tenant": "t"}
                )
                for _ in range(1000):
                    if wait_hist.count >= 1:
                        break
                    await asyncio.sleep(0.005)
                assert wait_hist.count == 1
                # Ops 2 and 3 fill the bounded queue; op 4 must bounce.
                pending = [
                    asyncio.ensure_future(server.submit_worker("t", w, 0.0))
                    for w in workers[1:3]
                ]
                await asyncio.sleep(0)  # let both reach put_nowait
                with pytest.raises(AdmissionError) as excinfo:
                    await server.submit_worker("t", workers[3], 0.0)
                assert excinfo.value.reason == "queue_full"
                gate.set()
                await asyncio.gather(first, *pending)
                counter = server.registry.counter(
                    "server_rejected_total", {"tenant": "t", "reason": "queue_full"}
                )
                assert counter.value == 1

        asyncio.run(serve())

    def test_rate_limit_rejects_typed(self):
        factory, ops = _schedule(seed=7)
        workers = [op[1] for op in ops if op[0] == "worker"]

        async def serve():
            async with StreamServer() as server:
                server.add_tenant(
                    TenantSpec(name="t", rate_limit=1e-6, burst=2), factory
                )
                await server.submit_worker("t", workers[0], 0.0)
                await server.submit_worker("t", workers[1], 0.0)
                with pytest.raises(AdmissionError) as excinfo:
                    await server.submit_worker("t", workers[2], 0.0)
                assert excinfo.value.reason == "rate_limited"

        asyncio.run(serve())

    def test_submit_after_close_rejects_closed(self):
        factory, _ = _schedule(seed=8)

        async def serve():
            server = StreamServer()
            await server.start()
            server.add_tenant(TenantSpec(name="t"), factory)
            await server.close()
            with pytest.raises(AdmissionError) as excinfo:
                await server.submit_worker("t", None)
            assert excinfo.value.reason == "closed"

        asyncio.run(serve())

    def test_engine_errors_propagate_not_wedge(self):
        """A bad op fails its caller's future; the pump keeps running."""
        from dataclasses import replace

        factory, ops = _schedule(seed=9)
        workers = [op[1] for op in ops if op[0] == "worker"]

        async def serve():
            async with StreamServer() as server:
                server.add_tenant(TenantSpec(name="t"), factory)
                await server.submit_worker("t", workers[0], 0.0)
                # The engine rejects predicted entities at submit time
                # — the error must reach this caller, not kill the pump.
                with pytest.raises(ValueError, match="predicted"):
                    await server.submit_worker(
                        "t", replace(workers[1], predicted=True), 0.0
                    )
                # Still serving after the failure:
                await server.submit_worker("t", workers[1], 0.0)
                await server.drain("t", 1.0)

        asyncio.run(serve())


class TestSpecValidation:
    def test_tenant_spec_bounds(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            TenantSpec(name="t", max_queue_depth=0)
        with pytest.raises(ValueError, match="rate_limit"):
            TenantSpec(name="t", rate_limit=0.0)
        with pytest.raises(ValueError, match="burst"):
            TenantSpec(name="t", burst=0)

    def test_server_config_bounds(self):
        with pytest.raises(ValueError, match="num_workers"):
            ServerConfig(num_workers=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ServerConfig(checkpoint_every=0)

    def test_admission_reason_closed_set(self):
        with pytest.raises(ValueError, match="unknown admission reason"):
            AdmissionError("t", "because")

    def test_lifecycle_misuse(self):
        factory, _ = _schedule(seed=10)

        async def serve():
            server = StreamServer()
            with pytest.raises(RuntimeError, match="started"):
                server.add_tenant(TenantSpec(name="t"), factory)
            await server.start()
            with pytest.raises(RuntimeError, match="already started"):
                await server.start()
            server.add_tenant(TenantSpec(name="t"), factory)
            with pytest.raises(ValueError, match="already registered"):
                server.add_tenant(TenantSpec(name="t"), factory)
            await server.close()
            await server.close()  # idempotent

        asyncio.run(serve())


class TestSloExport:
    def test_prometheus_carries_tenant_labeled_slo(self):
        tenants = {f"city-{i}": _schedule(seed=20 + i) for i in range(2)}

        async def serve():
            async with StreamServer() as server:
                for name, (factory, _) in tenants.items():
                    server.add_tenant(TenantSpec(name=name, max_queue_depth=256), factory)
                await asyncio.gather(
                    *(_replay(server, n, ops) for n, (_, ops) in tenants.items())
                )
                return server.metrics_prometheus(), server.metrics_json()

        text, snapshot = asyncio.run(serve())
        for name in tenants:
            assert f'server_admitted_total{{tenant="{name}"}}' in text
            for quantile in ("p50", "p95", "p99"):
                assert (
                    f'tenant_phase_latency_ms{{phase="round",'
                    f'quantile="{quantile}",tenant="{name}"}}' in text
                )
            assert f'server_admission_wait_seconds_count{{tenant="{name}"}}' in text
        assert snapshot["schema"] == "repro.obs.metrics/v1"
        gauges = {
            (g["name"], tuple(sorted(g.get("labels", {}).items())))
            for g in snapshot["gauges"]
        }
        assert (
            "tenant_phase_latency_ms",
            (("phase", "round"), ("quantile", "p99"), ("tenant", "city-0")),
        ) in gauges


class TestRecoveryIntegration:
    def test_tenant_with_recovery_dir_survives_restart(self, tmp_path):
        factory, ops = _schedule(seed=30)
        cut = len(ops) // 2
        spec = TenantSpec(
            name="t", max_queue_depth=256, recovery_dir=tmp_path / "t"
        )

        async def first_half():
            async with StreamServer() as server:
                server.add_tenant(spec, factory)
                await _replay(server, "t", ops[:cut])

        async def second_half():
            async with StreamServer() as server:
                server.add_tenant(spec, factory)
                assert server.service("t").ops_applied == cut
                await _replay(server, "t", ops[cut:])
                return state_digest(server.service("t").engine)

        asyncio.run(first_half())
        recovered = asyncio.run(second_half())

        reference = factory()
        _replay_serial(reference, ops)
        assert recovered == state_digest(reference.engine)
        reference.close()


class TestOpDeadlines:
    """``ServerConfig.op_timeout_s``: a wedged tenant cannot hold a
    worker slot, and its failure is contained to itself."""

    def test_stalled_op_times_out_and_wedges_only_its_tenant(self):
        from repro.faults import FaultPlan

        slow_factory, slow_ops = _schedule(seed=40)
        fast_factory, fast_ops = _schedule(seed=41)
        slow_workers = [op[1] for op in slow_ops if op[0] == "worker"]
        plan = FaultPlan.parse("delay op 2 of slow for 2s")
        config = ServerConfig(
            num_workers=2, op_timeout_s=0.25, faults=plan.injector()
        )

        async def serve():
            async with StreamServer(config) as server:
                server.add_tenant(
                    TenantSpec(name="slow", max_queue_depth=64), slow_factory
                )
                server.add_tenant(
                    TenantSpec(name="fast", max_queue_depth=256), fast_factory
                )
                await server.submit_worker("slow", slow_workers[0], 0.0)
                with pytest.raises(AdmissionError) as overrun:
                    await server.drain("slow", 0.5)  # op 2: stalled 30s
                assert overrun.value.reason == "timeout"
                assert overrun.value.tenant == "slow"
                # the wedged tenant now fails fast at admission
                with pytest.raises(AdmissionError) as rejected:
                    await server.submit_worker("slow", slow_workers[1], 0.0)
                assert rejected.value.reason == "timeout"
                # the healthy tenant is untouched by its neighbour
                await _replay(server, "fast", fast_ops)
                digest = state_digest(server.service("fast").engine)
                timeouts = sum(
                    c.value
                    for c in server.registry.find("server_op_timeouts_total")
                )
                assert timeouts == 1.0
            return digest

        digest = asyncio.run(serve())
        reference = fast_factory()
        _replay_serial(reference, fast_ops)
        assert digest == state_digest(reference.engine)
        reference.close()

    def test_queued_backlog_behind_a_wedge_fails_fast(self):
        from repro.faults import FaultPlan

        factory, ops = _schedule(seed=42)
        workers = [op[1] for op in ops if op[0] == "worker"]
        tasks = [op[1] for op in ops if op[0] == "task"]
        config = ServerConfig(
            num_workers=1,
            op_timeout_s=0.25,
            faults=FaultPlan.parse("delay op 1 of t for 2s").injector(),
        )

        async def serve():
            async with StreamServer(config) as server:
                server.add_tenant(
                    TenantSpec(name="t", max_queue_depth=64), factory
                )
                results = await asyncio.gather(
                    server.submit_worker("t", workers[0], 0.0),
                    server.submit_worker("t", workers[1], 0.0),
                    server.submit_task("t", tasks[0], 0.0),
                    return_exceptions=True,
                )
            return results

        results = asyncio.run(serve())
        assert len(results) == 3
        for outcome in results:
            assert isinstance(outcome, AdmissionError)
            assert outcome.reason == "timeout"

    def test_no_timeout_config_never_wedges(self):
        factory, ops = _schedule(seed=43)

        async def serve():
            async with StreamServer(ServerConfig()) as server:
                server.add_tenant(
                    TenantSpec(name="t", max_queue_depth=256), factory
                )
                await _replay(server, "t", ops)
                return state_digest(server.service("t").engine)

        digest = asyncio.run(serve())
        reference = factory()
        _replay_serial(reference, ops)
        assert digest == state_digest(reference.engine)
        reference.close()
