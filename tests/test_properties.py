"""Cross-module property-based tests (hypothesis).

These exercise randomized problem instances end to end and assert the
structural invariants every MQA assigner must uphold:

- matching validity (no worker/task reuse);
- the hard per-instance budget (Definition 4, constraint 2);
- only current pairs materialize (Fig. 5 line 14);
- monotonicity and dominance sanity of the selection machinery.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.divide_conquer import MQADivideConquer
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner

from repro.testing import make_problem

RNG = np.random.default_rng(0)

problem_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_workers": st.integers(min_value=0, max_value=14),
        "num_tasks": st.integers(min_value=0, max_value=12),
        "num_predicted_workers": st.integers(min_value=0, max_value=5),
        "num_predicted_tasks": st.integers(min_value=0, max_value=5),
    }
)
budgets = st.floats(min_value=0.0, max_value=40.0)

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=problem_params, budget=budgets)
@settings(**COMMON)
def test_greedy_invariants(params, budget):
    problem = make_problem(**params)
    result = MQAGreedy().assign(problem, budget, budget, RNG)
    workers = [p.worker.id for p in result.pairs]
    tasks = [p.task.id for p in result.pairs]
    assert len(set(workers)) == len(workers)
    assert len(set(tasks)) == len(tasks)
    assert result.total_cost <= budget + 1e-6
    assert all(p.is_current for p in result.pairs)


@given(params=problem_params, budget=budgets)
@settings(**COMMON)
def test_divide_conquer_invariants(params, budget):
    problem = make_problem(**params)
    result = MQADivideConquer().assign(problem, budget, budget, RNG)
    workers = [p.worker.id for p in result.pairs]
    tasks = [p.task.id for p in result.pairs]
    assert len(set(workers)) == len(workers)
    assert len(set(tasks)) == len(tasks)
    assert result.total_cost <= budget + 1e-6
    assert all(p.is_current for p in result.pairs)


@given(params=problem_params, budget=budgets, seed=st.integers(0, 100))
@settings(**COMMON)
def test_random_invariants(params, budget, seed):
    problem = make_problem(**params)
    rng = np.random.default_rng(seed)
    result = RandomAssigner().assign(problem, budget, budget, rng)
    workers = [p.worker.id for p in result.pairs]
    assert len(set(workers)) == len(workers)
    assert result.total_cost <= budget + 1e-6
    assert all(p.is_current for p in result.pairs)


@given(params=problem_params)
@settings(**COMMON)
def test_pool_construction_invariants(params):
    problem = make_problem(**params)
    pool = problem.pool
    assert (pool.cost_lb <= pool.cost_mean + 1e-9).all()
    assert (pool.cost_mean <= pool.cost_ub + 1e-9).all()
    assert (pool.quality_lb <= pool.quality_mean + 1e-9).all()
    assert (pool.quality_mean <= pool.quality_ub + 1e-9).all()
    assert (pool.cost_var >= 0.0).all()
    assert (pool.quality_var >= 0.0).all()
    assert ((pool.existence >= 0.0) & (pool.existence <= 1.0)).all()
    # Index ranges are valid.
    assert (pool.worker_idx >= 0).all()
    assert (pool.task_idx >= 0).all()
    if len(pool):
        assert pool.worker_idx.max() < len(problem.workers)
        assert pool.task_idx.max() < len(problem.tasks)
    # Current flags match entity flags.
    for row in range(len(pool)):
        worker = problem.workers[int(pool.worker_idx[row])]
        task = problem.tasks[int(pool.task_idx[row])]
        assert pool.is_current[row] == (worker.is_current and task.is_current)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    budget_small=st.floats(min_value=0.5, max_value=5.0),
    extra=st.floats(min_value=0.5, max_value=30.0),
)
@settings(**COMMON)
def test_greedy_budget_never_collapses(seed, budget_small, extra):
    """Greedy is not monotone in budget — extra budget can lure it into
    one expensive max-quality pair that crowds out several cheaper ones,
    and no fixed quality ratio survives that (seed=158, B=1.75 -> 2.25
    realizes a 0.35x drop, below the 0.5x this test once asserted).
    The true invariant: enlarging the budget only widens the feasible
    set, so whenever the smaller budget assigns anything, the larger
    one must assign at least one pair with positive quality.
    """
    problem = make_problem(seed=seed, num_workers=8, num_tasks=8)
    low = MQAGreedy().assign(problem, budget_small, 0.0, RNG)
    high = MQAGreedy().assign(problem, budget_small + extra, 0.0, RNG)
    if low.num_assigned > 0:
        assert high.num_assigned > 0
        assert high.total_quality > 0.0


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(**COMMON)
def test_greedy_never_beats_exact(seed):
    from repro.core.exact import exact_assignment

    problem = make_problem(seed=seed, num_workers=5, num_tasks=4)
    budget = 5.0
    result = MQAGreedy().assign(problem, budget, 0.0, RNG)
    _, optimum = exact_assignment(problem, budget)
    assert result.total_quality <= optimum + 1e-9
