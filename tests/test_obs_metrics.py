"""Unit tests of the metrics registry, export and exposition formats."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.export import (
    phase_percentiles,
    registry_snapshot,
    to_prometheus_text,
    validate_metrics_snapshot,
    write_metrics_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    latency_buckets,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("pool")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_counts_and_moments(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]  # last is the +inf overflow
        assert h.sum == pytest.approx(15.0)
        assert h.mean == pytest.approx(3.75)
        assert h.min == 0.5 and h.max == 10.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_percentiles_interpolated_and_clamped(self):
        h = Histogram("lat", bounds=tuple(float(b) for b in range(1, 101)))
        for v in range(1, 101):
            h.observe(v - 0.5)
        # Uniform over (0, 100): quantiles land within one bucket width.
        assert h.percentile(0.50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(0.95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(0.99) == pytest.approx(99.0, abs=1.0)
        # Clamped to the observed extremes, never the bucket edges.
        assert h.percentile(0.0) >= h.min
        assert h.percentile(1.0) <= h.max

    def test_percentile_empty_and_invalid(self):
        h = Histogram("lat")
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_single_observation_every_quantile(self):
        h = Histogram("lat")
        h.observe(0.0123)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(q) == pytest.approx(0.0123)

    def test_latency_buckets_geometric(self):
        bounds = latency_buckets(1e-3, 1.0, per_decade=3)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10 ** (1 / 3), rel=1e-6) for r in ratios[:-1])
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0


class TestRegistry:
    def test_instruments_created_once(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", {"x": "1"}) is not r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_disabled_registry_is_null(self):
        r = MetricsRegistry(enabled=False)
        c = r.counter("a")
        c.inc(5)
        h = r.histogram("lat")
        h.observe(1.0)
        assert c.value == 0.0
        assert h.percentile(0.5) == 0.0
        assert r.instruments() == []
        assert c is NULL_REGISTRY.counter("anything")  # shared null

    def test_find_by_name(self):
        r = MetricsRegistry()
        r.histogram("lat", {"tile": "0"}).observe(1.0)
        r.histogram("lat", {"tile": "1"}).observe(2.0)
        r.counter("other")
        assert [h.labels for h in r.find("lat")] == [
            (("tile", "0"),),
            (("tile", "1"),),
        ]


class TestExport:
    def _populated(self) -> MetricsRegistry:
        r = MetricsRegistry()
        r.counter("stream_rounds_total").inc(3)
        r.gauge("stream_available_workers").set(7)
        for name in ("stream_round_seconds", "stream_build_seconds"):
            h = r.histogram(name)
            for v in (0.001, 0.002, 0.004):
                h.observe(v)
        return r

    def test_snapshot_schema_and_validation(self):
        snap = registry_snapshot(self._populated())
        assert snap["schema"] == "repro.obs.metrics/v1"
        assert validate_metrics_snapshot(snap) == []
        [c] = snap["counters"]
        assert (c["name"], c["value"]) == ("stream_rounds_total", 3.0)
        h = snap["histograms"][0]
        assert h["count"] == 3
        assert h["buckets"][-1] == ["+Inf", 3]

    def test_snapshot_roundtrips_through_json(self, tmp_path):
        path = write_metrics_json(tmp_path / "m.json", self._populated())
        loaded = json.loads(path.read_text())
        assert validate_metrics_snapshot(loaded) == []

    def test_validation_rejects_corruption(self):
        snap = registry_snapshot(self._populated())
        snap["histograms"][0]["buckets"][0][1] = 10**9  # not cumulative
        assert validate_metrics_snapshot(snap)
        assert validate_metrics_snapshot({"schema": "nope"})
        bad = registry_snapshot(self._populated())
        bad["counters"][0]["value"] = math.nan
        assert validate_metrics_snapshot(bad)

    def test_phase_percentiles_names_and_units(self):
        p = phase_percentiles(self._populated())
        assert set(p) == {"round", "build"}
        for stats in p.values():
            assert set(stats) == {"p50", "p95", "p99", "mean", "count"}
            assert 1.0 <= stats["p50"] <= 4.0  # milliseconds, not seconds
            assert stats["p50"] <= stats["p95"] <= stats["p99"]
        assert phase_percentiles(MetricsRegistry(enabled=False)) == {}

    def test_prometheus_exposition(self):
        text = to_prometheus_text(self._populated())
        assert "# TYPE stream_rounds_total counter" in text
        assert "stream_rounds_total 3" in text
        assert "# TYPE stream_available_workers gauge" in text
        assert "# TYPE stream_round_seconds histogram" in text
        assert 'stream_round_seconds_bucket{le="+Inf"} 3' in text
        assert "stream_round_seconds_count 3" in text
        # bucket series are cumulative
        lines = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("stream_round_seconds_bucket")
        ]
        assert lines == sorted(lines)
