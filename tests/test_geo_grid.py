"""Tests for repro.geo.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import GridIndex
from repro.geo.point import Point

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestGridBasics:
    def test_num_cells(self):
        assert GridIndex(4).num_cells == 16
        assert GridIndex(1).num_cells == 1

    def test_cell_side(self):
        assert GridIndex(5).cell_side == pytest.approx(0.2)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            GridIndex(0)

    def test_cell_of_origin(self):
        assert GridIndex(4).cell_of(Point(0.0, 0.0)) == 0

    def test_cell_of_far_corner_maps_to_last_cell(self):
        grid = GridIndex(4)
        assert grid.cell_of(Point(1.0, 1.0)) == grid.num_cells - 1

    def test_cell_of_row_major_layout(self):
        grid = GridIndex(4)
        # x in third column (col 2), y in second row (row 1).
        assert grid.cell_of(Point(0.6, 0.3)) == 1 * 4 + 2

    def test_cell_of_rejects_outside_coordinates(self):
        with pytest.raises(ValueError):
            GridIndex(4).cell_of(Point(1.2, 0.5))

    def test_cell_box_roundtrip(self):
        grid = GridIndex(3)
        for cell in grid.cells():
            assert grid.cell_of(grid.cell_center(cell)) == cell

    def test_cell_box_bounds(self):
        grid = GridIndex(2)
        box = grid.cell_box(3)  # top-right cell
        assert (box.x_lo, box.x_hi) == (0.5, 1.0)
        assert (box.y_lo, box.y_hi) == (0.5, 1.0)

    def test_cell_box_out_of_range(self):
        with pytest.raises(IndexError):
            GridIndex(2).cell_box(4)

    @given(st.integers(min_value=1, max_value=12), coord, coord)
    def test_every_point_maps_to_valid_cell(self, gamma, x, y):
        grid = GridIndex(gamma)
        cell = grid.cell_of(Point(x, y))
        assert 0 <= cell < grid.num_cells
        assert grid.cell_box(cell).contains(Point(x, y))


class TestGridCounting:
    def test_count_points(self):
        grid = GridIndex(2)
        points = [Point(0.1, 0.1), Point(0.9, 0.9), Point(0.2, 0.2)]
        counts = grid.count_points(points)
        assert counts[0] == 2
        assert counts[3] == 1
        assert counts.sum() == 3

    def test_count_coordinates_matches_count_points(self, rng):
        grid = GridIndex(7)
        xs = rng.uniform(0, 1, 200)
        ys = rng.uniform(0, 1, 200)
        points = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
        np.testing.assert_array_equal(
            grid.count_points(points), grid.count_coordinates(xs, ys)
        )

    def test_count_coordinates_shape_mismatch(self):
        with pytest.raises(ValueError):
            GridIndex(2).count_coordinates(np.zeros(3), np.zeros(4))

    def test_count_coordinates_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GridIndex(2).count_coordinates(np.array([1.5]), np.array([0.5]))

    def test_count_empty(self):
        assert GridIndex(3).count_points([]).sum() == 0


class TestCellsWithinRadius:
    def test_zero_radius_is_containing_cell(self):
        grid = GridIndex(4)
        point = Point(0.3, 0.7)
        cells = grid.cells_within_radius(point, 0.0)
        assert grid.cell_of(point) in cells.tolist()

    def test_covering_radius_returns_all_cells(self):
        grid = GridIndex(3)
        cells = grid.cells_within_radius(Point(0.5, 0.5), 2.0)
        assert cells.tolist() == list(grid.cells())

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(3).cells_within_radius(Point(0.5, 0.5), -0.1)

    def test_ring_shape(self):
        grid = GridIndex(5)
        # Disc of radius one cell-side around a cell center touches the
        # 4-neighborhood but not the diagonal neighbors' far corners.
        center = grid.cell_center(12)  # middle cell (row 2, col 2)
        cells = set(grid.cells_within_radius(center, grid.cell_side).tolist())
        assert {12, 7, 17, 11, 13} <= cells
        assert 0 not in cells and 24 not in cells

    def test_center_outside_square_allowed(self):
        grid = GridIndex(4)
        cells = grid.cells_within_radius(Point(-0.2, 0.5), 0.25)
        assert cells.size > 0
        assert all(c % 4 == 0 for c in cells.tolist())  # left column only

    def test_sorted_unique(self):
        grid = GridIndex(6)
        cells = grid.cells_within_radius(Point(0.4, 0.4), 0.3)
        assert np.array_equal(cells, np.unique(cells))

    @given(
        st.integers(min_value=1, max_value=10),
        coord,
        coord,
        st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
    )
    def test_matches_brute_force(self, gamma, x, y, radius):
        grid = GridIndex(gamma)
        point = Point(x, y)
        expected = []
        for cell in grid.cells():
            box = grid.cell_box(cell)
            dx = max(box.x_lo - x, x - box.x_hi, 0.0)
            dy = max(box.y_lo - y, y - box.y_hi, 0.0)
            if np.hypot(dx, dy) <= radius:
                expected.append(cell)
        assert grid.cells_within_radius(point, radius).tolist() == expected


class TestGridSampling:
    def test_samples_land_in_cell(self, rng):
        grid = GridIndex(5)
        for cell in (0, 7, 24):
            box = grid.cell_box(cell)
            for point in grid.sample_in_cell(cell, rng, 50):
                assert box.contains(point)

    def test_sample_count(self, rng):
        assert len(GridIndex(3).sample_in_cell(4, rng, 17)) == 17

    def test_sample_zero(self, rng):
        assert GridIndex(3).sample_in_cell(0, rng, 0) == []

    def test_sample_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            GridIndex(3).sample_in_cell(0, rng, -1)


class TestRadiusStencilCache:
    """The cached-stencil fast path of cells_within_radius must be
    invisible: identical cells, identical order, any center/radius."""

    @given(
        gamma=st.integers(min_value=4, max_value=40),
        x=st.floats(min_value=-0.5, max_value=1.5),
        y=st.floats(min_value=-0.5, max_value=1.5),
        radius=st.floats(min_value=0.0, max_value=0.4),
    )
    @settings(max_examples=120, deadline=None)
    def test_stencil_matches_shared_kernel(self, gamma, x, y, radius):
        grid = GridIndex(gamma)
        fast = grid.cells_within_radius(Point(x, y), radius)
        exact = grid._cells_near_intervals(x, x, y, y, radius)
        assert fast.tolist() == exact.tolist()

    def test_repeated_radii_reuse_one_stencil(self):
        grid = GridIndex(32)
        for i in range(50):
            grid.cells_within_radius(Point(0.3 + i * 0.005, 0.5), 0.07)
        # All 50 queries share one quantized half-extent entry.
        assert len(grid._stencils) == 1

    def test_cache_is_bounded(self):
        grid = GridIndex(256)
        for i in range(100):
            grid.cells_within_radius(Point(0.5, 0.5), 0.001 + i * 0.002)
        from repro.geo.grid import _STENCIL_CACHE_SIZE

        assert len(grid._stencils) <= _STENCIL_CACHE_SIZE

    def test_whole_grid_radius_falls_back(self):
        grid = GridIndex(6)
        cells = grid.cells_within_radius(Point(0.5, 0.5), 2.0)
        assert cells.tolist() == list(range(36))
        assert len(grid._stencils) == 0
