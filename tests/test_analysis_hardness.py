"""Tests for repro.analysis.hardness (the Lemma 2.1 reduction)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hardness import (
    KnapsackInstance,
    knapsack_to_mqa,
    solve_knapsack_dp,
    solve_knapsack_via_mqa,
)


def brute_force_knapsack(instance: KnapsackInstance) -> float:
    best = 0.0
    items = range(instance.num_items)
    for size in range(instance.num_items + 1):
        for subset in itertools.combinations(items, size):
            weight = sum(instance.weights[i] for i in subset)
            if weight <= instance.capacity + 1e-9:
                best = max(best, sum(instance.values[i] for i in subset))
    return best


class TestKnapsackInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            KnapsackInstance((1.0,), (1.0, 2.0), 3.0)
        with pytest.raises(ValueError):
            KnapsackInstance((-1.0,), (1.0,), 3.0)
        with pytest.raises(ValueError):
            KnapsackInstance((1.0,), (1.0,), -3.0)


class TestReduction:
    def test_diagonal_costs_realize_weights(self):
        instance = KnapsackInstance((2.0, 5.0, 1.0), (3.0, 4.0, 2.0), 6.0)
        problem, budget = knapsack_to_mqa(instance)
        pool = problem.pool
        # Budget and costs are scaled together; ratios must match.
        scale = budget / instance.capacity
        diagonal = {}
        for row in range(len(pool)):
            w, t = int(pool.worker_idx[row]), int(pool.task_idx[row])
            if w == t:
                diagonal[w] = float(pool.cost_mean[row])
        for i, weight in enumerate(instance.weights):
            assert diagonal[i] == pytest.approx(weight * scale, rel=1e-9)

    def test_cross_pairs_cost_more_than_budget(self):
        instance = KnapsackInstance((2.0, 5.0, 1.0), (3.0, 4.0, 2.0), 6.0)
        problem, budget = knapsack_to_mqa(instance)
        pool = problem.pool
        for row in range(len(pool)):
            w, t = int(pool.worker_idx[row]), int(pool.task_idx[row])
            if w != t:
                assert pool.cost_mean[row] > budget

    def test_cross_pairs_have_zero_quality(self):
        instance = KnapsackInstance((1.0, 1.0), (3.0, 4.0), 2.0)
        problem, _ = knapsack_to_mqa(instance)
        pool = problem.pool
        for row in range(len(pool)):
            w, t = int(pool.worker_idx[row]), int(pool.task_idx[row])
            if w != t:
                assert pool.quality_mean[row] == 0.0

    def test_empty_instance(self):
        problem, budget = knapsack_to_mqa(KnapsackInstance((), (), 5.0))
        assert problem.num_pairs == 0
        assert budget == 5.0

    def test_invalid_unit_cost(self):
        with pytest.raises(ValueError):
            knapsack_to_mqa(KnapsackInstance((1.0,), (1.0,), 1.0), unit_cost=0.0)


class TestSolvingThroughMqa:
    def test_classic_instance(self):
        # Items (weight, value): optimal is {1, 2} for value 7, weight 5.
        instance = KnapsackInstance((3.0, 2.0, 3.0), (4.0, 3.0, 4.0), 5.0)
        packed, value = solve_knapsack_via_mqa(instance)
        assert value == pytest.approx(brute_force_knapsack(instance))
        weight = sum(instance.weights[i] for i in packed)
        assert weight <= instance.capacity + 1e-9

    def test_nothing_fits(self):
        instance = KnapsackInstance((5.0, 6.0), (10.0, 10.0), 3.0)
        packed, value = solve_knapsack_via_mqa(instance)
        assert packed == []
        assert value == 0.0

    def test_everything_fits(self):
        instance = KnapsackInstance((1.0, 1.0, 1.0), (1.0, 2.0, 3.0), 10.0)
        packed, value = solve_knapsack_via_mqa(instance)
        assert packed == [0, 1, 2]
        assert value == pytest.approx(6.0)

    @given(
        weights=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=7),
        values=st.lists(st.integers(min_value=0, max_value=9), min_size=7, max_size=7),
        capacity=st.integers(min_value=0, max_value=25),
    )
    @settings(max_examples=25, deadline=None)
    def test_reduction_matches_brute_force(self, weights, values, capacity):
        n = len(weights)
        instance = KnapsackInstance(
            tuple(float(w) for w in weights),
            tuple(float(v) for v in values[:n]),
            float(capacity),
        )
        _, via_mqa = solve_knapsack_via_mqa(instance)
        assert via_mqa == pytest.approx(brute_force_knapsack(instance))


class TestDpSolver:
    def test_integer_exactness(self):
        instance = KnapsackInstance((3.0, 2.0, 3.0), (4.0, 3.0, 4.0), 5.0)
        assert solve_knapsack_dp(instance, resolution=5) == pytest.approx(7.0)

    def test_matches_brute_force_on_integers(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(1, 7))
            instance = KnapsackInstance(
                tuple(float(w) for w in rng.integers(1, 8, n)),
                tuple(float(v) for v in rng.integers(0, 9, n)),
                float(rng.integers(1, 20)),
            )
            dp = solve_knapsack_dp(instance, resolution=int(instance.capacity))
            assert dp == pytest.approx(brute_force_knapsack(instance))

    def test_agrees_with_mqa_route(self):
        instance = KnapsackInstance((4.0, 3.0, 2.0, 1.0), (5.0, 4.0, 3.0, 1.0), 6.0)
        _, via_mqa = solve_knapsack_via_mqa(instance)
        dp = solve_knapsack_dp(instance, resolution=6)
        assert via_mqa == pytest.approx(dp)

    def test_zero_capacity(self):
        assert solve_knapsack_dp(KnapsackInstance((1.0,), (5.0,), 0.0)) == 0.0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            solve_knapsack_dp(KnapsackInstance((1.0,), (1.0,), 1.0), resolution=0)
