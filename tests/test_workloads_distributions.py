"""Tests for repro.workloads.distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    GaussianSampler,
    UniformSampler,
    ZipfSampler,
    make_sampler,
    truncated_gaussian,
)


class TestTruncatedGaussian:
    def test_within_bounds(self, rng):
        samples = truncated_gaussian(rng, 0.5, 1.0, 0.2, 0.3, 500)
        assert samples.min() >= 0.2
        assert samples.max() <= 0.3

    def test_size(self, rng):
        assert truncated_gaussian(rng, 0.0, 1.0, -1.0, 1.0, 123).shape == (123,)

    def test_zero_size(self, rng):
        assert truncated_gaussian(rng, 0.0, 1.0, -1.0, 1.0, 0).size == 0

    def test_degenerate_interval(self, rng):
        samples = truncated_gaussian(rng, 0.5, 1.0, 0.3, 0.3, 10)
        np.testing.assert_allclose(samples, 0.3)

    def test_zero_std_returns_clipped_mean(self, rng):
        samples = truncated_gaussian(rng, 5.0, 0.0, 0.0, 1.0, 4)
        np.testing.assert_allclose(samples, 1.0)

    def test_empty_interval_rejected(self, rng):
        with pytest.raises(ValueError):
            truncated_gaussian(rng, 0.0, 1.0, 1.0, 0.0, 5)

    def test_mean_near_center_for_symmetric_truncation(self, rng):
        samples = truncated_gaussian(rng, 0.5, 0.2, 0.0, 1.0, 20_000)
        assert float(samples.mean()) == pytest.approx(0.5, abs=0.01)


class TestSamplers:
    @pytest.mark.parametrize(
        "sampler", [UniformSampler(), GaussianSampler(), ZipfSampler()]
    )
    def test_samples_in_unit_square(self, sampler, rng):
        points = sampler.sample(rng, 1000)
        assert points.shape == (1000, 2)
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_uniform_covers_square(self, rng):
        points = UniformSampler().sample(rng, 20_000)
        assert float(points.mean()) == pytest.approx(0.5, abs=0.01)
        assert float(points[:, 0].std()) == pytest.approx((1 / 12) ** 0.5, abs=0.02)

    def test_gaussian_concentrates_toward_center(self, rng):
        points = GaussianSampler(std=0.15).sample(rng, 20_000)
        assert float(points[:, 0].std()) < 0.2

    def test_zipf_is_skewed(self, rng):
        sampler = ZipfSampler(skew=1.0, resolution=10)
        points = sampler.sample(rng, 20_000)
        # First-ranked cell is the bottom-left row-major cell.
        in_first_cell = ((points[:, 0] < 0.1) & (points[:, 1] < 0.1)).mean()
        assert in_first_cell > 1.0 / 100.0  # far above uniform share

    def test_zipf_zero_skew_is_uniform_over_cells(self, rng):
        sampler = ZipfSampler(skew=0.0, resolution=4)
        points = sampler.sample(rng, 40_000)
        counts, _, _ = np.histogram2d(points[:, 0], points[:, 1], bins=4)
        assert counts.std() / counts.mean() < 0.1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(skew=-1.0)
        with pytest.raises(ValueError):
            ZipfSampler(resolution=0)
        with pytest.raises(ValueError):
            GaussianSampler(std=0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("uniform", UniformSampler),
            ("U", UniformSampler),
            ("gaussian", GaussianSampler),
            ("g", GaussianSampler),
            ("zipf", ZipfSampler),
            ("Z", ZipfSampler),
        ],
    )
    def test_names_and_aliases(self, name, cls):
        assert isinstance(make_sampler(name), cls)

    def test_zipf_skew_forwarded(self):
        assert make_sampler("zipf", zipf_skew=0.7).skew == 0.7

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_sampler("pareto")
