"""Tests for repro.matching.bipartite."""

import numpy as np
import pytest

from repro.matching.bipartite import greedy_max_weight_matching


class TestGreedyMatching:
    def test_takes_heaviest_first(self):
        rows = np.array([0, 0, 1])
        cols = np.array([0, 1, 0])
        weights = np.array([1.0, 5.0, 4.0])
        assignment, total = greedy_max_weight_matching(rows, cols, weights)
        assert assignment == [(0, 1), (1, 0)]
        assert total == pytest.approx(9.0)

    def test_conflicts_skip(self):
        rows = np.array([0, 0])
        cols = np.array([0, 1])
        weights = np.array([3.0, 2.0])
        assignment, total = greedy_max_weight_matching(rows, cols, weights)
        assert assignment == [(0, 0)]
        assert total == 3.0

    def test_non_positive_weights_skipped(self):
        rows = np.array([0, 1])
        cols = np.array([0, 1])
        weights = np.array([2.0, -1.0])
        assignment, total = greedy_max_weight_matching(rows, cols, weights)
        assert assignment == [(0, 0)]

    def test_empty(self):
        assignment, total = greedy_max_weight_matching(
            np.zeros(0, dtype=int), np.zeros(0, dtype=int), np.zeros(0)
        )
        assert assignment == []
        assert total == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_weight_matching(np.zeros(2, int), np.zeros(3, int), np.zeros(2))

    def test_half_approximation_guarantee(self):
        """Greedy achieves >= 1/2 the optimum on random instances."""
        from repro.matching.hungarian import hungarian_max_weight

        rng = np.random.default_rng(17)
        for _ in range(20):
            weights = rng.uniform(0.1, 5.0, size=(5, 5))
            r, c = np.nonzero(np.ones_like(weights, dtype=bool))
            _, greedy_total = greedy_max_weight_matching(r, c, weights[r, c])
            _, optimal_total = hungarian_max_weight(weights)
            assert greedy_total >= 0.5 * optimal_total - 1e-9

    def test_matching_validity(self):
        rng = np.random.default_rng(23)
        weights = rng.uniform(0, 1, size=200)
        rows = rng.integers(0, 10, size=200)
        cols = rng.integers(0, 10, size=200)
        assignment, _ = greedy_max_weight_matching(rows, cols, weights)
        assert len({r for r, _ in assignment}) == len(assignment)
        assert len({c for _, c in assignment}) == len(assignment)
