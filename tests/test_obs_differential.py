"""Differential contract: observability never changes results.

Every engine run must be bit-identical with metrics on, tracing on,
both on, or both off — same assignments (ids, order, quality, cost),
same prediction errors, same pool accounting.  The observer only
*reads* what the round loop measured; these tests are the fence that
keeps it that way across greedy/D&C/Hungarian, both prediction legs,
and the serial + sharded engines.

The trace-schema leg additionally validates that an instrumented run
emits a loadable Chrome trace: round spans disjoint, phase spans
nested inside their round, timestamps/durations non-negative.
"""

from __future__ import annotations

import pytest

from repro.core import MQADivideConquer, MQAGreedy
from repro.core.baselines import HungarianAssigner
from repro.obs.export import registry_snapshot, validate_metrics_snapshot
from repro.obs.trace import validate_chrome_trace
from repro.streaming.adapters import prepared_engine
from repro.streaming.engine import StreamConfig
from repro.streaming.sharding import ShardingConfig, prepared_sharded_engine
from repro.workloads import BurstyWorkload, SyntheticWorkload, WorkloadParams


def _workload(seed: int = 3):
    return BurstyWorkload(
        WorkloadParams(num_workers=70, num_tasks=70, num_instances=4), seed=seed
    )


def _fingerprint(result):
    return [
        (a.instance, a.worker_id, a.task_id, a.quality, a.cost, a.release_time)
        for a in result.assignments
    ], [
        (i.assigned, i.num_pairs, i.worker_prediction_error, i.task_prediction_error)
        for i in result.instances
    ]


def _run_serial(make_assigner, use_prediction, enable_metrics, enable_tracing):
    config = StreamConfig(
        round_interval=0.5,
        budget=20.0,
        use_prediction=use_prediction,
        enable_metrics=enable_metrics,
        enable_tracing=enable_tracing,
    )
    workload = _workload()
    engine, _ = prepared_engine(workload, make_assigner(), config=config, seed=3)
    engine.advance_to(float(workload.num_instances))
    return engine


ASSIGNERS = {
    "greedy": MQAGreedy,
    "dc": MQADivideConquer,
    "hungarian": HungarianAssigner,
}


class TestSerialBitIdentical:
    @pytest.mark.parametrize("algo", sorted(ASSIGNERS))
    @pytest.mark.parametrize("use_prediction", [True, False])
    def test_obs_on_off_identical(self, algo, use_prediction):
        baseline = _fingerprint(
            _run_serial(ASSIGNERS[algo], use_prediction, False, False).result()
        )
        for metrics, tracing in ((True, False), (False, True), (True, True)):
            engine = _run_serial(ASSIGNERS[algo], use_prediction, metrics, tracing)
            assert _fingerprint(engine.result()) == baseline, (
                f"{algo}, prediction={use_prediction}, "
                f"metrics={metrics}, tracing={tracing}"
            )

    def test_disabled_observer_stores_nothing(self):
        engine = _run_serial(MQAGreedy, True, False, False)
        assert engine.metrics_registry.instruments() == []
        assert len(engine.trace_recorder) == 0

    def test_enabled_observer_populates_both(self):
        engine = _run_serial(MQAGreedy, True, True, True)
        snapshot = registry_snapshot(engine.metrics_registry)
        assert validate_metrics_snapshot(snapshot) == []
        assert snapshot["histograms"]  # phase data present
        rounds = engine.metrics_registry.counter("stream_rounds_total").value
        assert rounds == engine.rounds_run
        assert len(engine.trace_recorder) > 0


class TestShardedBitIdentical:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_obs_on_off_identical(self, backend):
        def run(enable_metrics, enable_tracing):
            config = StreamConfig(
                round_interval=0.5,
                budget=20.0,
                use_delta_builder=False,
                enable_metrics=enable_metrics,
                enable_tracing=enable_tracing,
            )
            workload = _workload()
            engine, _ = prepared_sharded_engine(
                workload,
                MQAGreedy(),
                config=config,
                sharding=ShardingConfig(num_shards=4, backend=backend),
            )
            with engine:
                engine.advance_to(float(workload.num_instances))
            return engine

        baseline = _fingerprint(run(False, False).result())
        engine = run(True, True)
        assert _fingerprint(engine.result()) == baseline
        # Per-tile instrumentation exists and nests.
        assert engine.metrics_registry.find("stream_tile_build_seconds")
        assert validate_chrome_trace(engine.trace_recorder.to_chrome_trace()) == []


class TestTraceSchema:
    def _trace(self, make_assigner):
        return _run_serial(
            make_assigner, True, True, True
        ).trace_recorder.to_chrome_trace()

    @pytest.mark.parametrize("algo", sorted(ASSIGNERS))
    def test_trace_validates(self, algo):
        trace = self._trace(ASSIGNERS[algo])
        assert validate_chrome_trace(trace) == []

    def test_round_spans_cover_phases(self):
        trace = self._trace(MQAGreedy)
        events = trace["traceEvents"]
        rounds = [e for e in events if e["cat"] == "round"]
        assert len(rounds) == 8  # 4 instances at 0.5 cadence
        names = {e["name"] for e in events}
        assert {"round", "build", "select"} <= names
        # Rounds are disjoint and ordered.
        spans = sorted((e["ts"], e["ts"] + e["dur"]) for e in rounds)
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= prev_end - 1e-6

    def test_round_args_carry_pool_sizes(self):
        trace = self._trace(MQAGreedy)
        round0 = next(e for e in trace["traceEvents"] if e["cat"] == "round")
        assert {"round", "workers", "tasks", "pairs", "assigned"} <= set(
            round0["args"]
        )

    def test_equivalence_workload_also_identical(self):
        """Second workload family, batch-aligned cadence."""
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=60, num_tasks=60, num_instances=4), seed=11
        )

        def run(enable):
            config = StreamConfig(
                enable_metrics=enable, enable_tracing=enable
            )
            engine, _ = prepared_engine(
                workload, MQAGreedy(), config=config, seed=11
            )
            engine.advance_to(float(workload.num_instances))
            return _fingerprint(engine.result())

        assert run(True) == run(False)
