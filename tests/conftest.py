"""Shared fixtures for the test suite.

The entity/problem builders live in :mod:`repro.testing` (they are
part of the public API); test modules import them directly with
``from repro.testing import make_problem`` — never ``from conftest
import ...``, which is ambiguous when several conftest modules are
collected in one pytest run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.instance import ProblemInstance
from repro.testing import make_problem


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_problem() -> ProblemInstance:
    """Current-only problem, a dozen workers and tasks."""
    return make_problem(seed=3)


@pytest.fixture
def mixed_problem() -> ProblemInstance:
    """Problem with current and predicted entities."""
    return make_problem(
        seed=5, num_predicted_workers=6, num_predicted_tasks=5
    )
