"""Shared fixtures for the test suite.

The entity/problem builders live in :mod:`repro.testing` (they are
part of the public API); test modules import them directly with
``from repro.testing import make_problem`` — never ``from conftest
import ...``, which is ambiguous when several conftest modules are
collected in one pytest run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np
import pytest
from hypothesis import settings

from repro.geo.box import Box
from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex
from repro.model.entities import Task, Worker
from repro.model.instance import ProblemInstance
from repro.testing import (
    make_predicted_tasks,
    make_predicted_workers,
    make_problem,
)

# Hypothesis profiles: local runs stay fast on the library defaults;
# the CI matrix exports HYPOTHESIS_PROFILE=ci for a deeper, fully
# reproducible sweep (derandomized, so a red CI run is replayable
# locally with the same profile; tests that pin their own
# max_examples keep it, everything else gets the deeper default).
settings.register_profile("dev", settings.get_profile("default"))
settings.register_profile(
    "ci", max_examples=200, derandomize=True, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def _clip01(value: float) -> float:
    return float(min(max(value, 0.0), 1.0))


class ChurnWorld:
    """A scriptable stream of entity lifecycle events.

    The shared substrate of the adversarial churn corpus: the delta
    differential (``test_model_delta``) and the selection-state
    differential (``test_selection_state``) both drive one of these
    through the same :class:`AdversarialScenario` scripts, so the two
    incremental layers — pool maintenance and selection repair — face
    the exact same worst-case event streams.
    """

    def __init__(
        self, rng: np.random.Generator, slack: float, index_gamma: int = 16
    ):
        self.rng = rng
        self.slack = slack
        self.index = SpatialIndex(GridIndex(index_gamma))
        self.workers: list[Worker] = []
        self.tasks: list[Task] = []
        self.now = 0.0
        self._next_id = 0

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def arrive_workers(self, count: int) -> None:
        for _ in range(count):
            self.workers.append(
                Worker(
                    id=self._new_id(),
                    location=Point(*self.rng.uniform(0.0, 1.0, 2)),
                    velocity=float(self.rng.uniform(0.05, 0.4)),
                    arrival=self.now,
                )
            )

    def arrive_tasks(self, count: int) -> None:
        for _ in range(count):
            task = Task(
                id=self._new_id(),
                location=Point(*self.rng.uniform(0.0, 1.0, 2)),
                deadline=self.now + float(self.rng.uniform(0.3, 3.0)),
                arrival=self.now,
            )
            self.tasks.append(task)
            self.index.insert(task.id, task.location)

    def remove_workers(self, count: int) -> None:
        for _ in range(min(count, len(self.workers))):
            position = int(self.rng.integers(len(self.workers)))
            self.workers.pop(position)

    def remove_tasks(self, count: int) -> None:
        for _ in range(min(count, len(self.tasks))):
            position = int(self.rng.integers(len(self.tasks)))
            task = self.tasks.pop(position)
            self.index.remove(task.id)

    def move_tasks(self, count: int, scale: float) -> None:
        for _ in range(min(count, len(self.tasks))):
            position = int(self.rng.integers(len(self.tasks)))
            task = self.tasks[position]
            step = self.rng.uniform(-scale, scale, 2)
            point = Point(
                _clip01(task.location.x + step[0]), _clip01(task.location.y + step[1])
            )
            moved = replace(task, location=point, box=Box.from_point(point))
            self.tasks[position] = moved
            self.index.move(moved.id, point)

    def move_workers(self, count: int, scale: float) -> None:
        for _ in range(min(count, len(self.workers))):
            position = int(self.rng.integers(len(self.workers)))
            worker = self.workers[position]
            step = self.rng.uniform(-scale, scale, 2)
            point = Point(
                _clip01(worker.location.x + step[0]),
                _clip01(worker.location.y + step[1]),
            )
            self.workers[position] = replace(
                worker, location=point, box=Box.from_point(point)
            )

    def predicted(self, use_prediction: bool):
        """Fresh predicted entities for this round (empty when off)."""
        if not use_prediction:
            return [], []
        k = int(self.rng.integers(0, 5))
        l = int(self.rng.integers(0, 5))
        seed = int(self.rng.integers(0, 2**31))
        prng = np.random.default_rng(seed)
        return (
            make_predicted_workers(
                prng, k, arrival=self.now + 0.5, id_offset=5_000_000
            ),
            make_predicted_tasks(
                prng, l, arrival=self.now + 0.5, id_offset=6_000_000
            ),
        )


@dataclass(frozen=True)
class AdversarialScenario:
    """One named worst-case churn script.

    ``drive(world, i)`` mutates the world for round ``i``; the test
    then asserts its incremental layer against a from-scratch rebuild.
    """

    name: str
    description: str
    num_rounds: int
    drive: Callable[[ChurnWorld, int], None]


def _slack_boundary_oscillator(world: ChurnWorld, i: int) -> None:
    # Entities jitter just inside the motion-slack radius on even
    # rounds and jump just past it on odd rounds, so cached join
    # results oscillate between reusable and stale every round.
    world.now += 0.3
    if i == 0:
        world.arrive_workers(10)
        world.arrive_tasks(12)
    inside = world.slack * 0.9
    outside = world.slack * 1.8 + 0.03
    scale = inside if i % 2 == 0 else outside
    world.move_tasks(6, scale)
    world.move_workers(4, scale)
    world.arrive_tasks(1)


def _mass_expiry_cliff(world: ChurnWorld, i: int) -> None:
    # Rounds of accumulation, then one round wipes out most of the
    # population at once — the survivor set is a sliver and the repair
    # economics flip (fallback territory for ratio-based guards).
    world.now += 0.25
    if i < 3:
        world.arrive_workers(8)
        world.arrive_tasks(10)
    elif i == 3:
        world.remove_tasks((len(world.tasks) * 4) // 5)
        world.remove_workers((len(world.workers) * 4) // 5)
    else:
        world.arrive_workers(2)
        world.arrive_tasks(2)
        world.remove_tasks(1)


def _churn_storm(world: ChurnWorld, i: int) -> None:
    # Half the population is replaced every round while the rest moves
    # past the slack boundary: survivors, dead rows and fresh rows are
    # all large simultaneously.
    world.now += 0.4
    if i == 0:
        world.arrive_workers(12)
        world.arrive_tasks(12)
        return
    world.remove_tasks(len(world.tasks) // 2)
    world.arrive_tasks(len(world.tasks) // 2 + 3)
    world.remove_workers(len(world.workers) // 2)
    world.arrive_workers(len(world.workers) // 2 + 2)
    world.move_tasks(3, world.slack * 3.0 + 0.05)


def _burst_then_quiet(world: ChurnWorld, i: int) -> None:
    # Arrival bursts separated by dead-quiet rounds (zero churn): the
    # quiet rounds must take the identity-repair path, the bursts the
    # fresh-heavy merge path, back to back.
    world.now += 0.5
    if i % 3 == 0:
        world.arrive_workers(14)
        world.arrive_tasks(16)


#: The named corpus.  Keep scripts deterministic given the world's rng:
#: every entry must drive only the ChurnWorld protocol.
ADVERSARIAL_CHURN_CORPUS = (
    AdversarialScenario(
        "slack_boundary_oscillator",
        "motion oscillating across the slack radius every round",
        6,
        _slack_boundary_oscillator,
    ),
    AdversarialScenario(
        "mass_expiry_cliff",
        "accumulate, then expire 80% of the population in one round",
        6,
        _mass_expiry_cliff,
    ),
    AdversarialScenario(
        "churn_storm",
        "half the population replaced every round, survivors moving",
        5,
        _churn_storm,
    ),
    AdversarialScenario(
        "burst_then_quiet",
        "arrival bursts separated by zero-churn rounds",
        7,
        _burst_then_quiet,
    ),
)


@pytest.fixture(
    params=ADVERSARIAL_CHURN_CORPUS,
    ids=lambda scenario: scenario.name,
    scope="session",
)
def adversarial_scenario(request) -> AdversarialScenario:
    """Parametrizes a test over the whole adversarial churn corpus."""
    return request.param


@pytest.fixture(scope="session")
def churn_world_cls() -> type[ChurnWorld]:
    """The world class the corpus scripts drive (session-scoped so
    hypothesis tests can take it without a function-scope health-check
    violation)."""
    return ChurnWorld


@pytest.fixture
def small_problem() -> ProblemInstance:
    """Current-only problem, a dozen workers and tasks."""
    return make_problem(seed=3)


@pytest.fixture
def mixed_problem() -> ProblemInstance:
    """Problem with current and predicted entities."""
    return make_problem(
        seed=5, num_predicted_workers=6, num_predicted_tasks=5
    )
