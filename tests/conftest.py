"""Shared fixtures for the test suite.

The entity/problem builders live in :mod:`repro.testing` (they are
part of the public API); this conftest re-exports them so test modules
can keep the short ``from conftest import make_problem`` imports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (  # noqa: F401 - re-exported for test modules
    make_predicted_tasks,
    make_predicted_workers,
    make_problem,
    make_tasks,
    make_workers,
)
from repro.model.instance import ProblemInstance


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_problem() -> ProblemInstance:
    """Current-only problem, a dozen workers and tasks."""
    return make_problem(seed=3)


@pytest.fixture
def mixed_problem() -> ProblemInstance:
    """Problem with current and predicted entities."""
    return make_problem(
        seed=5, num_predicted_workers=6, num_predicted_tasks=5
    )
