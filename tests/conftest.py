"""Shared fixtures for the test suite.

The entity/problem builders live in :mod:`repro.testing` (they are
part of the public API); test modules import them directly with
``from repro.testing import make_problem`` — never ``from conftest
import ...``, which is ambiguous when several conftest modules are
collected in one pytest run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.model.instance import ProblemInstance
from repro.testing import make_problem

# Hypothesis profiles: local runs stay fast on the library defaults;
# the CI matrix exports HYPOTHESIS_PROFILE=ci for a deeper, fully
# reproducible sweep (derandomized, so a red CI run is replayable
# locally with the same profile; tests that pin their own
# max_examples keep it, everything else gets the deeper default).
settings.register_profile("dev", settings.get_profile("default"))
settings.register_profile(
    "ci", max_examples=200, derandomize=True, deadline=None, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_problem() -> ProblemInstance:
    """Current-only problem, a dozen workers and tasks."""
    return make_problem(seed=3)


@pytest.fixture
def mixed_problem() -> ProblemInstance:
    """Problem with current and predicted entities."""
    return make_problem(
        seed=5, num_predicted_workers=6, num_predicted_tasks=5
    )
