"""Tests for repro.cli."""

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "fig18_19" in out
        assert "fig27" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small_figure(self, capsys):
        assert main(["fig21", "--scale", "0.02", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig21" in out
        assert "GREEDY" in out
        assert "Running time" in out

    def test_csv_output(self, capsys, tmp_path):
        assert main(
            ["fig21", "--scale", "0.02", "--csv", str(tmp_path)]
        ) == 0
        csv_file = tmp_path / "fig21.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("figure,x,algorithm")


class TestStreamCommand:
    def test_stream_bursty(self, capsys):
        assert main(
            [
                "stream",
                "--scenario", "bursty",
                "--workers", "60",
                "--tasks", "60",
                "--instances", "4",
                "--round-interval", "0.5",
                "--budget", "20",
                "--seed", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "bursty / greedy / delta" in out
        assert "events/s" in out
        assert "delta maintenance:" in out
        assert "candidate pairs" in out

    def test_stream_no_delta(self, capsys):
        assert main(
            [
                "stream",
                "--scenario", "bursty",
                "--workers", "60",
                "--tasks", "60",
                "--instances", "4",
                "--round-interval", "0.5",
                "--budget", "20",
                "--seed", "3",
                "--no-delta",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "bursty / greedy / sparse" in out
        assert "delta maintenance:" not in out

    def test_stream_warm_select_default_on(self, capsys):
        assert main(
            [
                "stream",
                "--scenario", "bursty",
                "--workers", "60",
                "--tasks", "60",
                "--instances", "4",
                "--round-interval", "0.5",
                "--budget", "20",
                "--seed", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "warm selection:" in out
        assert "select" in out and "finalize" in out

    def test_stream_no_warm_select(self, capsys):
        assert main(
            [
                "stream",
                "--scenario", "bursty",
                "--workers", "60",
                "--tasks", "60",
                "--instances", "4",
                "--round-interval", "0.5",
                "--budget", "20",
                "--seed", "3",
                "--no-warm-select",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "warm selection:" not in out

    def test_stream_warm_select_delta_matrix(self, capsys, tmp_path):
        """All four delta x warm-select legs agree on assignment totals."""
        import json

        totals = {}
        for delta in ("--delta", "--no-delta"):
            for warm in ("--warm-select", "--no-warm-select"):
                path = tmp_path / f"{delta[2:]}_{warm[2:]}.json"
                assert main(
                    [
                        "stream",
                        "--scenario", "bursty",
                        "--workers", "50",
                        "--tasks", "50",
                        "--instances", "3",
                        "--budget", "20",
                        "--seed", "3",
                        delta, warm,
                        "--json", str(path),
                    ]
                ) == 0
                summary = json.loads(path.read_text())
                assert summary["warm_select_enabled"] == (warm == "--warm-select")
                assert ("warm_select" in summary) == (warm == "--warm-select")
                totals[(delta, warm)] = (
                    summary["assignments"],
                    summary["total_quality"],
                    summary["total_cost"],
                )
        capsys.readouterr()
        assert len(set(totals.values())) == 1, totals

    def test_stream_json_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "stream.json"
        assert main(
            [
                "stream",
                "--scenario", "hotspot",
                "--workers", "40",
                "--tasks", "40",
                "--instances", "3",
                "--no-prediction",
                "--json", str(path),
            ]
        ) == 0
        summary = json.loads(path.read_text())
        assert summary["scenario"] == "hotspot"
        assert summary["rounds"] == 6  # 3 instances / 0.5 interval
        assert summary["candidate_pairs_examined"] >= 0
        assert summary["mean_select_ms"] >= 0.0
        assert summary["mean_finalize_ms"] >= 0.0

    def test_stream_metrics_and_trace_out(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_metrics_snapshot
        from repro.obs.trace import validate_chrome_trace

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        summary_path = tmp_path / "stream.json"
        assert main(
            [
                "stream",
                "--scenario", "bursty",
                "--workers", "60",
                "--tasks", "60",
                "--instances", "4",
                "--round-interval", "0.5",
                "--budget", "20",
                "--seed", "3",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--json", str(summary_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "phase latency p50/p95/p99 ms:" in out
        assert f"wrote {metrics_path}" in out
        assert f"wrote {trace_path}" in out

        metrics = json.loads(metrics_path.read_text())
        assert validate_metrics_snapshot(metrics) == []
        histogram_names = {h["name"] for h in metrics["histograms"]}
        assert "stream_round_seconds" in histogram_names

        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"round", "build", "select"} <= names

        summary = json.loads(summary_path.read_text())
        latencies = summary["phase_latencies"]
        assert {"round", "build", "select", "finalize"} <= set(latencies)
        for stats in latencies.values():
            assert stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_stream_sharded_citywide(self, capsys, tmp_path):
        import json

        path = tmp_path / "sharded.json"
        assert main(
            [
                "stream",
                "--scenario", "citywide",
                "--workers", "80",
                "--tasks", "80",
                "--instances", "3",
                "--shards", "4",
                "--backend", "serial",
                "--seed", "3",
                "--json", str(path),
            ]
        ) == 0
        out = capsys.readouterr().out
        # The sharded path runs the fused delta pipeline by default,
        # and the label must say so (it used to silently read sparse).
        assert "citywide / greedy / delta / 4 shards (serial)" in out
        assert "tile build mean ms:" in out
        summary = json.loads(path.read_text())
        assert summary["shards"] == 4
        assert summary["backend"] == "serial"
        assert summary["builder"] == "delta"

    def test_stream_sharded_matches_unsharded(self, capsys, tmp_path):
        import json

        base = tmp_path / "base.json"
        sharded = tmp_path / "sharded.json"
        common = [
            "stream", "--scenario", "citywide", "--workers", "70",
            "--tasks", "70", "--instances", "3", "--seed", "5",
        ]
        assert main(common + ["--json", str(base)]) == 0
        assert main(
            common + ["--shards", "2", "--backend", "thread", "--json", str(sharded)]
        ) == 0
        capsys.readouterr()
        a = json.loads(base.read_text())
        b = json.loads(sharded.read_text())
        assert b["assignments"] == a["assignments"]
        assert b["total_quality"] == a["total_quality"]
        assert b["total_cost"] == a["total_cost"]

    def test_stream_shards_reject_dense(self, capsys):
        assert main(
            ["stream", "--shards", "2", "--dense", "--workers", "10", "--tasks", "10"]
        ) == 2
        assert "sparse builder" in capsys.readouterr().err

    def test_stream_shards_reject_delta_slack(self, capsys):
        """--shards + --delta + positive --delta-slack is unsupported
        (per-tile pools have no motion slack) and must error, not
        silently drop the incremental flags."""
        assert main(
            [
                "stream", "--shards", "2", "--delta-slack", "0.05",
                "--workers", "10", "--tasks", "10",
            ]
        ) == 2
        assert "motion slack" in capsys.readouterr().err

    def test_stream_sharded_no_delta_uses_fresh_builds(self, capsys, tmp_path):
        """The sharded engine honors --no-delta (legacy fresh path)
        and the slack combination becomes legal again."""
        import json

        path = tmp_path / "fresh.json"
        assert main(
            [
                "stream", "--scenario", "bursty", "--workers", "40",
                "--tasks", "40", "--instances", "2", "--shards", "2",
                "--backend", "serial", "--no-delta", "--delta-slack", "0.05",
                "--json", str(path),
            ]
        ) == 0
        capsys.readouterr()
        summary = json.loads(path.read_text())
        assert summary["builder"] == "sparse"

    def test_stream_sharded_delta_slack_zero_allowed(self, capsys):
        assert main(
            [
                "stream", "--scenario", "bursty", "--workers", "30",
                "--tasks", "30", "--instances", "2", "--shards", "2",
                "--backend", "serial", "--delta-slack", "0.0",
            ]
        ) == 0
        capsys.readouterr()

    def test_stream_dense_mode(self, capsys):
        assert main(
            [
                "stream",
                "--scenario", "synthetic",
                "--workers", "40",
                "--tasks", "40",
                "--instances", "3",
                "--dense",
                "--no-prediction",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "dense" in out
        assert "candidate pairs" not in out
