"""Tests for repro.cli."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "fig18_19" in out
        assert "fig27" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_run_small_figure(self, capsys):
        assert main(["fig21", "--scale", "0.02", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig21" in out
        assert "GREEDY" in out
        assert "Running time" in out

    def test_csv_output(self, capsys, tmp_path):
        assert main(
            ["fig21", "--scale", "0.02", "--csv", str(tmp_path)]
        ) == 0
        csv_file = tmp_path / "fig21.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("figure,x,algorithm")
