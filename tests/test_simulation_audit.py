"""Cross-instance invariants checked through the assignment audit trail.

These are the strongest end-to-end guarantees of the framework loop:
no task is served twice across the whole run, and no worker starts a
new task while still traveling to a previous one.
"""

import pytest

from repro.core.divide_conquer import MQADivideConquer
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import WorkloadParams
from repro.workloads.synthetic import SyntheticWorkload


def run(assigner, seed=0, budget=25.0, use_prediction=True):
    params = WorkloadParams(num_workers=200, num_tasks=200, num_instances=8)
    workload = SyntheticWorkload(params, seed=seed)
    engine = SimulationEngine(
        workload, assigner,
        EngineConfig(budget=budget, grid_gamma=5, use_prediction=use_prediction),
        seed=seed,
    )
    return engine.run()


@pytest.mark.parametrize(
    "assigner", [MQAGreedy(), MQADivideConquer(), RandomAssigner()]
)
class TestAuditInvariants:
    def test_log_matches_metrics(self, assigner):
        result = run(assigner)
        assert len(result.assignments) == result.total_assigned
        assert sum(a.quality for a in result.assignments) == pytest.approx(
            result.total_quality
        )
        assert sum(a.cost for a in result.assignments) == pytest.approx(
            result.total_cost
        )

    def test_no_task_served_twice_across_run(self, assigner):
        result = run(assigner)
        task_ids = [a.task_id for a in result.assignments]
        assert len(set(task_ids)) == len(task_ids)

    def test_workers_never_double_booked(self, assigner):
        """A worker id in the raw workload can be assigned once; after
        release the engine re-issues it under a fresh id, so any raw id
        appearing twice is a double-booking bug."""
        result = run(assigner)
        worker_ids = [a.worker_id for a in result.assignments]
        assert len(set(worker_ids)) == len(worker_ids)

    def test_release_times_consistent(self, assigner):
        result = run(assigner)
        for record in result.assignments:
            assert record.release_time == pytest.approx(
                record.instance + record.travel_time
            )
            assert record.travel_time >= 0.0

    def test_assignment_instances_ordered(self, assigner):
        result = run(assigner)
        instances = [a.instance for a in result.assignments]
        assert instances == sorted(instances)


class TestAuditAgainstDeadlines:
    def test_workers_arrive_before_deadlines(self):
        """Every materialized assignment meets its task's deadline."""
        params = WorkloadParams(num_workers=150, num_tasks=150, num_instances=6)
        workload = SyntheticWorkload(params, seed=4)
        deadlines = {}
        for p in range(6):
            _, tasks = workload.arrivals(p)
            deadlines.update({t.id: t.deadline for t in tasks})
        engine = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=20.0, grid_gamma=5), seed=4
        )
        result = engine.run()
        for record in result.assignments:
            assert record.release_time <= deadlines[record.task_id] + 1e-9
