"""Tests for repro.core.exact (branch-and-bound ground truth)."""

import itertools

import pytest

from repro.core.exact import exact_assignment

from repro.testing import make_problem


def brute_force(problem, budget):
    """Plain enumeration over all subsets (tiny instances only)."""
    pool = problem.pool
    rows = [r for r in range(len(pool)) if pool.is_current[r]]
    best = 0.0
    for size in range(len(rows) + 1):
        for subset in itertools.combinations(rows, size):
            workers = [int(pool.worker_idx[r]) for r in subset]
            tasks = [int(pool.task_idx[r]) for r in subset]
            if len(set(workers)) < len(workers) or len(set(tasks)) < len(tasks):
                continue
            if sum(pool.cost_mean[r] for r in subset) > budget + 1e-9:
                continue
            best = max(best, sum(pool.quality_mean[r] for r in subset))
    return best


class TestExactAssignment:
    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        rows, quality = exact_assignment(problem, 10.0)
        assert rows == []
        assert quality == 0.0

    def test_zero_budget(self):
        problem = make_problem(seed=2, num_workers=4, num_tasks=4)
        rows, quality = exact_assignment(problem, 0.0)
        assert rows == []
        assert quality == 0.0

    def test_matches_brute_force(self):
        for seed in range(5):
            problem = make_problem(seed=seed, num_workers=4, num_tasks=3)
            for budget in (1.0, 3.0, 8.0):
                _, quality = exact_assignment(problem, budget)
                assert quality == pytest.approx(brute_force(problem, budget))

    def test_selection_is_feasible(self):
        problem = make_problem(seed=9, num_workers=5, num_tasks=5)
        budget = 4.0
        rows, quality = exact_assignment(problem, budget)
        pool = problem.pool
        workers = [int(pool.worker_idx[r]) for r in rows]
        tasks = [int(pool.task_idx[r]) for r in rows]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)
        assert sum(pool.cost_mean[r] for r in rows) <= budget + 1e-9
        assert sum(pool.quality_mean[r] for r in rows) == pytest.approx(quality)

    def test_size_guard(self):
        problem = make_problem(seed=0, num_workers=12, num_tasks=12)
        with pytest.raises(ValueError):
            exact_assignment(problem, 10.0, max_pairs=10)

    def test_ignores_predicted_pairs(self):
        problem = make_problem(
            seed=4, num_workers=4, num_tasks=4,
            num_predicted_workers=3, num_predicted_tasks=3,
        )
        rows, _ = exact_assignment(problem, 10.0, max_pairs=200)
        assert all(problem.pool.is_current[r] for r in rows)
