"""Differential proof for the fused round pipeline.

The fusion refactor makes the serial engine the K=1 case of the
sharded engine: both run their delta candidate pools and warm
selection through per-tile :class:`~repro.streaming.pipeline.
TilePipeline` state, the sharded one adding a churn-splitting parent
and (for the process backend) a shared-memory exchange.  The proof
obligation is *bit identity*: for K ∈ {1, 2, 4} × {serial, thread,
process} on both prediction legs, the sharded stream must reproduce
the serial delta-path stream exactly — assignments, quality, costs,
budget accounting, prediction errors.

Hypothesis drives the workload shape (family, density, velocity,
deadline tightness, seed) so the equivalence is enforced across the
churn regimes the splitter has to route — arrivals, expiry waves,
border crossings — not just one golden stream.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MQAGreedy
from repro.geo.box import Box
from repro.model.entities import Task, Worker
from repro.model.sparse import build_problem_sparse
from repro.streaming import (
    ShardedStreamingEngine,
    ShardingConfig,
    StreamConfig,
    prepared_sharded_engine,
    run_sharded_stream,
    run_stream,
)
from repro.streaming.pipeline import (
    FusedRoundBuilder,
    TileChurnSplitter,
    _net_task_ops,
)
from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex
from repro.geo.tiles import TileGrid, TileZones
from repro.workloads import BurstyWorkload, SyntheticWorkload, WorkloadParams
from repro.workloads.quality import HashQualityModel

from test_model_delta import _GAMMA, _UNIT_COST, _assert_pools_identical
from test_streaming_equivalence import assert_results_identical

#: Serial baselines are deterministic in the drawn parameters; caching
#: them keeps the 9-combination sweep from recomputing each one 9×.
_BASELINES: dict[tuple, object] = {}


def _workload(family, seed, size, velocity, deadline):
    params = WorkloadParams(
        num_workers=size,
        num_tasks=size,
        num_instances=3,
        velocity_range=(0.04, velocity),
        deadline_range=(0.4, deadline),
    )
    cls = BurstyWorkload if family == "bursty" else SyntheticWorkload
    return cls(params, seed=seed)


def _serial_baseline(key):
    result = _BASELINES.get(key)
    if result is None:
        family, seed, size, velocity, deadline, use_prediction = key
        result = run_stream(
            _workload(family, seed, size, velocity, deadline),
            MQAGreedy(),
            config=StreamConfig(
                round_interval=0.5, budget=40.0, use_prediction=use_prediction
            ),
            seed=seed,
        )
        _BASELINES[key] = result
    return result


class TestFusedBitIdentity:
    """Sharded fused streams == serial delta stream, bit for bit."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @given(
        seed=st.integers(min_value=0, max_value=999),
        family=st.sampled_from(["bursty", "synthetic"]),
        size=st.integers(min_value=40, max_value=110),
        velocity=st.floats(min_value=0.05, max_value=0.12),
        deadline=st.floats(min_value=0.6, max_value=1.3),
        use_prediction=st.booleans(),
    )
    @settings(max_examples=5, deadline=None)
    def test_stream_identity(
        self, num_shards, backend, seed, family, size, velocity, deadline,
        use_prediction,
    ):
        key = (family, seed, size, round(velocity, 6), round(deadline, 6),
               use_prediction)
        serial = _serial_baseline(key)
        sharded = run_sharded_stream(
            _workload(*key[:5]),
            MQAGreedy(),
            config=StreamConfig(
                round_interval=0.5, budget=40.0, use_prediction=use_prediction
            ),
            sharding=ShardingConfig(num_shards=num_shards, backend=backend),
            seed=seed,
        )
        assert_results_identical(serial, sharded)


class TestFusedSteadyState:
    """Steady-state contracts: incremental repair and delta-only IPC."""

    def _stream(self, backend, num_shards=4):
        workload = BurstyWorkload(
            WorkloadParams(
                num_workers=150,
                num_tasks=150,
                num_instances=5,
                velocity_range=(0.05, 0.09),
                deadline_range=(0.8, 1.5),
            ),
            seed=13,
        )
        engine, _ = prepared_sharded_engine(
            workload,
            MQAGreedy(),
            config=StreamConfig(round_interval=0.5, budget=40.0),
            sharding=ShardingConfig(num_shards=num_shards, backend=backend),
            seed=13,
        )
        return engine, workload

    def test_per_tile_repairs_are_incremental(self):
        """After the priming round, tile pools repair in O(churn):
        the per-tile incremental rate clears the health floor."""
        engine, workload = self._stream("serial")
        with engine:
            engine.advance_to(float(workload.num_instances))
            stats = engine.delta_stats
        assert stats.rounds > stats.primes
        rate = stats.incremental_rounds / max(stats.rounds - stats.primes, 1)
        assert rate >= 0.85

    def test_process_round_messages_are_deltas(self):
        """The shm backend's pipe traffic carries churn, not pools:
        steady-state rounds move far fewer bytes than the priming
        round that ships the wholesale entity lists."""
        engine, workload = self._stream("process")
        per_round = []
        with engine:
            clock = 0.5
            while clock <= float(workload.num_instances):
                engine.advance_to(clock)
                per_round.append(engine.ipc_bytes_last_round)
                clock += 0.5
        per_round = [b for b in per_round if b > 0]
        assert len(per_round) >= 4
        prime, steady = per_round[0], sorted(per_round[2:])
        # The typical steady round ships less than the priming round
        # that moved the wholesale entity lists (bursty rounds may
        # spike — that's churn, and churn is exactly what may travel).
        assert steady[len(steady) // 2] < prime
        # And no round is ever state-sized.
        assert max(per_round) < 256 * 1024

    def test_inline_backends_exchange_no_bytes(self):
        engine, workload = self._stream("thread", num_shards=2)
        with engine:
            engine.advance_to(1.0)
            assert engine.ipc_bytes_last_round == 0

    def test_slack_rejected_on_multi_tile(self):
        """Motion slack stays a serial-engine feature: per-tile pools
        would disagree with the global slack cache, so the sharded
        engine refuses the combination outright."""
        workload = BurstyWorkload(
            WorkloadParams(num_workers=20, num_tasks=20, num_instances=2),
            seed=1,
        )
        with pytest.raises(ValueError, match="slack"):
            prepared_sharded_engine(
                workload,
                MQAGreedy(),
                config=StreamConfig(
                    round_interval=0.5, budget=10.0, delta_slack=0.05
                ),
                sharding=ShardingConfig(num_shards=2),
                seed=1,
            )


class TestChurnSplitter:
    """Unit coverage for the journal-splitting parent."""

    def _setup(self):
        grid = GridIndex(8)
        zones = TileZones(TileGrid(2, 1), grid)  # tiles split at x=0.5
        zones.ensure(0.0)
        splitter = TileChurnSplitter(zones)
        return grid, zones, splitter

    def test_insert_routes_to_zone_tiles(self):
        _, _, splitter = self._setup()
        splitter.reset(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        split = splitter.split([("insert", 7, 0.1, 0.1)])
        assert split is not None
        per_tile, refresh, rejoins = split
        assert list(per_tile.keys()) == [0]
        assert not refresh and not rejoins

    def test_cross_border_move_is_remove_plus_rejoin(self):
        """An entity crossing the tile border leaves a synthetic
        remove behind and puts the gaining tile on the refresh list —
        the drop-and-rejoin edge mirroring slack crossings."""
        _, _, splitter = self._setup()
        splitter.reset(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert splitter.split([("insert", 3, 0.1, 0.1)]) is not None
        split = splitter.split([("move", 3, 0.9, 0.1)])
        assert split is not None
        per_tile, refresh, rejoins = split
        assert [op[0] for op in per_tile.get(0, [])] == ["remove"]
        assert refresh == {1}
        assert rejoins == [1]
        assert splitter.border_rejoins_total == 1

    def test_unknown_key_bails_out(self):
        _, _, splitter = self._setup()
        splitter.reset(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert splitter.split([("move", 99, 0.5, 0.5)]) is None

    def test_net_task_ops(self):
        known = {1}
        net = _net_task_ops(
            [
                ("insert", 2, 0.1, 0.1),
                ("remove", 2, 0.1, 0.1),   # nets away
                ("insert", 3, 0.2, 0.2),
                ("move", 3, 0.3, 0.3),     # updates the net-new coords
                ("remove", 1, 0.0, 0.0),
            ],
            known,
        )
        assert net is not None
        removed, new, moved = net
        assert removed == {1}
        assert new == {3: (0.3, 0.3)}
        assert 2 not in new and not moved

    def test_insert_of_known_key_is_contradiction(self):
        assert _net_task_ops([("insert", 1, 0.0, 0.0)], {1}) is None


def _static_worker_world(cls):
    """The engine never moves a worker mid-stream (positions are fixed
    at arrival), so the corpus's worker motion becomes what the engine
    would actually emit: a departure plus a fresh arrival."""

    class _World(cls):
        def move_workers(self, count, scale):
            self.remove_workers(count)
            self.arrive_workers(count)

    return _World


class TestFusedAdversarialCorpus:
    """PR 6's named worst-case churn scripts, now against per-tile
    pools: every round of every scenario must emit a merged pool
    bit-identical to a from-scratch sparse build."""

    @pytest.mark.parametrize("num_tiles", [1, 4])
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        use_prediction=st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_corpus_bit_identity(
        self, adversarial_scenario, churn_world_cls, num_tiles, seed,
        use_prediction,
    ):
        rng = np.random.default_rng(seed)
        qm = HashQualityModel((0.0, 1.0), seed=3)
        world = _static_worker_world(churn_world_cls)(
            rng, slack=0.03, index_gamma=_GAMMA
        )
        builder = FusedRoundBuilder(
            qm, _UNIT_COST, TileGrid.from_shard_count(num_tiles), world.index
        )
        for i in range(adversarial_scenario.num_rounds):
            adversarial_scenario.drive(world, i)
            pw, pt = world.predicted(use_prediction)
            fresh = build_problem_sparse(
                world.workers, world.tasks, pw, pt, qm, _UNIT_COST, world.now,
                task_index=world.index if world.tasks else None,
                index_gamma=_GAMMA,
            )
            fused = builder.build_round(
                world.workers, world.tasks, pw, pt, world.now
            )
            _assert_pools_identical(fresh, fused)
        assert builder.delta_stats.rounds > 0

    def test_border_oscillation_rejoins_bit_identical(self, churn_world_cls):
        """Tasks ping-ponging across the tile border every round: the
        gaining tile re-primes (the drop-and-rejoin edge), the losing
        tile repairs incrementally, and the merged pool never drifts
        from the fresh build."""
        rng = np.random.default_rng(7)
        qm = HashQualityModel((0.0, 1.0), seed=3)
        world = churn_world_cls(rng, slack=0.0, index_gamma=_GAMMA)
        builder = FusedRoundBuilder(
            qm, _UNIT_COST, TileGrid(2, 1), world.index
        )
        # Slow workers + tight deadlines keep the margin to a couple of
        # cells, so a 0.3 <-> 0.7 hop genuinely leaves the old zone.
        for x in (0.1, 0.35, 0.65, 0.9):
            world.workers.append(
                Worker(
                    id=world._new_id(), location=Point(x, 0.5),
                    velocity=0.02, arrival=0.0,
                )
            )
        movers = []
        for x in (0.3, 0.32, 0.68):
            task = Task(
                id=world._new_id(), location=Point(x, 0.5),
                deadline=1.0, arrival=world.now,
            )
            world.tasks.append(task)
            world.index.insert(task.id, task.location)
            movers.append(task.id)

        def check():
            fresh = build_problem_sparse(
                world.workers, world.tasks, [], [], qm, _UNIT_COST, world.now,
                task_index=world.index if world.tasks else None,
                index_gamma=_GAMMA,
            )
            fused = builder.build_round(
                world.workers, world.tasks, [], [], world.now
            )
            _assert_pools_identical(fresh, fused)

        check()
        for _ in range(5):
            world.now += 0.1
            for position, task in enumerate(world.tasks):
                if task.id not in movers:
                    continue
                x = task.location.x
                new_x = x + 0.38 if x < 0.5 else x - 0.38
                point = Point(new_x, task.location.y)
                moved = replace(task, location=point, box=Box.from_point(point))
                world.tasks[position] = moved
                world.index.move(moved.id, point)
            check()
        assert builder._splitter.border_rejoins_total > 0


class TestFusedBuilderDirect:
    """FusedRoundBuilder driven directly against a spatial index."""

    def test_slack_multi_tile_rejected(self):
        index = SpatialIndex(8)
        with pytest.raises(ValueError, match="slack"):
            FusedRoundBuilder(
                HashQualityModel((1.0, 2.0), seed=0),
                0.1,
                TileGrid(2, 2),
                index,
                slack=0.1,
            )

    def test_retry_protocol_surfaces_poisoned_tiles(self):
        """A tile that rejects its own refresh payload is a bug, not
        a retry loop: the builder raises instead of spinning."""
        from repro.streaming.pipeline import InlineTileRunner

        class _Refusenik(InlineTileRunner):
            def run(self, messages, now, pw, pt):
                return [None for _ in messages]

        index = SpatialIndex(8)
        builder = FusedRoundBuilder(
            HashQualityModel((1.0, 2.0), seed=0),
            0.1,
            TileGrid(1, 1),
            index,
            runner_factory=lambda spec, n: _Refusenik(n, spec),
        )
        with pytest.raises(RuntimeError, match="refresh"):
            builder.build_round([], [], [], [], 0.0)
