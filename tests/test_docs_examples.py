"""Every documented Python snippet executes; every documented link
resolves.

The docs promise that each fenced ```python block in README.md and
docs/*.md is runnable — this module collects them and runs them, one
shared namespace per file (so a later block can use an earlier
block's imports and variables, exactly as a reader would paste them).
Blocks run under a temporary working directory so a snippet that
writes files can never pollute the repo.

``tools/check_docs.py`` (link existence + architecture package
coverage) is also exercised here so link rot fails tier-1, not just
the CI docs job.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

_FENCE = re.compile(r"^```python\s*$")
_FENCE_END = re.compile(r"^```\s*$")


def _documented_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """(start line, source) for every ```python fence in the file."""
    blocks = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        if _FENCE.match(lines[i]):
            start = i + 2  # 1-indexed first line of the block body
            body = []
            i += 1
            while i < len(lines) and not _FENCE_END.match(lines[i]):
                body.append(lines[i])
                i += 1
            blocks.append((start, "\n".join(body)))
        i += 1
    return blocks


@pytest.mark.parametrize(
    "doc", _documented_files(), ids=lambda p: str(p.relative_to(REPO))
)
def test_documented_snippets_execute(doc, tmp_path, monkeypatch):
    blocks = _python_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} documents no python snippets")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docs_{doc.stem}"}
    for start, source in blocks:
        code = compile(source, f"{doc.name}:{start}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


def test_docs_site_is_complete():
    """The four guides exist and cross-link from the README."""
    for guide in ("architecture", "operations", "benchmarks", "scenarios"):
        assert (REPO / "docs" / f"{guide}.md").exists(), guide
    readme = (REPO / "README.md").read_text()
    for guide in ("architecture", "operations", "benchmarks", "scenarios"):
        assert f"docs/{guide}.md" in readme, f"README must link docs/{guide}.md"


def test_check_docs_lint_is_clean(capsys):
    """tools/check_docs.py: links resolve, every package documented."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    rc = module.main()
    captured = capsys.readouterr()
    assert rc == 0, f"docs lint failed:\n{captured.err}"
    packages = module.repro_packages()
    assert "repro.streaming" in packages and "repro.obs" in packages
