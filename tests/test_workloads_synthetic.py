"""Tests for repro.workloads.synthetic."""

import numpy as np
import pytest

from repro.workloads.base import WorkloadParams
from repro.workloads.synthetic import SyntheticWorkload, _largest_remainder_round


class TestLargestRemainderRound:
    def test_sums_to_total(self, rng):
        for _ in range(10):
            expected = rng.uniform(0, 1, size=20)
            counts = _largest_remainder_round(expected, 57)
            assert counts.sum() == 57
            assert (counts >= 0).all()

    def test_zero_total(self):
        assert _largest_remainder_round(np.ones(5), 0).sum() == 0

    def test_proportionality(self):
        counts = _largest_remainder_round(np.array([3.0, 1.0]), 8)
        assert counts.tolist() == [6, 2]


class TestSyntheticWorkload:
    def test_total_counts_match_params(self):
        params = WorkloadParams(num_workers=200, num_tasks=150, num_instances=10)
        workload = SyntheticWorkload(params, seed=1)
        assert workload.total_workers() == 200
        assert workload.total_tasks() == 150

    def test_reproducible_for_same_seed(self):
        params = WorkloadParams(num_workers=50, num_tasks=50, num_instances=5)
        a = SyntheticWorkload(params, seed=9)
        b = SyntheticWorkload(params, seed=9)
        for p in range(5):
            wa, ta = a.arrivals(p)
            wb, tb = b.arrivals(p)
            assert [w.location for w in wa] == [w.location for w in wb]
            assert [t.deadline for t in ta] == [t.deadline for t in tb]

    def test_different_seeds_differ(self):
        params = WorkloadParams(num_workers=50, num_tasks=50, num_instances=5)
        a = SyntheticWorkload(params, seed=1)
        b = SyntheticWorkload(params, seed=2)
        wa, _ = a.arrivals(0)
        wb, _ = b.arrivals(0)
        assert [w.location for w in wa] != [w.location for w in wb]

    def test_velocities_within_range(self):
        params = WorkloadParams(num_workers=100, num_tasks=10, num_instances=4,
                                velocity_range=(0.1, 0.2))
        workload = SyntheticWorkload(params, seed=3)
        for p in range(4):
            workers, _ = workload.arrivals(p)
            for worker in workers:
                assert 0.1 <= worker.velocity <= 0.2

    def test_deadlines_within_offset_range(self):
        params = WorkloadParams(num_workers=10, num_tasks=100, num_instances=4,
                                deadline_range=(0.5, 1.0))
        workload = SyntheticWorkload(params, seed=3)
        for p in range(4):
            _, tasks = workload.arrivals(p)
            for task in tasks:
                assert p + 0.5 <= task.deadline <= p + 1.0 + 1e-9
                assert task.arrival == float(p)

    def test_unique_entity_ids(self):
        params = WorkloadParams(num_workers=80, num_tasks=70, num_instances=6)
        workload = SyntheticWorkload(params, seed=5)
        ids = []
        for p in range(6):
            workers, tasks = workload.arrivals(p)
            ids.extend(w.id for w in workers)
            ids.extend(t.id for t in tasks)
        assert len(ids) == len(set(ids))

    def test_locations_in_unit_square(self):
        params = WorkloadParams(num_workers=100, num_tasks=100, num_instances=3)
        workload = SyntheticWorkload(params, seed=2)
        for p in range(3):
            workers, tasks = workload.arrivals(p)
            for entity in workers + tasks:
                assert 0.0 <= entity.location.x <= 1.0
                assert 0.0 <= entity.location.y <= 1.0

    def test_out_of_range_instance_rejected(self):
        workload = SyntheticWorkload(WorkloadParams(num_workers=5, num_tasks=5,
                                                    num_instances=2), seed=0)
        with pytest.raises(IndexError):
            workload.arrivals(2)

    def test_per_cell_counts_are_stable_over_time(self):
        """The stable-field model: per-cell arrival counts vary slowly."""
        from repro.geo.grid import GridIndex

        params = WorkloadParams(num_workers=3000, num_tasks=10, num_instances=10,
                                count_noise=0.04, worker_distribution="zipf")
        workload = SyntheticWorkload(params, seed=11)
        grid = GridIndex(10)
        counts = np.array([
            grid.count_points([w.location for w in workload.arrivals(p)[0]])
            for p in range(10)
        ])
        active = counts.mean(axis=0) >= 4.0
        assert active.any()
        variation = counts[:, active].std(axis=0) / counts[:, active].mean(axis=0)
        assert float(np.median(variation)) < 0.35

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(num_instances=0)
        with pytest.raises(ValueError):
            WorkloadParams(velocity_range=(0.0, 0.2))
        with pytest.raises(ValueError):
            WorkloadParams(quality_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            WorkloadParams(count_noise=-0.1)
