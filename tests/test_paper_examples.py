"""The paper's running example (Examples 1-2, Table I), end to end.

Table I gives three workers, three tasks, distances and quality scores.
Example 1: assigning locally (w1 at timestamp p; w2, w3 at p+1) yields
pairs <w1,t1>, <w2,t2>, <w3,t3> — traveling cost 5, quality 7.
Example 2: the clairvoyant global assignment <w2,t1>, <w1,t2>, <w3,t3>
achieves cost 4 and quality 8.

The pair pool is constructed directly from Table I (the table's
distance matrix need not be planar), and the paper's numbers must fall
out of the library's own machinery.
"""

import numpy as np
import pytest

from repro.core.exact import exact_assignment
from repro.geo.point import Point
from repro.matching.hungarian import hungarian_max_weight
from repro.model.entities import Task, Worker
from repro.model.instance import ProblemInstance
from repro.model.pairs import PairPool

# Table I: dist(w_i, t_j) and q_ij, row-major over (w1..w3) x (t1..t3).
DISTANCES = np.array(
    [
        [1.0, 2.0, 4.0],
        [1.0, 3.0, 2.0],
        [5.0, 3.0, 1.0],
    ]
)
QUALITIES = np.array(
    [
        [3.0, 2.0, 2.0],
        [4.0, 2.0, 1.0],
        [2.0, 1.0, 2.0],
    ]
)


def build_table_i_problem(worker_rows, task_cols):
    """A ProblemInstance over the Table I sub-matrix (unit cost 1)."""
    workers = [
        Worker(id=i, location=Point(0.5, 0.5), velocity=1.0) for i in worker_rows
    ]
    tasks = [
        Task(id=100 + j, location=Point(0.5, 0.5), deadline=100.0) for j in task_cols
    ]
    rows, cols, costs, qualities = [], [], [], []
    for wi, i in enumerate(worker_rows):
        for tj, j in enumerate(task_cols):
            rows.append(wi)
            cols.append(tj)
            costs.append(DISTANCES[i, j])
            qualities.append(QUALITIES[i, j])
    n = len(rows)
    costs = np.array(costs)
    qualities = np.array(qualities)
    pool = PairPool(
        worker_idx=np.array(rows),
        task_idx=np.array(cols),
        cost_mean=costs,
        cost_var=np.zeros(n),
        cost_lb=costs,
        cost_ub=costs,
        quality_mean=qualities,
        quality_var=np.zeros(n),
        quality_lb=qualities,
        quality_ub=qualities,
        existence=np.ones(n),
        is_current=np.ones(n, dtype=bool),
    )
    return ProblemInstance(
        workers=workers,
        tasks=tasks,
        num_current_workers=len(workers),
        num_current_tasks=len(tasks),
        pool=pool,
        now=0.0,
    )


class TestExample1LocalAssignment:
    def test_timestamp_p_assigns_w1_to_t1(self):
        """At p only w1, t1, t2 exist; the local optimum is <w1,t1>."""
        problem = build_table_i_problem(worker_rows=[0], task_cols=[0, 1])
        weights = np.full((1, 2), -np.inf)
        for row in range(len(problem.pool)):
            weights[problem.pool.worker_idx[row], problem.pool.task_idx[row]] = (
                problem.pool.quality_mean[row]
            )
        matching, total = hungarian_max_weight(weights)
        assert matching == [(0, 0)]  # w1 -> t1
        assert total == 3.0

    def test_timestamp_p_plus_1_completes_the_local_strategy(self):
        """At p+1, w2/w3 meet t2/t3: local optimum <w2,t2>, <w3,t3>."""
        problem = build_table_i_problem(worker_rows=[1, 2], task_cols=[1, 2])
        weights = np.zeros((2, 2))
        for row in range(len(problem.pool)):
            weights[problem.pool.worker_idx[row], problem.pool.task_idx[row]] = (
                problem.pool.quality_mean[row]
            )
        matching, total = hungarian_max_weight(weights)
        assert matching == [(0, 0), (1, 1)]  # w2 -> t2, w3 -> t3
        assert total == 4.0

    def test_local_totals_match_paper(self):
        """Overall: quality 7 (= 3+2+2), traveling cost 5 (= 1+3+1)."""
        local_quality = 3.0 + 2.0 + 2.0
        local_cost = (
            DISTANCES[0, 0] + DISTANCES[1, 1] + DISTANCES[2, 2]
        )
        assert local_quality == 7.0
        assert local_cost == 5.0


class TestExample2GlobalAssignment:
    def test_clairvoyant_optimum_is_8(self):
        """With all entities visible, the optimum is <w2,t1>, <w1,t2>,
        <w3,t3>: quality 8, cost 4 — the paper's Figure 2."""
        problem = build_table_i_problem(worker_rows=[0, 1, 2], task_cols=[0, 1, 2])
        rows, quality = exact_assignment(problem, budget=100.0)
        assert quality == pytest.approx(8.0)
        pairs = {
            (int(problem.pool.worker_idx[r]), int(problem.pool.task_idx[r]))
            for r in rows
        }
        assert pairs == {(1, 0), (0, 1), (2, 2)}
        cost = sum(float(problem.pool.cost_mean[r]) for r in rows)
        assert cost == pytest.approx(4.0)

    def test_global_beats_local_on_both_metrics(self):
        """Example 2's punchline: lower cost (4 < 5), higher quality
        (8 > 7)."""
        problem = build_table_i_problem(worker_rows=[0, 1, 2], task_cols=[0, 1, 2])
        rows, quality = exact_assignment(problem, budget=100.0)
        cost = sum(float(problem.pool.cost_mean[r]) for r in rows)
        assert quality > 7.0
        assert cost < 5.0

    def test_budget_4_still_admits_the_global_optimum(self):
        """The paper's budgeted setting: the globally optimal set costs
        exactly 4, so it survives a budget of 4."""
        problem = build_table_i_problem(worker_rows=[0, 1, 2], task_cols=[0, 1, 2])
        _, quality = exact_assignment(problem, budget=4.0)
        assert quality == pytest.approx(8.0)

    def test_greedy_on_the_full_instance(self):
        """MQA greedy on the clairvoyant instance also finds quality 8:
        it picks <w2,t1> (q=4) first, then the rest falls into place."""
        from repro.core.greedy import MQAGreedy

        problem = build_table_i_problem(worker_rows=[0, 1, 2], task_cols=[0, 1, 2])
        result = MQAGreedy().assign(problem, 100.0, 0.0, np.random.default_rng(0))
        assert result.total_quality == pytest.approx(8.0)
