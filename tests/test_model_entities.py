"""Tests for repro.model.entities."""

import pytest

from repro.geo.box import Box
from repro.geo.point import Point
from repro.model.entities import Task, Worker, mean_velocity


class TestWorker:
    def test_current_worker_gets_degenerate_box(self):
        worker = Worker(id=1, location=Point(0.2, 0.3), velocity=0.3)
        assert worker.box.is_degenerate
        assert worker.box.center == Point(0.2, 0.3)
        assert worker.is_current

    def test_predicted_worker_keeps_custom_box(self):
        box = Box(0.1, 0.3, 0.1, 0.3)
        worker = Worker(
            id=2, location=Point(0.2, 0.2), velocity=0.3, predicted=True, box=box
        )
        assert worker.box == box
        assert not worker.is_current

    def test_nonpositive_velocity_rejected(self):
        with pytest.raises(ValueError):
            Worker(id=3, location=Point(0, 0), velocity=0.0)

    def test_workers_are_frozen(self):
        worker = Worker(id=4, location=Point(0, 0), velocity=0.1)
        with pytest.raises(AttributeError):
            worker.velocity = 0.5


class TestTask:
    def test_current_task_defaults(self):
        task = Task(id=1, location=Point(0.5, 0.5), deadline=2.0)
        assert task.is_current
        assert task.box.is_degenerate

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            Task(id=2, location=Point(0, 0), deadline=0.5, arrival=1.0)

    def test_remaining_time(self):
        task = Task(id=3, location=Point(0, 0), deadline=3.0, arrival=1.0)
        assert task.remaining_time(now=2.0) == pytest.approx(1.0)
        assert task.remaining_time(now=4.0) == pytest.approx(-1.0)

    def test_expiry(self):
        task = Task(id=4, location=Point(0, 0), deadline=3.0)
        assert not task.is_expired(3.0)
        assert task.is_expired(3.1)


class TestMeanVelocity:
    def test_empty_set(self):
        assert mean_velocity([]) == 0.0

    def test_mean(self):
        workers = [
            Worker(id=i, location=Point(0, 0), velocity=v)
            for i, v in enumerate((0.2, 0.4))
        ]
        assert mean_velocity(workers) == pytest.approx(0.3)
