"""Tests for repro.model.pairs (CandidatePair and PairPool)."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.model.pairs import CandidatePair, PairPool
from repro.uncertainty.values import UncertainValue


def small_pool(num=4):
    z = np.arange(num, dtype=float)
    return PairPool(
        worker_idx=np.arange(num),
        task_idx=np.arange(num)[::-1].copy(),
        cost_mean=z + 1.0,
        cost_var=np.zeros(num),
        cost_lb=z + 1.0,
        cost_ub=z + 1.0,
        quality_mean=z * 0.5,
        quality_var=np.zeros(num),
        quality_lb=z * 0.5,
        quality_ub=z * 0.5,
        existence=np.ones(num),
        is_current=np.ones(num, dtype=bool),
    )


class TestCandidatePair:
    def test_is_current(self):
        worker = Worker(id=1, location=Point(0, 0), velocity=0.2)
        task = Task(id=2, location=Point(1, 1), deadline=5.0)
        pair = CandidatePair(
            worker=worker,
            task=task,
            cost=UncertainValue.certain(1.0),
            quality=UncertainValue.certain(2.0),
        )
        assert pair.is_current

    def test_predicted_endpoint_makes_pair_non_current(self):
        worker = Worker(id=1, location=Point(0, 0), velocity=0.2, predicted=True)
        task = Task(id=2, location=Point(1, 1), deadline=5.0)
        pair = CandidatePair(
            worker=worker,
            task=task,
            cost=UncertainValue.certain(1.0),
            quality=UncertainValue.certain(2.0),
        )
        assert not pair.is_current


class TestPairPool:
    def test_len(self):
        assert len(small_pool(5)) == 5

    def test_empty(self):
        pool = PairPool.empty()
        assert len(pool) == 0

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PairPool(
                worker_idx=np.zeros(2, dtype=int),
                task_idx=np.zeros(3, dtype=int),
                cost_mean=np.zeros(2),
                cost_var=np.zeros(2),
                cost_lb=np.zeros(2),
                cost_ub=np.zeros(2),
                quality_mean=np.zeros(2),
                quality_var=np.zeros(2),
                quality_lb=np.zeros(2),
                quality_ub=np.zeros(2),
                existence=np.zeros(2),
                is_current=np.zeros(2, dtype=bool),
            )

    def test_subset_by_mask(self):
        pool = small_pool(4)
        sub = pool.subset(pool.cost_mean > 2.0)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.cost_mean, [3.0, 4.0])

    def test_subset_by_indices(self):
        pool = small_pool(4)
        sub = pool.subset(np.array([0, 3]))
        np.testing.assert_array_equal(sub.worker_idx, [0, 3])

    def test_concatenate(self):
        merged = PairPool.concatenate([small_pool(2), small_pool(3)])
        assert len(merged) == 5

    def test_concatenate_with_empty(self):
        merged = PairPool.concatenate([PairPool.empty(), small_pool(2)])
        assert len(merged) == 2

    def test_concatenate_nothing(self):
        assert len(PairPool.concatenate([])) == 0

    def test_cost_value_roundtrip(self):
        pool = small_pool(3)
        value = pool.cost_value(1)
        assert value.mean == 2.0
        assert value.is_certain

    def test_quality_value_roundtrip(self):
        pool = small_pool(3)
        value = pool.quality_value(2)
        assert value.mean == 1.0
