"""Tests for repro.uncertainty.normal."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.normal import (
    erf_approx,
    standard_normal_cdf,
    standard_normal_cdf_approx,
)

z_values = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False)


class TestErfApprox:
    @given(z_values)
    def test_matches_math_erf(self, x):
        assert erf_approx(x) == pytest.approx(math.erf(x), abs=2e-7)

    @given(z_values)
    def test_odd_symmetry(self, x):
        # The rational approximation has ~1e-9 residue at the origin.
        assert erf_approx(-x) == pytest.approx(-erf_approx(x), abs=1e-8)

    def test_limits(self):
        assert erf_approx(10.0) == pytest.approx(1.0, abs=1e-7)
        assert erf_approx(-10.0) == pytest.approx(-1.0, abs=1e-7)
        assert erf_approx(0.0) == pytest.approx(0.0, abs=1e-8)


class TestStandardNormalCdf:
    def test_median(self):
        assert standard_normal_cdf(0.0) == pytest.approx(0.5)

    def test_known_quantiles(self):
        assert standard_normal_cdf(1.0) == pytest.approx(0.8413447, abs=1e-6)
        assert standard_normal_cdf(-1.96) == pytest.approx(0.0249979, abs=1e-6)
        assert standard_normal_cdf(2.575829) == pytest.approx(0.995, abs=1e-5)

    @given(z_values)
    def test_monotone(self, z):
        assert standard_normal_cdf(z) <= standard_normal_cdf(z + 0.1) + 1e-12

    @given(z_values)
    def test_complement_symmetry(self, z):
        assert standard_normal_cdf(z) + standard_normal_cdf(-z) == pytest.approx(1.0)

    @given(z_values)
    def test_approx_agrees_with_exact(self, z):
        assert standard_normal_cdf_approx(z) == pytest.approx(
            standard_normal_cdf(z), abs=2e-7
        )

    def test_scipy_cross_check(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for z in (-3.2, -0.7, 0.0, 0.9, 2.8):
            assert standard_normal_cdf(z) == pytest.approx(
                float(scipy_stats.norm.cdf(z)), abs=1e-12
            )
