"""Hypothesis property tests over the full simulation engine.

Randomized workload/engine configurations through the entire stack,
checked against the audit-trail invariants.  Sizes are kept small so
the suite stays fast; breadth comes from hypothesis' exploration.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import MQAGreedy
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import WorkloadParams
from repro.workloads.synthetic import SyntheticWorkload

engine_cases = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_workers": st.integers(min_value=0, max_value=60),
        "num_tasks": st.integers(min_value=0, max_value=60),
        "num_instances": st.integers(min_value=1, max_value=5),
        "budget": st.floats(min_value=0.0, max_value=30.0),
        "use_prediction": st.booleans(),
        "deadline_low": st.floats(min_value=0.3, max_value=1.5),
        "deadline_span": st.floats(min_value=0.1, max_value=1.5),
    }
)


@given(case=engine_cases)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_engine_run_invariants(case):
    params = WorkloadParams(
        num_workers=case["num_workers"],
        num_tasks=case["num_tasks"],
        num_instances=case["num_instances"],
        deadline_range=(
            case["deadline_low"],
            case["deadline_low"] + case["deadline_span"],
        ),
    )
    workload = SyntheticWorkload(params, seed=case["seed"])
    engine = SimulationEngine(
        workload,
        MQAGreedy(),
        EngineConfig(
            budget=case["budget"],
            grid_gamma=4,
            use_prediction=case["use_prediction"],
        ),
        seed=case["seed"],
    )
    result = engine.run()

    # Structure.
    assert len(result.instances) == case["num_instances"]
    assert len(result.assignments) == result.total_assigned

    # Per-instance budget (Definition 4, constraint 2).
    for metrics in result.instances:
        assert metrics.cost <= case["budget"] + 1e-6
        assert metrics.assigned <= min(metrics.num_workers, metrics.num_tasks)

    # Audit: no task served twice, no worker double-booked.
    task_ids = [a.task_id for a in result.assignments]
    worker_ids = [a.worker_id for a in result.assignments]
    assert len(set(task_ids)) == len(task_ids)
    assert len(set(worker_ids)) == len(worker_ids)

    # Totals tie out.
    assert result.total_quality == pytest.approx(
        sum(m.quality for m in result.instances)
    )
    assert result.total_cost == pytest.approx(
        sum(m.cost for m in result.instances)
    )
