"""Tests for repro.prediction.accuracy (the Fig. 10 metric)."""

import numpy as np
import pytest

from repro.prediction.accuracy import average_relative_error, relative_errors


class TestRelativeErrors:
    def test_perfect_prediction(self):
        actual = np.array([3.0, 0.0, 7.0])
        np.testing.assert_allclose(relative_errors(actual, actual), 0.0)

    def test_known_errors(self):
        estimated = np.array([4.0, 2.0])
        actual = np.array([5.0, 4.0])
        np.testing.assert_allclose(relative_errors(estimated, actual), [0.2, 0.5])

    def test_zero_actual_uses_unit_denominator(self):
        errors = relative_errors(np.array([3.0]), np.array([0.0]))
        assert errors[0] == pytest.approx(3.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros(2), np.zeros(3))

    def test_negative_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros(1), np.array([-1.0]))


class TestAverageRelativeError:
    def test_average(self):
        estimated = np.array([4.0, 2.0])
        actual = np.array([5.0, 4.0])
        assert average_relative_error(estimated, actual) == pytest.approx(0.35)

    def test_empty_cells_dilute_average(self):
        """Cells with est = act = 0 contribute zero error (paper metric)."""
        estimated = np.array([4.0, 0.0, 0.0, 0.0])
        actual = np.array([5.0, 0.0, 0.0, 0.0])
        assert average_relative_error(estimated, actual) == pytest.approx(0.05)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            average_relative_error(np.zeros(0), np.zeros(0))
