"""Self-healing shard supervision: the chaos differential proofs.

The process backend's supervisor must turn worker failure from fatal
into invisible.  The proofs, in order of importance:

- **Chaos differential** (the PR's acceptance criterion): with a
  :class:`~repro.faults.FaultPlan` killing and hanging process-shard
  workers mid-round (K ∈ {2, 4}, both prediction legs), the stream
  completes via respawn + wholesale re-prime, its result is
  bit-identical to the serial reference, and its
  :func:`~repro.streaming.recovery.state_digest` equals the
  fault-free process run's, component-wise.
- **Hung worker**: SIGSTOP a live worker mid-stream; the recv
  deadline fires, the worker is respawned (new pid), and the result
  is digest-identical to an uninterrupted run.
- **Crash loop → graceful degradation**: a worker that dies on every
  respawn exhausts the budget; the engine swaps to the inline serial
  path and still finishes bit-identically (both prediction legs).
- **Faults disabled = zero impact**: an empty plan is digest-equal to
  no injector at all.

Fault rounds address the runner's own invocation counter (retries
count), so plans here pick rounds known to carry normal messages.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core import MQAGreedy
from repro.faults import FaultPlan
from repro.streaming import (
    ShardingConfig,
    StreamConfig,
    prepared_sharded_engine,
    run_stream,
    state_digest,
)
from repro.workloads import BurstyWorkload, WorkloadParams

from test_streaming_equivalence import assert_results_identical

_SIZE = 50
_INSTANCES = 3


def _workload(seed=9):
    return BurstyWorkload(
        WorkloadParams(
            num_workers=_SIZE, num_tasks=_SIZE, num_instances=_INSTANCES
        ),
        seed=seed,
    )


def _config(use_prediction, enable_metrics=False):
    return StreamConfig(
        round_interval=0.5,
        budget=30.0,
        use_prediction=use_prediction,
        enable_metrics=enable_metrics,
    )


def _run_process(use_prediction, sharding, seed=9):
    """Run the bursty stream on a process engine; returns
    (result, digest, engine-facts) with the engine closed."""
    engine, _ = prepared_sharded_engine(
        _workload(seed), MQAGreedy(), config=_config(use_prediction),
        sharding=sharding, seed=seed,
    )
    try:
        engine.advance_to(float(_INSTANCES))
        result = engine.result()
        digest = state_digest(engine)
        facts = {
            "degraded": engine.degraded,
            "respawns": engine._fused_builder.respawns_total,
        }
    finally:
        engine.close()
    return result, digest, facts


def _serial_reference(use_prediction, seed=9):
    return run_stream(
        _workload(seed), MQAGreedy(), config=_config(use_prediction), seed=seed
    )


def _supervised(num_shards, faults=None, **overrides):
    settings = dict(
        num_shards=num_shards,
        backend="process",
        round_deadline_s=0.5,
        max_respawns=5,
        respawn_backoff_s=0.01,
        respawn_backoff_max_s=0.05,
        faults=faults,
    )
    settings.update(overrides)
    return ShardingConfig(**settings)


class TestChaosDifferential:
    """Kill + hang mid-round: respawn + re-prime is bit-invisible."""

    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("use_prediction", [False, True])
    def test_kill_and_hang_run_is_bit_identical(self, num_shards, use_prediction):
        plan = FaultPlan.parse(
            f"""
            kill worker 0 at round 2
            hang worker {num_shards - 1} at round 5 for 2s
            """
        )
        clean_result, clean_digest, _ = _run_process(
            use_prediction, _supervised(num_shards)
        )
        injector = plan.injector()
        result, digest, facts = _run_process(
            use_prediction, _supervised(num_shards, faults=injector)
        )
        assert not injector.active, injector.pending  # every fault fired
        assert facts["respawns"] >= 2
        assert not facts["degraded"]
        assert_results_identical(clean_result, result)
        assert_results_identical(_serial_reference(use_prediction), result)
        for component, value in clean_digest.items():
            assert digest[component] == value, component

    def test_drop_and_garble_are_survived(self):
        plan = FaultPlan.parse(
            """
            drop message to worker 0 at round 2
            garble message to worker 1 at round 4
            """
        )
        clean_result, clean_digest, _ = _run_process(False, _supervised(2))
        injector = plan.injector()
        result, digest, facts = _run_process(
            False, _supervised(2, faults=injector)
        )
        assert not injector.active
        assert facts["respawns"] >= 2
        assert_results_identical(clean_result, result)
        assert digest == clean_digest

    def test_empty_plan_is_digest_equal_to_no_injector(self):
        _, clean_digest, clean_facts = _run_process(False, _supervised(2))
        _, armed_digest, armed_facts = _run_process(
            False, _supervised(2, faults=FaultPlan.parse("").injector())
        )
        assert armed_facts["respawns"] == clean_facts["respawns"] == 0
        assert armed_digest == clean_digest

    def test_blocking_recv_mode_still_streams(self):
        """``round_deadline_s=None`` restores the unsupervised read."""
        result, _, facts = _run_process(
            False, _supervised(2, round_deadline_s=None)
        )
        assert facts["respawns"] == 0
        assert_results_identical(_serial_reference(False), result)


class TestHungWorker:
    def test_sigstop_fires_deadline_and_respawns(self):
        engine, _ = prepared_sharded_engine(
            _workload(), MQAGreedy(),
            config=_config(False, enable_metrics=True),
            sharding=_supervised(2), seed=9,
        )
        try:
            engine.advance_to(1.0)
            runner = engine._fused_builder._runner
            victim = runner._procs[1]
            os.kill(victim.pid, signal.SIGSTOP)
            engine.advance_to(float(_INSTANCES))
            assert runner.respawns_total == 1
            assert runner._procs[1].pid != victim.pid
            assert not engine.degraded
            registry = engine.metrics_registry
            timeouts = sum(
                c.value
                for c in registry.find("shard_deadline_timeouts_total")
            )
            respawns = sum(
                c.value for c in registry.find("shard_respawns_total")
            )
            assert timeouts == 1.0
            assert respawns == 1.0
            result = engine.result()
            digest = state_digest(engine)
        finally:
            engine.close()

        clean_result, clean_digest, _ = _run_process(False, _supervised(2))
        assert_results_identical(clean_result, result)
        # the metrics hub differs (it recorded the fault); every
        # recoverable component must not
        assert digest == clean_digest


class TestCrashLoopDegradation:
    @pytest.mark.parametrize("use_prediction", [False, True])
    def test_respawn_budget_exhaustion_degrades_to_serial(self, use_prediction):
        # every (re)priming of worker 0 is killed: rounds 1-3 cover
        # the initial prime and both budgeted respawn re-primes
        plan = FaultPlan.parse(
            """
            kill worker 0 at round 1
            kill worker 0 at round 2
            kill worker 0 at round 3
            """
        )
        injector = plan.injector()
        result, _, facts = _run_process(
            use_prediction,
            _supervised(2, faults=injector, max_respawns=2),
        )
        assert facts["degraded"]
        assert facts["respawns"] == 2  # the budget, fully spent
        assert_results_identical(_serial_reference(use_prediction), result)

    def test_degraded_engine_keeps_streaming_rounds(self):
        plan = FaultPlan.parse(
            "kill worker 0 at round 1\nkill worker 0 at round 2\n"
        )
        engine, _ = prepared_sharded_engine(
            _workload(), MQAGreedy(), config=_config(False),
            sharding=_supervised(2, faults=plan.injector(), max_respawns=1),
            seed=9,
        )
        try:
            engine.advance_to(1.0)
            assert engine.degraded
            rounds_at_degrade = engine.rounds_run
            engine.advance_to(float(_INSTANCES))
            assert engine.rounds_run > rounds_at_degrade
            result = engine.result()
        finally:
            engine.close()
        assert_results_identical(_serial_reference(False), result)
