"""Tests for repro.geo.spatial_index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def brute_force(points: dict[int, Point], center: Point, radius: float) -> list[int]:
    return sorted(
        key
        for key, p in points.items()
        if np.hypot(p.x - center.x, p.y - center.y) <= radius
    )


class TestLifecycle:
    def test_insert_and_len(self):
        index = SpatialIndex(GridIndex(4))
        index.insert(1, Point(0.1, 0.1))
        index.insert(2, Point(0.9, 0.9))
        assert len(index) == 2
        assert 1 in index and 2 in index and 3 not in index

    def test_duplicate_insert_rejected(self):
        index = SpatialIndex(4)
        index.insert(1, Point(0.5, 0.5))
        with pytest.raises(KeyError):
            index.insert(1, Point(0.2, 0.2))

    def test_remove(self):
        index = SpatialIndex(4)
        index.insert(7, Point(0.3, 0.3))
        index.remove(7)
        assert len(index) == 0
        assert 7 not in index
        with pytest.raises(KeyError):
            index.remove(7)

    def test_reinsert_after_remove(self):
        index = SpatialIndex(4)
        index.insert(7, Point(0.3, 0.3))
        index.remove(7)
        index.insert(7, Point(0.8, 0.8))
        assert index.location(7) == Point(0.8, 0.8)

    def test_gamma_shortcut_constructor(self):
        assert SpatialIndex(8).grid.gamma == 8

    def test_out_of_square_point_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex(4).insert(0, Point(1.5, 0.5))


class TestQueries:
    def test_empty_index(self):
        index = SpatialIndex(4)
        assert index.query_radius(Point(0.5, 0.5), 1.0).size == 0
        assert index.candidates_in_radius(Point(0.5, 0.5), 1.0).size == 0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex(4).query_radius(Point(0.5, 0.5), -1.0)

    def test_exact_query_small(self):
        index = SpatialIndex(5)
        index.insert(1, Point(0.1, 0.1))
        index.insert(2, Point(0.15, 0.1))
        index.insert(3, Point(0.9, 0.9))
        found = index.query_radius(Point(0.1, 0.1), 0.1)
        assert found.tolist() == [1, 2]

    def test_candidates_superset_of_exact(self, rng):
        index = SpatialIndex(6)
        points = {}
        for key in range(60):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        center = Point(0.4, 0.6)
        exact = set(index.query_radius(center, 0.2).tolist())
        candidates = set(index.candidates_in_radius(center, 0.2).tolist())
        assert exact <= candidates

    @given(
        gamma=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=0, max_value=50),
        cx=coord,
        cy=coord,
        radius=st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_matches_brute_force(self, gamma, seed, count, cx, cy, radius):
        rng = np.random.default_rng(seed)
        index = SpatialIndex(GridIndex(gamma))
        points = {}
        for key in range(count):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        center = Point(cx, cy)
        assert index.query_radius(center, radius).tolist() == brute_force(
            points, center, radius
        )

    def test_query_reflects_removals(self, rng):
        index = SpatialIndex(5)
        points = {}
        for key in range(30):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        for key in range(0, 30, 3):
            index.remove(key)
            del points[key]
        center = Point(0.5, 0.5)
        assert index.query_radius(center, 0.4).tolist() == brute_force(
            points, center, 0.4
        )


class TestVersionAndJournal:
    """Mutation versioning and subscriber change logs."""

    def test_version_bumps_on_every_mutation(self):
        index = SpatialIndex(4)
        assert index.version == 0
        index.insert(1, Point(0.2, 0.2))
        index.insert(2, Point(0.8, 0.8))
        assert index.version == 2
        index.move(1, Point(0.25, 0.2))
        assert index.version == 3
        index.remove(2)
        assert index.version == 4

    def test_move_relocates_across_cells(self):
        index = SpatialIndex(4)
        index.insert(7, Point(0.1, 0.1))
        index.move(7, Point(0.9, 0.9))
        assert index.location(7) == Point(0.9, 0.9)
        assert index.query_radius(Point(0.9, 0.9), 0.05).tolist() == [7]
        assert index.query_radius(Point(0.1, 0.1), 0.05).tolist() == []

    def test_move_within_cell_updates_coordinates(self):
        index = SpatialIndex(2)
        index.insert(3, Point(0.1, 0.1))
        index.move(3, Point(0.2, 0.15))
        assert index.location(3) == Point(0.2, 0.15)

    def test_move_missing_key_raises(self):
        with pytest.raises(KeyError):
            SpatialIndex(4).move(1, Point(0.5, 0.5))

    def test_journal_records_ops_in_order(self):
        index = SpatialIndex(4)
        index.insert(1, Point(0.2, 0.2))  # before subscribe: unseen
        log = index.subscribe()
        index.insert(2, Point(0.6, 0.6))
        index.move(2, Point(0.7, 0.7))
        index.remove(1)
        ops, overflowed = log.drain()
        assert not overflowed
        assert ops == [
            ("insert", 2, 0.6, 0.6),
            ("move", 2, 0.7, 0.7),
            ("remove", 1, 0.2, 0.2),
        ]
        assert log.drain() == ([], False)

    def test_independent_subscribers(self):
        index = SpatialIndex(4)
        first = index.subscribe()
        index.insert(1, Point(0.1, 0.1))
        second = index.subscribe()
        index.insert(2, Point(0.2, 0.2))
        assert first.drain()[0] == [
            ("insert", 1, 0.1, 0.1),
            ("insert", 2, 0.2, 0.2),
        ]
        # The later subscriber only sees mutations after it attached.
        assert second.drain()[0] == [("insert", 2, 0.2, 0.2)]

    def test_journal_overflow_reports_and_resets(self):
        index = SpatialIndex(4)
        log = index.subscribe(capacity=3)
        for key in range(5):
            index.insert(key, Point(0.5, 0.5))
        ops, overflowed = log.drain()
        assert overflowed
        assert ops == []
        index.insert(99, Point(0.1, 0.1))
        ops, overflowed = log.drain()
        assert not overflowed
        assert ops == [("insert", 99, 0.1, 0.1)]

    def test_unsubscribe_stops_recording(self):
        index = SpatialIndex(4)
        log = index.subscribe()
        index.insert(1, Point(0.3, 0.3))
        index.unsubscribe(log)
        index.insert(2, Point(0.4, 0.4))
        ops, _ = log.drain()
        assert ops == [("insert", 1, 0.3, 0.3)]
