"""Tests for repro.geo.spatial_index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def brute_force(points: dict[int, Point], center: Point, radius: float) -> list[int]:
    return sorted(
        key
        for key, p in points.items()
        if np.hypot(p.x - center.x, p.y - center.y) <= radius
    )


class TestLifecycle:
    def test_insert_and_len(self):
        index = SpatialIndex(GridIndex(4))
        index.insert(1, Point(0.1, 0.1))
        index.insert(2, Point(0.9, 0.9))
        assert len(index) == 2
        assert 1 in index and 2 in index and 3 not in index

    def test_duplicate_insert_rejected(self):
        index = SpatialIndex(4)
        index.insert(1, Point(0.5, 0.5))
        with pytest.raises(KeyError):
            index.insert(1, Point(0.2, 0.2))

    def test_remove(self):
        index = SpatialIndex(4)
        index.insert(7, Point(0.3, 0.3))
        index.remove(7)
        assert len(index) == 0
        assert 7 not in index
        with pytest.raises(KeyError):
            index.remove(7)

    def test_reinsert_after_remove(self):
        index = SpatialIndex(4)
        index.insert(7, Point(0.3, 0.3))
        index.remove(7)
        index.insert(7, Point(0.8, 0.8))
        assert index.location(7) == Point(0.8, 0.8)

    def test_gamma_shortcut_constructor(self):
        assert SpatialIndex(8).grid.gamma == 8

    def test_out_of_square_point_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex(4).insert(0, Point(1.5, 0.5))


class TestQueries:
    def test_empty_index(self):
        index = SpatialIndex(4)
        assert index.query_radius(Point(0.5, 0.5), 1.0).size == 0
        assert index.candidates_in_radius(Point(0.5, 0.5), 1.0).size == 0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            SpatialIndex(4).query_radius(Point(0.5, 0.5), -1.0)

    def test_exact_query_small(self):
        index = SpatialIndex(5)
        index.insert(1, Point(0.1, 0.1))
        index.insert(2, Point(0.15, 0.1))
        index.insert(3, Point(0.9, 0.9))
        found = index.query_radius(Point(0.1, 0.1), 0.1)
        assert found.tolist() == [1, 2]

    def test_candidates_superset_of_exact(self, rng):
        index = SpatialIndex(6)
        points = {}
        for key in range(60):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        center = Point(0.4, 0.6)
        exact = set(index.query_radius(center, 0.2).tolist())
        candidates = set(index.candidates_in_radius(center, 0.2).tolist())
        assert exact <= candidates

    @given(
        gamma=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        count=st.integers(min_value=0, max_value=50),
        cx=coord,
        cy=coord,
        radius=st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_matches_brute_force(self, gamma, seed, count, cx, cy, radius):
        rng = np.random.default_rng(seed)
        index = SpatialIndex(GridIndex(gamma))
        points = {}
        for key in range(count):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        center = Point(cx, cy)
        assert index.query_radius(center, radius).tolist() == brute_force(
            points, center, radius
        )

    def test_query_reflects_removals(self, rng):
        index = SpatialIndex(5)
        points = {}
        for key in range(30):
            p = Point(float(rng.uniform()), float(rng.uniform()))
            points[key] = p
            index.insert(key, p)
        for key in range(0, 30, 3):
            index.remove(key)
            del points[key]
        center = Point(0.5, 0.5)
        assert index.query_radius(center, 0.4).tolist() == brute_force(
            points, center, 0.4
        )
