"""Tests for repro.matching.hungarian, cross-checked against scipy.

The vectorized solver is additionally checked *pair-for-pair* against
the retained scalar formulation ``_hungarian_reference`` — identical
assignments, not just equal totals, including tie-heavy integer
matrices where argmin ordering matters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import (
    HungarianWarmStart,
    _hungarian_reference,
    hungarian_max_weight,
    hungarian_max_weight_warm,
    hungarian_min_cost,
    max_weight_cost_matrix,
)


class TestMinCost:
    def test_identity_matrix(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assignment, total = hungarian_min_cost(cost)
        assert assignment == [(0, 0), (1, 1)]
        assert total == 0.0

    def test_classic_example(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        _, total = hungarian_min_cost(cost)
        assert total == pytest.approx(5.0)

    def test_rectangular_more_columns(self):
        cost = np.array([[5.0, 1.0, 9.0], [9.0, 5.0, 1.0]])
        assignment, total = hungarian_min_cost(cost)
        assert total == pytest.approx(2.0)
        assert assignment == [(0, 1), (1, 2)]

    def test_rectangular_more_rows_transposes(self):
        cost = np.array([[5.0], [1.0]])
        assignment, total = hungarian_min_cost(cost)
        assert assignment == [(1, 0)]
        assert total == pytest.approx(1.0)

    def test_empty(self):
        assignment, total = hungarian_min_cost(np.zeros((0, 0)))
        assert assignment == []
        assert total == 0.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min_cost(np.zeros(3))

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min_cost(np.array([[np.inf, 1.0], [1.0, 0.0]]))

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, rows, cols, seed):
        scipy_optimize = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0.0, 10.0, size=(rows, cols))
        _, ours = hungarian_min_cost(cost)
        if rows <= cols:
            r, c = scipy_optimize.linear_sum_assignment(cost)
        else:
            c, r = scipy_optimize.linear_sum_assignment(cost.T)
        theirs = float(cost[r, c].sum())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_each_row_and_column_used_once(self):
        rng = np.random.default_rng(3)
        cost = rng.uniform(0, 1, size=(6, 9))
        assignment, _ = hungarian_min_cost(cost)
        rows = [r for r, _ in assignment]
        cols = [c for _, c in assignment]
        assert sorted(rows) == list(range(6))
        assert len(set(cols)) == 6


class TestMaxWeight:
    def test_simple_maximization(self):
        weights = np.array([[1.0, 5.0], [5.0, 1.0]])
        assignment, total = hungarian_max_weight(weights)
        assert total == pytest.approx(10.0)
        assert assignment == [(0, 1), (1, 0)]

    def test_unmatched_rows_allowed(self):
        weights = np.array([[-2.0, -3.0], [4.0, 1.0]])
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [(1, 0)]
        assert total == pytest.approx(4.0)

    def test_forbidden_cells_never_selected(self):
        weights = np.array([[-np.inf, 3.0], [2.0, -np.inf]])
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [(0, 1), (1, 0)]
        assert total == pytest.approx(5.0)

    def test_all_forbidden_yields_empty(self):
        weights = np.full((2, 2), -np.inf)
        assignment, total = hungarian_max_weight(weights)
        assert assignment == []
        assert total == 0.0

    def test_empty_matrix(self):
        assignment, total = hungarian_max_weight(np.zeros((0, 3)))
        assert assignment == []

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_beats_or_matches_greedy(self, rows, cols, seed):
        from repro.matching.bipartite import greedy_max_weight_matching

        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 10.0, size=(rows, cols))
        r, c = np.nonzero(np.ones_like(weights, dtype=bool))
        _, greedy_total = greedy_max_weight_matching(r, c, weights[r, c])
        _, optimal_total = hungarian_max_weight(weights)
        assert optimal_total >= greedy_total - 1e-9

    def test_precomputed_cost_matches_default(self):
        rng = np.random.default_rng(11)
        weights = rng.uniform(-2.0, 5.0, size=(6, 8))
        weights[rng.uniform(size=weights.shape) < 0.25] = -np.inf
        precomputed = max_weight_cost_matrix(weights)
        default = hungarian_max_weight(weights)
        via_cost = hungarian_max_weight(weights, cost=precomputed)
        assert via_cost == default

    def test_precomputed_cost_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hungarian_max_weight(np.ones((2, 3)), cost=np.ones((3, 2)))


class TestDifferential:
    """Vectorized solver vs the scalar reference, pair-for-pair."""

    @staticmethod
    def _assert_identical(cost: np.ndarray) -> None:
        assignment, total = hungarian_min_cost(cost)
        ref_assignment, ref_total = _hungarian_reference(cost)
        assert assignment == ref_assignment
        assert total == pytest.approx(ref_total, abs=1e-9)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_rectangular(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        self._assert_identical(rng.uniform(-10.0, 10.0, size=(rows, cols)))

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_tie_heavy_integer_costs(self, rows, cols, seed):
        """Small-integer matrices force ties; argmin order must agree."""
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 3, size=(rows, cols)).astype(float)
        self._assert_identical(cost)

    def test_all_negative_weights_partial_matching(self):
        """All-negative weights: every row stays unmatched (dummy wins)."""
        weights = np.array([[-1.0, -2.0], [-3.0, -0.5]])
        assignment, total = hungarian_max_weight(weights, allow_unmatched=True)
        assert assignment == []
        assert total == 0.0
        # The padded min-cost problem both solvers see must also agree.
        padded = np.hstack(
            [max_weight_cost_matrix(weights), np.zeros((2, 2))]
        )
        self._assert_identical(padded)

    def test_empty_and_degenerate_edges(self):
        self._assert_identical(np.zeros((0, 0)))
        self._assert_identical(np.zeros((0, 4)))
        self._assert_identical(np.array([[3.5]]))
        self._assert_identical(np.array([[2.0, 1.0]]))
        self._assert_identical(np.array([[2.0], [1.0]]))

    def test_constant_matrix_all_ties(self):
        self._assert_identical(np.ones((5, 7)))

    def test_transposed_problems(self):
        rng = np.random.default_rng(23)
        cost = rng.uniform(0.0, 1.0, size=(9, 4))
        self._assert_identical(cost)
        self._assert_identical(cost.T)


class TestWarmStart:
    """Persisted-dual warm starts: bit-identical, by construction."""

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_warm_matches_cold_across_rounds(self, seed):
        """Differential over chains of solves sharing one dual store.

        Entities persist, arrive and depart between rounds, so carried
        column potentials meet matrices they were not solved on — the
        regime where an accepted-but-suboptimal warm run would show up
        as a divergence from the cold solve.
        """
        rng = np.random.default_rng(seed)
        warm = HungarianWarmStart()
        ids = list(range(40))
        for _ in range(3):
            n = int(rng.integers(1, 10))
            m = int(rng.integers(1, 10))
            row_ids = list(rng.choice(ids, n, replace=False))
            col_ids = list(rng.choice(ids, m, replace=False))
            weights = rng.uniform(-1.0, 2.0, size=(n, m))
            weights[rng.uniform(size=(n, m)) < 0.2] = -np.inf
            pairs, total, _ = hungarian_max_weight_warm(
                weights, row_ids, col_ids, warm
            )
            cold_pairs, cold_total = hungarian_max_weight(
                weights, allow_unmatched=True
            )
            assert pairs == cold_pairs
            assert total == pytest.approx(cold_total, abs=1e-12)
        assert warm.solves == 3

    def test_stale_negative_dual_on_unmatched_column_falls_back(self):
        """A carried negative potential on a column that ends the next
        solve unmatched leaves the duals short of optimality even
        though they are feasible and the matched edges are tight; the
        warm run must not be certified from them.  (Regression: the
        certificate once inspected only tightness and accepted a
        suboptimal matching here.)"""
        warm = HungarianWarmStart()
        # Round 1: both rows compete for column 2, so the alternating
        # search pushes its potential negative.
        first = np.array([[1.10, 1.39, 3.78], [1.47, 2.48, 4.91]])
        pairs, _, _ = hungarian_max_weight_warm(first, [0, 1], [0, 1, 2], warm)
        assert pairs == hungarian_max_weight(first, allow_unmatched=True)[0]
        assert any(dual < 0.0 for dual in warm.column_duals.values())
        # Round 2: the surviving row set no longer wants column 2, so
        # it ends unmatched, still carrying the negative potential.
        second = np.array([[4.81, 3.65, 2.75]])
        pairs, total, _ = hungarian_max_weight_warm(second, [7], [0, 1, 2], warm)
        cold_pairs, cold_total = hungarian_max_weight(second, allow_unmatched=True)
        assert warm.warm_attempts == 1
        assert warm.warm_fallbacks == 1
        assert pairs == cold_pairs
        assert total == pytest.approx(cold_total, abs=1e-12)

    def test_degenerate_matrix_skips_warm_attempt(self):
        warm = HungarianWarmStart()
        tied = np.array([[1.0, 1.0], [2.0, 3.0]])
        hungarian_max_weight_warm(tied, [0, 1], [2, 3], warm)
        hungarian_max_weight_warm(tied, [0, 1], [2, 3], warm)
        assert warm.degenerate_skips == 1  # first solve has nothing seeded
        assert warm.warm_attempts == 0

    def test_duals_persist_and_departures_drop_out(self):
        warm = HungarianWarmStart()
        weights = np.array([[3.0, 1.0], [0.5, 2.0]])
        hungarian_max_weight_warm(weights, [10, 11], [20, 21], warm)
        assert set(warm.column_duals) == {20, 21}
        assert set(warm.row_duals) == {10, 11}
        hungarian_max_weight_warm(np.array([[1.25]]), [10], [21], warm)
        assert set(warm.column_duals) == {21}
        assert set(warm.row_duals) == {10}
