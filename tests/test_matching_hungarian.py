"""Tests for repro.matching.hungarian, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import hungarian_max_weight, hungarian_min_cost


class TestMinCost:
    def test_identity_matrix(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assignment, total = hungarian_min_cost(cost)
        assert assignment == [(0, 0), (1, 1)]
        assert total == 0.0

    def test_classic_example(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        _, total = hungarian_min_cost(cost)
        assert total == pytest.approx(5.0)

    def test_rectangular_more_columns(self):
        cost = np.array([[5.0, 1.0, 9.0], [9.0, 5.0, 1.0]])
        assignment, total = hungarian_min_cost(cost)
        assert total == pytest.approx(2.0)
        assert assignment == [(0, 1), (1, 2)]

    def test_rectangular_more_rows_transposes(self):
        cost = np.array([[5.0], [1.0]])
        assignment, total = hungarian_min_cost(cost)
        assert assignment == [(1, 0)]
        assert total == pytest.approx(1.0)

    def test_empty(self):
        assignment, total = hungarian_min_cost(np.zeros((0, 0)))
        assert assignment == []
        assert total == 0.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min_cost(np.zeros(3))

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min_cost(np.array([[np.inf, 1.0], [1.0, 0.0]]))

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, rows, cols, seed):
        scipy_optimize = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0.0, 10.0, size=(rows, cols))
        _, ours = hungarian_min_cost(cost)
        if rows <= cols:
            r, c = scipy_optimize.linear_sum_assignment(cost)
        else:
            c, r = scipy_optimize.linear_sum_assignment(cost.T)
        theirs = float(cost[r, c].sum())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_each_row_and_column_used_once(self):
        rng = np.random.default_rng(3)
        cost = rng.uniform(0, 1, size=(6, 9))
        assignment, _ = hungarian_min_cost(cost)
        rows = [r for r, _ in assignment]
        cols = [c for _, c in assignment]
        assert sorted(rows) == list(range(6))
        assert len(set(cols)) == 6


class TestMaxWeight:
    def test_simple_maximization(self):
        weights = np.array([[1.0, 5.0], [5.0, 1.0]])
        assignment, total = hungarian_max_weight(weights)
        assert total == pytest.approx(10.0)
        assert assignment == [(0, 1), (1, 0)]

    def test_unmatched_rows_allowed(self):
        weights = np.array([[-2.0, -3.0], [4.0, 1.0]])
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [(1, 0)]
        assert total == pytest.approx(4.0)

    def test_forbidden_cells_never_selected(self):
        weights = np.array([[-np.inf, 3.0], [2.0, -np.inf]])
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [(0, 1), (1, 0)]
        assert total == pytest.approx(5.0)

    def test_all_forbidden_yields_empty(self):
        weights = np.full((2, 2), -np.inf)
        assignment, total = hungarian_max_weight(weights)
        assert assignment == []
        assert total == 0.0

    def test_empty_matrix(self):
        assignment, total = hungarian_max_weight(np.zeros((0, 3)))
        assert assignment == []

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_beats_or_matches_greedy(self, rows, cols, seed):
        from repro.matching.bipartite import greedy_max_weight_matching

        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 10.0, size=(rows, cols))
        r, c = np.nonzero(np.ones_like(weights, dtype=bool))
        _, greedy_total = greedy_max_weight_matching(r, c, weights[r, c])
        _, optimal_total = hungarian_max_weight(weights)
        assert optimal_total >= greedy_total - 1e-9
