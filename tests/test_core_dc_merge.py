"""Unit tests for the D&C merge internals (Fig. 8).

These exercise ``_merge`` and ``_find_replacement`` directly on crafted
pools, independent of the recursive driver.
"""

import numpy as np

from repro.core.divide_conquer import MQADivideConquer
from repro.model.pairs import PairPool


def pool_of(entries):
    """entries: list of (worker, task, quality, cost)."""
    n = len(entries)
    workers = np.array([e[0] for e in entries], dtype=np.int64)
    tasks = np.array([e[1] for e in entries], dtype=np.int64)
    quality = np.array([e[2] for e in entries], dtype=float)
    cost = np.array([e[3] for e in entries], dtype=float)
    zeros = np.zeros(n)
    return PairPool(
        worker_idx=workers,
        task_idx=tasks,
        cost_mean=cost,
        cost_var=zeros,
        cost_lb=cost,
        cost_ub=cost,
        quality_mean=quality,
        quality_var=zeros,
        quality_lb=quality,
        quality_ub=quality,
        existence=np.ones(n),
        is_current=np.ones(n, dtype=bool),
    )


class TestMerge:
    def test_disjoint_workers_union(self):
        pool = pool_of([(0, 0, 2.0, 1.0), (1, 1, 1.5, 1.0)])
        dc = MQADivideConquer()
        merged = dc._merge(pool, np.arange(2), [0], [1])
        assert sorted(merged) == [0, 1]

    def test_conflicting_worker_keeps_better_pair(self):
        # Worker 0 serves task 0 (q=2.0) in merged, task 1 (q=1.0)
        # incoming; no replacement available for the loser.
        pool = pool_of([(0, 0, 2.0, 1.0), (0, 1, 1.0, 1.0)])
        dc = MQADivideConquer()
        merged = dc._merge(pool, np.arange(2), [0], [1])
        assert merged == [0]

    def test_conflict_resolution_finds_replacement(self):
        # Worker 0 best for both tasks; worker 1 can replace on task 1.
        pool = pool_of(
            [
                (0, 0, 2.0, 1.0),   # row 0: merged selection
                (0, 1, 1.5, 1.0),   # row 1: incoming selection (loses)
                (1, 1, 1.2, 1.0),   # row 2: replacement for task 1
            ]
        )
        dc = MQADivideConquer()
        merged = dc._merge(pool, np.arange(3), [0], [1])
        assert sorted(merged) == [0, 2]

    def test_incoming_pair_can_displace_incumbent(self):
        # Incoming pair is better; incumbent's task gets a replacement.
        pool = pool_of(
            [
                (0, 0, 1.0, 1.0),   # row 0: merged (weaker)
                (0, 1, 2.0, 1.0),   # row 1: incoming (stronger)
                (2, 0, 1.4, 1.0),   # row 2: replacement for task 0
            ]
        )
        dc = MQADivideConquer()
        merged = dc._merge(pool, np.arange(3), [0], [1])
        assert sorted(merged) == [1, 2]

    def test_replacement_never_reuses_assigned_worker(self):
        pool = pool_of(
            [
                (0, 0, 2.0, 1.0),
                (0, 1, 1.5, 1.0),
                (0, 1, 1.4, 1.0),  # same conflicting worker, not usable
            ]
        )
        dc = MQADivideConquer()
        merged = dc._merge(pool, np.arange(3), [0], [1])
        assert merged == [0]

    def test_merge_result_is_valid_matching(self):
        rng = np.random.default_rng(5)
        entries = [
            (int(rng.integers(0, 6)), t, float(rng.uniform(1, 2)), 1.0)
            for t in range(8)
            for _ in range(3)
        ]
        pool = pool_of(entries)
        dc = MQADivideConquer()
        # Feed tasks one at a time, as the recursion would.
        merged: list[int] = []
        rows = np.arange(len(pool))
        for task in range(8):
            of_task = rows[pool.task_idx == task]
            leaf = dc._solve_leaf(pool, of_task)
            merged = dc._merge(pool, rows, merged, leaf)
        workers = [int(pool.worker_idx[r]) for r in merged]
        tasks = [int(pool.task_idx[r]) for r in merged]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)


class TestFindReplacement:
    def test_returns_best_free_worker(self):
        pool = pool_of(
            [(0, 0, 2.0, 1.0), (1, 0, 1.8, 1.0), (2, 0, 1.2, 1.0)]
        )
        dc = MQADivideConquer()
        replacement = dc._find_replacement(
            pool, np.arange(3), task=0, worker_of={0: 0}
        )
        assert replacement == 1

    def test_none_when_all_workers_used(self):
        pool = pool_of([(0, 0, 2.0, 1.0), (1, 0, 1.8, 1.0)])
        dc = MQADivideConquer()
        replacement = dc._find_replacement(
            pool, np.arange(2), task=0, worker_of={0: 0, 1: 1}
        )
        assert replacement is None

    def test_none_for_unknown_task(self):
        pool = pool_of([(0, 0, 2.0, 1.0)])
        dc = MQADivideConquer()
        assert dc._find_replacement(pool, np.arange(1), task=5, worker_of={}) is None
