"""Tests for repro.geo.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point, euclidean_distance, travel_time

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(0.3, 0.7)
        assert p.distance_to(p) == 0.0

    def test_known_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(0.1, 0.2).as_tuple() == (0.1, 0.2)

    def test_iteration_unpacks_coordinates(self):
        x, y = Point(0.4, 0.6)
        assert (x, y) == (0.4, 0.6)

    def test_indexing(self):
        p = Point(0.25, 0.75)
        assert p[0] == 0.25
        assert p[1] == 0.75

    def test_indexing_out_of_range(self):
        with pytest.raises(IndexError):
            Point(0.0, 0.0)[2]

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(0.1, 0.2) == Point(0.1, 0.2)
        assert hash(Point(0.1, 0.2)) == hash(Point(0.1, 0.2))

    @given(coord, coord, coord, coord)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    @given(coord, coord, coord, coord, coord, coord)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12
        )


class TestTravelTime:
    def test_travel_time_scales_inversely_with_velocity(self):
        a, b = Point(0.0, 0.0), Point(1.0, 0.0)
        assert travel_time(a, b, 0.5) == pytest.approx(2.0)
        assert travel_time(a, b, 0.25) == pytest.approx(4.0)

    def test_zero_distance_takes_no_time(self):
        p = Point(0.5, 0.5)
        assert travel_time(p, p, 0.1) == 0.0

    def test_zero_velocity_rejected(self):
        with pytest.raises(ValueError):
            travel_time(Point(0, 0), Point(1, 1), 0.0)

    def test_negative_velocity_rejected(self):
        with pytest.raises(ValueError):
            travel_time(Point(0, 0), Point(1, 1), -1.0)

    def test_travel_time_matches_distance_over_velocity(self):
        a, b = Point(0.2, 0.2), Point(0.5, 0.6)
        expected = math.hypot(0.3, 0.4) / 0.3
        assert travel_time(a, b, 0.3) == pytest.approx(expected)
