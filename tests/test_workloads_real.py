"""Tests for repro.workloads.real."""

import pytest

from repro.workloads.base import WorkloadParams
from repro.workloads.checkins import CheckinRecord
from repro.workloads.real import RealWorkload, map_to_unit_square


def record(user, time, lat, lon):
    return CheckinRecord(user_id=user, time=time, latitude=lat, longitude=lon)


class TestMapToUnitSquare:
    def test_corners(self):
        records = [record(0, 0, 10.0, 20.0), record(1, 1, 11.0, 21.0)]
        points = map_to_unit_square(records)
        assert points[0].x == 0.0 and points[0].y == 0.0
        assert points[1].x == 1.0 and points[1].y == 1.0

    def test_explicit_bounds_clip(self):
        records = [record(0, 0, 5.0, 5.0)]
        points = map_to_unit_square(records, bounds=(10.0, 11.0, 20.0, 21.0))
        assert points[0].x == 0.0 and points[0].y == 0.0

    def test_empty(self):
        assert map_to_unit_square([]) == []

    def test_degenerate_extent(self):
        records = [record(0, 0, 10.0, 20.0), record(1, 1, 10.0, 20.0)]
        points = map_to_unit_square(records)
        assert len(points) == 2  # no division by zero


class TestRealWorkload:
    def make(self, num_instances=4):
        worker_records = [record(i, float(i), 10.0 + i * 0.1, 20.0) for i in range(8)]
        task_records = [record(100 + i, float(i) + 0.5, 10.0 + i * 0.1, 20.5) for i in range(6)]
        params = WorkloadParams(num_instances=num_instances)
        return RealWorkload(worker_records, task_records, params, seed=1)

    def test_entity_counts_preserved(self):
        workload = self.make()
        assert workload.total_workers() == 8
        assert workload.total_tasks() == 6

    def test_time_ordering_respected(self):
        """Earlier check-ins land in earlier instances."""
        workload = self.make(num_instances=4)
        first_workers, _ = workload.arrivals(0)
        last_workers, _ = workload.arrivals(3)
        assert first_workers and last_workers
        assert max(w.arrival for w in first_workers) <= min(
            w.arrival for w in last_workers
        )

    def test_velocity_and_deadline_follow_params(self):
        workload = self.make()
        for p in range(4):
            workers, tasks = workload.arrivals(p)
            for worker in workers:
                assert 0.2 <= worker.velocity <= 0.3
            for task in tasks:
                assert p + 1.0 <= task.deadline <= p + 2.0 + 1e-9

    def test_locations_in_unit_square(self):
        workload = self.make()
        for p in range(4):
            workers, tasks = workload.arrivals(p)
            for entity in workers + tasks:
                assert 0.0 <= entity.location.x <= 1.0
                assert 0.0 <= entity.location.y <= 1.0

    def test_unique_ids(self):
        workload = self.make()
        ids = []
        for p in range(4):
            workers, tasks = workload.arrivals(p)
            ids.extend(e.id for e in workers + tasks)
        assert len(ids) == len(set(ids))

    def test_out_of_range_instance(self):
        with pytest.raises(IndexError):
            self.make(num_instances=2).arrivals(2)

    def test_empty_streams(self):
        workload = RealWorkload([], [], WorkloadParams(num_instances=3), seed=0)
        assert workload.total_workers() == 0
        assert workload.arrivals(0) == ([], [])
