"""Tests for repro.workloads.quality (hashed quality scores)."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.workloads.quality import HashQualityModel


def entities(n_workers, n_tasks):
    workers = [Worker(id=i, location=Point(0.5, 0.5), velocity=0.2) for i in range(n_workers)]
    tasks = [Task(id=1000 + j, location=Point(0.5, 0.5), deadline=2.0) for j in range(n_tasks)]
    return workers, tasks


class TestHashQualityModel:
    def test_scores_within_range(self):
        model = HashQualityModel((1.0, 2.0), seed=0)
        workers, tasks = entities(40, 40)
        matrix = model.quality_matrix(workers, tasks)
        assert matrix.min() >= 1.0
        assert matrix.max() <= 2.0

    def test_deterministic_per_pair(self):
        model = HashQualityModel((1.0, 2.0), seed=3)
        workers, tasks = entities(5, 5)
        first = model.quality_matrix(workers, tasks)
        second = model.quality_matrix(workers, tasks)
        np.testing.assert_array_equal(first, second)

    def test_submatrix_consistency(self):
        """Scores do not depend on which other entities are present."""
        model = HashQualityModel((1.0, 2.0), seed=3)
        workers, tasks = entities(6, 6)
        full = model.quality_matrix(workers, tasks)
        sub = model.quality_matrix(workers[2:4], tasks[1:3])
        np.testing.assert_array_equal(sub, full[2:4, 1:3])

    def test_different_seeds_differ(self):
        workers, tasks = entities(10, 10)
        a = HashQualityModel((1.0, 2.0), seed=1).quality_matrix(workers, tasks)
        b = HashQualityModel((1.0, 2.0), seed=2).quality_matrix(workers, tasks)
        assert not np.array_equal(a, b)

    def test_distribution_is_roughly_gaussian_in_range(self):
        model = HashQualityModel((0.0, 4.0), seed=0)
        workers, tasks = entities(200, 200)
        matrix = model.quality_matrix(workers, tasks)
        # Center-heavy: mean near midpoint, std near (hi-lo)/4.
        assert float(matrix.mean()) == pytest.approx(2.0, abs=0.05)
        assert float(matrix.std()) == pytest.approx(1.0, abs=0.1)

    def test_empty_inputs(self):
        model = HashQualityModel((1.0, 2.0))
        assert model.quality_matrix([], []).shape == (0, 0)

    def test_prior_matches_parameters(self):
        model = HashQualityModel((1.0, 3.0))
        mean, variance, low, high = model.prior()
        assert mean == 2.0
        assert variance == pytest.approx(0.25)
        assert (low, high) == (1.0, 3.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            HashQualityModel((2.0, 1.0))

    def test_quality_by_ids_handles_negative_ids(self):
        model = HashQualityModel((1.0, 2.0))
        matrix = model.quality_by_ids(np.array([-5]), np.array([3]))
        assert 1.0 <= matrix[0, 0] <= 2.0
