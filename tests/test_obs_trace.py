"""Unit tests of the trace recorder and Chrome trace validation."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.instrument import StreamObserver
from repro.obs.trace import TraceRecorder, validate_chrome_trace


def _simple_trace() -> TraceRecorder:
    t = TraceRecorder()
    t.add_span("round", 10.0, 0.010, cat="round", args={"round": 0})
    t.add_span("build", 10.001, 0.004)
    t.add_instant("delta.prime", ts=10.005, cat="cache")
    t.add_span("round", 10.012, 0.008, cat="round", args={"round": 1})
    t.add_span("build", 10.013, 0.002)
    return t


class TestRecorder:
    def test_chrome_format_shape(self):
        trace = _simple_trace().to_chrome_trace()
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"
        first = trace["traceEvents"][0]
        assert first["ph"] == "X"
        assert first["ts"] == 0.0  # rebased to the earliest event
        assert first["dur"] == pytest.approx(10_000.0)  # 10 ms in µs
        instant = trace["traceEvents"][2]
        assert instant["ph"] == "i" and instant["s"] == "t"

    def test_rebase_handles_out_of_order_recording(self):
        # Tile spans are recorded before their enclosing round span;
        # the export must rebase against the earliest ts, not the
        # first-recorded one.
        t = TraceRecorder()
        t.add_span("tile0.build", 10.002, 0.003, cat="shard", tid=1)
        t.add_span("round", 10.0, 0.010, cat="round")
        trace = t.to_chrome_trace()
        assert all(e["ts"] >= 0 for e in trace["traceEvents"])
        assert validate_chrome_trace(trace) == []

    def test_disabled_recorder_records_nothing(self):
        t = TraceRecorder(enabled=False)
        t.add_span("round", 0.0, 1.0, cat="round")
        t.add_instant("x")
        assert len(t) == 0
        assert t.to_chrome_trace()["traceEvents"] == []

    def test_max_events_truncates_and_flags(self):
        t = TraceRecorder(max_events=2)
        for i in range(5):
            t.add_span("round", float(i), 0.5, cat="round")
        assert len(t) == 2
        assert t.truncated
        assert t.to_chrome_trace()["otherData"]["truncated"] is True
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)

    def test_negative_duration_clamped(self):
        t = TraceRecorder()
        t.add_span("round", 1.0, -0.5, cat="round")
        assert t.to_chrome_trace()["traceEvents"][0]["dur"] == 0.0

    def test_write_roundtrip(self, tmp_path):
        path = _simple_trace().write(tmp_path / "sub" / "trace.json")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []


class TestValidation:
    def test_valid_trace_passes(self):
        assert validate_chrome_trace(_simple_trace().to_chrome_trace()) == []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["trace has no 'traceEvents' list"]

    def test_missing_keys_reported(self):
        errors = validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        assert any("missing 'ph'" in e for e in errors)

    def test_negative_ts_rejected(self):
        trace = {
            "traceEvents": [
                {"name": "r", "cat": "round", "ph": "X", "ts": -1.0, "dur": 5.0,
                 "pid": 0, "tid": 0}
            ]
        }
        assert any("non-negative" in e for e in validate_chrome_trace(trace))

    def test_phase_outside_round_rejected(self):
        t = TraceRecorder()
        t.add_span("round", 10.0, 0.010, cat="round")
        t.add_span("build", 10.02, 0.004)  # starts after the round ended
        errors = validate_chrome_trace(t.to_chrome_trace())
        assert any("does not nest" in e for e in errors)

    def test_overlapping_rounds_rejected(self):
        t = TraceRecorder()
        t.add_span("round", 10.0, 0.010, cat="round")
        t.add_span("round", 10.005, 0.010, cat="round")
        errors = validate_chrome_trace(t.to_chrome_trace())
        assert any("overlap" in e for e in errors)


class TestObserverSpans:
    def test_end_round_emits_nested_spans_and_instants(self):
        obs = StreamObserver(MetricsRegistry(), TraceRecorder())

        class Delta:
            primes = 1
            incremental_rounds = 0
            rejoined_for_motion = 0

        class Build:
            price_seconds = 0.003

        timer = obs.begin_round(0, 0.0)
        timer.phase_start("build")
        timer.phase_end("build")
        timer.phase_start("assign")
        assign = timer.phase_end("assign")
        timer.record("select", assign, start=timer.start_of("assign"))
        timer.record("finalize", 0.0)
        timer.finish()
        obs.end_round(
            timer,
            events_processed=5,
            num_workers=3,
            num_tasks=4,
            num_pairs=12,
            assigned=2,
            build_stats=Build(),
            delta_stats=Delta(),
        )
        trace = obs.trace.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"round", "build", "price", "delta.prime"} <= names
        round_event = next(
            e for e in trace["traceEvents"] if e["cat"] == "round"
        )
        assert round_event["args"]["pairs"] == 12
        # Registry side of the same close-out.
        assert obs.metrics.counter("stream_rounds_total").value == 1.0
        assert obs.metrics.counter("delta_primes_total").value == 1.0
        assert obs.metrics.histogram("stream_price_seconds").count == 1

    def test_tile_pool_events_land_on_shard_tracks(self):
        """Per-tile delta lifecycle events (repair / prime /
        border_rejoin) book tile-labelled counters and instants with
        the same tid convention as the tile build spans."""
        obs = StreamObserver(MetricsRegistry(), TraceRecorder())
        timer = obs.begin_round(0, 0.0)
        # Zero durations keep the end-anchored tile spans inside this
        # (instant-length) synthetic round.
        obs.record_tile_phases([(0, 0.0), (1, 0.0), (-1, 0.0)])
        obs.record_tile_pool_events(
            [(0, "repair"), (1, "prime"), (1, "border_rejoin"), (1, "repair")]
        )
        timer.finish()
        obs.end_round(timer)

        metrics = obs.metrics
        assert (
            metrics.counter("tile_delta_repairs_total", labels={"tile": "0"}).value
            == 1.0
        )
        assert (
            metrics.counter("tile_delta_repairs_total", labels={"tile": "1"}).value
            == 1.0
        )
        assert (
            metrics.counter("tile_delta_primes_total", labels={"tile": "1"}).value
            == 1.0
        )
        assert (
            metrics.counter(
                "tile_border_rejoins_total", labels={"tile": "1"}
            ).value
            == 1.0
        )

        trace = obs.trace.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        instants = {
            (e["name"], e["tid"])
            for e in trace["traceEvents"]
            if e["ph"] == "i" and e["cat"] == "shard"
        }
        assert {
            ("tile0.repair", 1),
            ("tile1.prime", 2),
            ("tile1.border_rejoin", 2),
            ("tile1.repair", 2),
        } <= instants
        # Instants share the tile's track with its build span.
        build_tids = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["name"] == "tile1.build"
        }
        assert build_tids == {2}

    def test_tile_pool_events_disabled_and_unknown_kind(self):
        obs = StreamObserver(MetricsRegistry(enabled=False), TraceRecorder(False))
        obs.record_tile_pool_events([(0, "repair")])  # no-op when disabled
        obs2 = StreamObserver(MetricsRegistry(), TraceRecorder())
        obs2.record_tile_pool_events([(0, "not_a_kind")])
        assert not obs2.trace.to_chrome_trace()["traceEvents"]

    def test_sharded_stream_emits_pool_event_instants(self):
        """End to end: a traced sharded run produces per-tile prime
        instants (round 1 primes every tile) on the shard tracks."""
        from repro.core import MQAGreedy
        from repro.streaming import (
            ShardingConfig,
            StreamConfig,
            prepared_sharded_engine,
        )
        from repro.workloads import BurstyWorkload, WorkloadParams

        workload = BurstyWorkload(
            WorkloadParams(num_workers=50, num_tasks=50, num_instances=2),
            seed=11,
        )
        engine, _ = prepared_sharded_engine(
            workload,
            MQAGreedy(),
            config=StreamConfig(
                round_interval=0.5, budget=20.0, enable_tracing=True
            ),
            sharding=ShardingConfig(num_shards=2, backend="serial"),
            seed=11,
        )
        with engine:
            engine.advance_to(2.0)
            trace = engine.observer.trace.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "i" and e["cat"] == "shard"
        }
        assert {"tile0.prime", "tile1.prime"} <= names

    def test_stats_diffed_not_recounted(self):
        obs = StreamObserver(MetricsRegistry(), TraceRecorder(enabled=False))

        class Delta:
            primes = 1
            incremental_rounds = 0
            rejoined_for_motion = 0

        d = Delta()
        for i in range(3):
            timer = obs.begin_round(i, float(i))
            timer.finish()
            d.incremental_rounds = i  # cumulative object, diffed per round
            obs.end_round(timer, delta_stats=d)
        assert obs.metrics.counter("delta_primes_total").value == 1.0
        assert obs.metrics.counter("delta_incremental_rounds_total").value == 2.0
