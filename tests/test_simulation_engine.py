"""Tests for repro.simulation.engine (the MQA framework loop)."""

import pytest

from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import WorkloadParams
from repro.workloads.synthetic import SyntheticWorkload


def small_workload(seed=0, workers=60, tasks=60, instances=5):
    return SyntheticWorkload(
        WorkloadParams(num_workers=workers, num_tasks=tasks, num_instances=instances),
        seed=seed,
    )


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.use_prediction
        assert config.window == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": -1.0},
            {"unit_cost": -1.0},
            {"grid_gamma": 0},
            {"window": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)


class TestEngineRun:
    def test_runs_all_instances(self):
        workload = small_workload()
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=20.0))
        result = engine.run()
        assert len(result.instances) == 5
        assert [m.instance for m in result.instances] == list(range(5))

    def test_budget_respected_per_instance(self):
        workload = small_workload()
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=5.0))
        result = engine.run()
        for metrics in result.instances:
            assert metrics.cost <= 5.0 + 1e-6

    def test_quality_accumulates(self):
        workload = small_workload()
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=20.0))
        result = engine.run()
        assert result.total_quality == pytest.approx(
            sum(m.quality for m in result.instances)
        )
        assert result.total_quality > 0.0

    def test_reproducible(self):
        workload = small_workload()
        config = EngineConfig(budget=10.0)
        a = SimulationEngine(workload, MQAGreedy(), config, seed=3).run()
        b = SimulationEngine(workload, MQAGreedy(), config, seed=3).run()
        assert a.total_quality == b.total_quality
        assert a.total_assigned == b.total_assigned

    def test_without_prediction_has_no_predicted_entities(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=10.0, use_prediction=False)
        )
        result = engine.run()
        for metrics in result.instances:
            assert metrics.num_predicted_workers == 0
            assert metrics.num_predicted_tasks == 0

    def test_with_prediction_has_predicted_entities(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, MQAGreedy(), EngineConfig(budget=10.0, use_prediction=True)
        )
        result = engine.run()
        # All but the final instance predict the next one.
        assert any(m.num_predicted_workers > 0 for m in result.instances[:-1])
        assert result.instances[-1].num_predicted_workers == 0

    def test_prediction_errors_reported_from_second_instance(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, RandomAssigner(), EngineConfig(budget=0.0, use_prediction=True)
        )
        result = engine.run()
        assert result.instances[0].worker_prediction_error is None
        for metrics in result.instances[1:]:
            assert metrics.worker_prediction_error is not None
            assert metrics.worker_prediction_error >= 0.0
        assert result.average_worker_prediction_error is not None

    def test_workers_released_and_reused(self):
        """Workers who finish travel rejoin the pool as new workers."""
        workload = small_workload(instances=6)
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=50.0))
        result = engine.run()
        arrivals = sum(len(workload.arrivals(p)[0]) for p in range(6))
        # Pool sizes can exceed cumulative raw arrivals only if released
        # workers rejoin; check the pool never shrinks below assignments.
        assert result.total_assigned > 0
        for p, metrics in enumerate(result.instances):
            assert metrics.num_workers <= arrivals + result.total_assigned

    def test_expired_tasks_leave_the_pool(self):
        params = WorkloadParams(
            num_workers=40, num_tasks=40, num_instances=6,
            deadline_range=(0.25, 0.5),  # expire before the next instance
        )
        workload = SyntheticWorkload(params, seed=2)
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=1.0))
        result = engine.run()
        for p, metrics in enumerate(result.instances):
            # Pool = new arrivals only (carried tasks have all expired).
            assert metrics.num_tasks <= len(workload.arrivals(p)[1])

    def test_zero_budget_assigns_nothing(self):
        workload = small_workload()
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=0.0))
        result = engine.run()
        assert result.total_assigned == 0
        assert result.total_quality == 0.0

    def test_cpu_time_measured(self):
        workload = small_workload()
        engine = SimulationEngine(workload, MQAGreedy(), EngineConfig(budget=10.0))
        result = engine.run()
        assert result.average_cpu_seconds > 0.0


class TestOracleMode:
    def test_oracle_feeds_predicted_entities(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, MQAGreedy(),
            EngineConfig(budget=10.0, use_prediction=False, oracle_prediction=True),
        )
        result = engine.run()
        # Oracle entities mirror the actual next-instance arrivals.
        for p, metrics in enumerate(result.instances[:-1]):
            actual_w, actual_t = workload.arrivals(p + 1)
            assert metrics.num_predicted_workers == len(actual_w)
            assert metrics.num_predicted_tasks == len(actual_t)
        assert result.instances[-1].num_predicted_workers == 0

    def test_oracle_never_materializes_future_entities(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, MQAGreedy(),
            EngineConfig(budget=10.0, oracle_prediction=True),
        )
        result = engine.run()
        # Budget still respected; assignments still valid.
        for metrics in result.instances:
            assert metrics.cost <= 10.0 + 1e-6

    def test_oracle_reports_no_prediction_error(self):
        workload = small_workload()
        engine = SimulationEngine(
            workload, MQAGreedy(),
            EngineConfig(budget=10.0, use_prediction=False, oracle_prediction=True),
        )
        result = engine.run()
        assert result.average_worker_prediction_error is None

    def test_oracle_quality_in_sane_band(self):
        """Clairvoyance should not collapse quality."""
        workload = small_workload()
        wop = SimulationEngine(
            workload, MQAGreedy(),
            EngineConfig(budget=10.0, use_prediction=False),
        ).run()
        oracle = SimulationEngine(
            workload, MQAGreedy(),
            EngineConfig(budget=10.0, use_prediction=False, oracle_prediction=True),
        ).run()
        assert oracle.total_quality > 0.7 * wop.total_quality
