"""Tests for repro.prediction.predictors."""

import pytest

from repro.prediction.predictors import (
    CountPredictor,
    ExponentialSmoothingPredictor,
    LastValuePredictor,
    LinearRegressionPredictor,
    MeanPredictor,
    make_predictor,
)


class TestPredictors:
    def test_linear_regression_predictor(self):
        assert LinearRegressionPredictor().predict([1.0, 2.0, 3.0]) == pytest.approx(4.0)

    def test_mean_predictor(self):
        assert MeanPredictor().predict([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_last_value_predictor(self):
        assert LastValuePredictor().predict([1.0, 9.0, 5.0]) == 5.0

    def test_exponential_smoothing_alpha_one_is_last_value(self):
        p = ExponentialSmoothingPredictor(alpha=1.0)
        assert p.predict([1.0, 2.0, 7.0]) == 7.0

    def test_exponential_smoothing_known_value(self):
        p = ExponentialSmoothingPredictor(alpha=0.5)
        # level: 2 -> 0.5*4+0.5*2=3 -> 0.5*8+0.5*3=5.5
        assert p.predict([2.0, 4.0, 8.0]) == pytest.approx(5.5)

    def test_exponential_smoothing_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialSmoothingPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothingPredictor(alpha=1.5)

    @pytest.mark.parametrize(
        "predictor",
        [MeanPredictor(), LastValuePredictor(), ExponentialSmoothingPredictor()],
    )
    def test_empty_history_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict([])

    @pytest.mark.parametrize(
        "predictor",
        [
            LinearRegressionPredictor(),
            MeanPredictor(),
            LastValuePredictor(),
            ExponentialSmoothingPredictor(),
        ],
    )
    def test_all_satisfy_protocol(self, predictor):
        assert isinstance(predictor, CountPredictor)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("linear", LinearRegressionPredictor),
            ("mean", MeanPredictor),
            ("last", LastValuePredictor),
            ("exponential", ExponentialSmoothingPredictor),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_predictor(name), cls)

    def test_factory_kwargs(self):
        predictor = make_predictor("exponential", alpha=0.3)
        assert predictor.alpha == 0.3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("oracle")
