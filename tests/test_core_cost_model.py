"""Tests for repro.core.cost_model (Appendix C)."""

import pytest

from repro.core.cost_model import (
    best_subproblem_count,
    best_subproblem_count_derivative,
    dc_cost,
    dc_cost_derivative,
)


class TestDcCost:
    def test_positive(self):
        assert dc_cost(2, 100, 100, 5.0) > 0.0

    def test_requires_two_tasks(self):
        with pytest.raises(ValueError):
            dc_cost(2, 1, 10, 3.0)

    def test_requires_g_at_least_two(self):
        with pytest.raises(ValueError):
            dc_cost(1, 100, 100, 5.0)

    def test_grows_with_problem_size(self):
        small = dc_cost(3, 50, 50, 4.0)
        large = dc_cost(3, 500, 500, 4.0)
        assert large > small

    def test_budget_term_dominates_for_large_g(self):
        """F_B grows ~2g^2 m^2/(g^2-1) -> the cost rises for huge g."""
        costs = [dc_cost(g, 1000, 1000, 2.0) for g in (2, 8, 64)]
        assert costs[2] > costs[1] * 0.5  # not collapsing to zero


class TestBestG:
    def test_within_range(self):
        g = best_subproblem_count(200, 200, 6.0, max_g=16)
        assert 2 <= g <= 16

    def test_clamped_by_task_count(self):
        assert best_subproblem_count(3, 100, 2.0, max_g=16) <= 3

    def test_single_task_default(self):
        assert best_subproblem_count(1, 10, 1.0) == 2

    def test_is_argmin(self):
        m, n, deg = 150, 120, 4.0
        g = best_subproblem_count(m, n, deg, max_g=12)
        costs = {k: dc_cost(k, m, n, deg) for k in range(2, 13)}
        assert costs[g] == min(costs.values())

    def test_high_degree_prefers_more_subproblems(self):
        """Larger deg_t makes conquering/merging costlier, shifting the
        optimum toward larger g (the F_C and F_M terms shrink in g)."""
        low = best_subproblem_count(200, 200, 1.0, max_g=16)
        high = best_subproblem_count(200, 200, 50.0, max_g=16)
        assert high >= low


class TestDerivativeForm:
    def test_derivative_sign_change_brackets_argmin(self):
        """Eq. 13's scan lands within one step of the argmin scan."""
        for m, n, deg in ((100, 80, 3.0), (400, 300, 8.0), (50, 60, 1.5)):
            scan = best_subproblem_count(m, n, deg, max_g=16)
            derivative = best_subproblem_count_derivative(m, n, deg, max_g=16)
            assert abs(scan - derivative) <= 16  # both in range, same method family
            assert 2 <= derivative <= 16

    def test_derivative_value_finite(self):
        assert dc_cost_derivative(2, 100, 100, 5.0) == pytest.approx(
            dc_cost_derivative(2, 100, 100, 5.0)
        )

    def test_derivative_rejects_small_g(self):
        with pytest.raises(ValueError):
            dc_cost_derivative(1.0, 100, 100, 5.0)
