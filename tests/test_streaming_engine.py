"""Tests for the streaming engine, events, and service facade."""

import pytest

from repro.core import MQAGreedy
from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.streaming import (
    EventQueue,
    StreamConfig,
    StreamingEngine,
    StreamingService,
    TaskArrival,
    TaskExpiry,
    WorkerArrival,
    WorkerRelease,
    load_workload,
    run_stream,
    workload_events,
)
from repro.simulation import EngineConfig
from repro.workloads import DriftingHotspotWorkload, SyntheticWorkload, WorkloadParams
from repro.workloads.quality import HashQualityModel


def _quality_model(seed=0):
    return HashQualityModel((1.0, 2.0), seed=seed)


def _worker(wid, x, y, arrival=0.0, velocity=0.3):
    return Worker(id=wid, location=Point(x, y), velocity=velocity, arrival=arrival)


def _task(tid, x, y, deadline, arrival=0.0):
    return Task(id=tid, location=Point(x, y), deadline=deadline, arrival=arrival)


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(TaskExpiry(2.0, 1))
        queue.push(WorkerArrival(1.0, _worker(1, 0.5, 0.5, arrival=1.0)))
        queue.push(TaskArrival(0.5, _task(2, 0.5, 0.5, deadline=3.0, arrival=0.5)))
        times = [e.time for e in queue.pop_due(5.0)]
        assert times == [0.5, 1.0, 2.0]

    def test_boundary_expiry_stays_queued(self):
        """At the drain boundary, arrivals/releases pop, expiries wait."""
        queue = EventQueue()
        queue.push(TaskExpiry(1.0, 9))
        queue.push(WorkerArrival(1.0, _worker(1, 0.5, 0.5, arrival=1.0)))
        queue.push(WorkerRelease(1.0, Point(0.2, 0.2), 0.3, assignment_seq=0))
        popped = list(queue.pop_due(1.0))
        assert [type(e).__name__ for e in popped] == [
            "WorkerArrival",
            "WorkerRelease",
        ]
        assert len(queue) == 1  # the expiry
        assert [type(e).__name__ for e in queue.pop_due(1.5)] == ["TaskExpiry"]

    def test_stable_fifo_within_phase(self):
        queue = EventQueue()
        workers = [_worker(i, 0.5, 0.5) for i in range(5)]
        for w in workers:
            queue.push(WorkerArrival(0.0, w))
        popped = [e.worker.id for e in queue.pop_due(0.0)]
        assert popped == [0, 1, 2, 3, 4]

    def test_latest_time(self):
        queue = EventQueue()
        assert queue.latest_time() is None
        queue.push(TaskExpiry(3.5, 1))
        queue.push(TaskExpiry(1.5, 2))
        assert queue.latest_time() == 3.5

    def test_latest_time_phase_bound(self):
        from repro.streaming.events import PHASE_RELEASE

        queue = EventQueue()
        queue.push(TaskExpiry(9.0, 1))
        queue.push(WorkerRelease(2.0, Point(0.1, 0.1), 0.3, assignment_seq=0))
        queue.push(WorkerArrival(1.0, _worker(1, 0.5, 0.5, arrival=1.0)))
        assert queue.latest_time() == 9.0
        assert queue.latest_time(max_phase=PHASE_RELEASE) == 2.0


class TestStreamingEngineBehavior:
    def test_micro_batch_assigns_between_instances(self):
        """A worker arriving at t=0.5 is used by the t=0.5 round."""
        config = StreamConfig(
            round_interval=0.5, budget=100.0, use_prediction=False
        )
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        engine.submit_task(_task(1, 0.5, 0.5, deadline=2.0, arrival=0.0))
        engine.submit_worker(_worker(2, 0.5, 0.5, arrival=0.5))
        engine.advance_to(0.5)
        result = engine.result()
        assert result.total_assigned == 1
        assert result.assignments[0].instance == 1  # the t=0.5 round

    def test_task_expires_between_rounds(self):
        config = StreamConfig(round_interval=1.0, budget=100.0, use_prediction=False)
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        engine.submit_task(_task(1, 0.5, 0.5, deadline=0.4, arrival=0.0))
        # No worker at round 0; the task must be gone by round 1.
        engine.advance_to(0.0)
        assert engine.num_available_tasks == 1
        engine.submit_worker(_worker(2, 0.5, 0.5, arrival=1.0))
        engine.advance_to(1.0)
        assert engine.num_available_tasks == 0
        assert engine.result().total_assigned == 0

    def test_released_worker_rejoins_at_task_location(self):
        config = StreamConfig(round_interval=1.0, budget=100.0, use_prediction=False)
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        # Travel 0.3 at velocity 0.3 -> released at t=1, reusable at t=1.
        engine.submit_worker(_worker(1, 0.2, 0.5, arrival=0.0, velocity=0.3))
        engine.submit_task(_task(2, 0.5, 0.5, deadline=2.0, arrival=0.0))
        engine.submit_task(_task(3, 0.5, 0.5, deadline=3.0, arrival=1.0))
        engine.advance_to(2.0)
        result = engine.result()
        assert result.total_assigned == 2
        second = result.assignments[1]
        assert second.worker_id >= 2 * 10_000_000_000  # released-worker id range
        assert second.travel_time == 0.0

    def test_end_time_caps_rounds(self):
        config = StreamConfig(round_interval=1.0, use_prediction=False)
        engine = StreamingEngine(
            MQAGreedy(), _quality_model(), config, end_time=3.0
        )
        engine.advance_to(10.0)
        assert engine.rounds_run == 3  # rounds at t=0,1,2 only

    def test_predicted_entity_submission_rejected(self):
        engine = StreamingEngine(MQAGreedy(), _quality_model())
        predicted = Worker(
            id=1, location=Point(0.5, 0.5), velocity=0.3, predicted=True
        )
        with pytest.raises(ValueError):
            engine.submit_worker(predicted)

    def test_sparse_and_dense_rounds_agree(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=80, num_tasks=80, num_instances=4), seed=13
        )
        sparse = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig(round_interval=0.5, budget=20.0),
            seed=13,
        )
        dense = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig(
                round_interval=0.5, budget=20.0, use_sparse_builder=False
            ),
            seed=13,
        )
        assert sparse.assignments == dense.assignments
        assert [i.num_pairs for i in sparse.instances] == [
            i.num_pairs for i in dense.instances
        ]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(round_interval=0.0)
        with pytest.raises(ValueError):
            StreamConfig(budget=-1.0)
        with pytest.raises(ValueError):
            StreamConfig.from_engine_config(EngineConfig(oracle_prediction=True))


class TestWorkloadAdapter:
    def test_event_stream_covers_workload(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=50, num_tasks=40, num_instances=3), seed=1
        )
        events = list(workload_events(workload))
        workers = [e for e in events if isinstance(e, WorkerArrival)]
        tasks = [e for e in events if isinstance(e, TaskArrival)]
        assert len(workers) == workload.total_workers()
        assert len(tasks) == workload.total_tasks()
        assert all(e.time == e.worker.arrival for e in workers)

    def test_load_workload_counts(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=30, num_tasks=30, num_instances=2), seed=2
        )
        engine = StreamingEngine(MQAGreedy(), workload.quality_model)
        assert load_workload(engine, workload) == 60


class TestStreamingService:
    def test_submit_drain_snapshot_cycle(self):
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        service.submit_worker(_worker(1, 0.4, 0.4, arrival=0.0))
        service.submit_task(_task(2, 0.45, 0.4, deadline=2.0, arrival=0.0))
        fresh = service.drain()
        assert [r.task_id for r in fresh] == [2]
        assert service.drain() == []  # nothing new
        snapshot = service.snapshot_metrics()
        assert snapshot.assignments == 1
        # The assigned worker finished traveling and rejoined the pool.
        assert snapshot.available_workers == 1
        assert snapshot.available_tasks == 0
        assert snapshot.rounds_run >= 1
        assert snapshot.events_processed == 3  # 2 submissions + 1 release
        assert snapshot.total_cost > 0.0

    def test_drain_ignores_far_deadlines(self):
        """A distant deadline must not fast-forward the clock through
        dozens of empty rounds on a no-arg drain."""
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        # Unreachable task (worker too slow to ever arrive in time).
        service.submit_worker(_worker(1, 0.0, 0.0, arrival=0.0, velocity=0.001))
        service.submit_task(_task(2, 1.0, 1.0, deadline=50.0, arrival=0.0))
        service.drain()
        service.drain()
        assert service.snapshot_metrics().clock <= 1.0

    def test_drain_sees_late_events(self):
        """Events stamped before the clock surface at the next round."""
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        service.submit_worker(_worker(1, 0.9, 0.9, arrival=5.0))
        service.drain()  # clock advances to 5.0
        assert service.snapshot_metrics().clock == 5.0
        # Late submissions, stamped in the past relative to the clock.
        service.submit_worker(_worker(2, 0.5, 0.5, arrival=2.0))
        service.submit_task(_task(3, 0.5, 0.5, deadline=99.0, arrival=2.0))
        fresh = service.drain()
        assert [r.task_id for r in fresh] == [3]

    def test_duplicate_live_ids_rejected(self):
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        engine.submit_task(_task(1, 0.2, 0.2, deadline=9.0, arrival=0.0))
        engine.submit_task(_task(1, 0.8, 0.8, deadline=9.0, arrival=0.0))
        with pytest.raises(ValueError, match="task 1 is already pending"):
            engine.advance_to(0.0)
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        engine.submit_worker(_worker(4, 0.2, 0.2))
        engine.submit_worker(_worker(4, 0.8, 0.8))
        with pytest.raises(ValueError, match="worker 4 is already in the pool"):
            engine.advance_to(0.0)

    def test_drain_until(self):
        config = StreamConfig(round_interval=0.5, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        service.submit_task(_task(1, 0.5, 0.5, deadline=5.0, arrival=0.0))
        service.submit_worker(_worker(2, 0.5, 0.5, arrival=2.0))
        assert service.drain(until=1.0) == []
        assert len(service.drain(until=2.0)) == 1

    def test_expected_arrivals_near(self):
        config = StreamConfig(round_interval=1.0, budget=0.0)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        # Before any round: predictors not ready.
        assert service.expected_arrivals_near(Point(0.5, 0.5), 0.2) == (0.0, 0.0)
        for i in range(8):
            service.submit_task(
                _task(10 + i, 0.5, 0.5, deadline=1.0 + i, arrival=float(i % 2))
            )
        service.drain(until=1.0)
        _, tasks_near = service.expected_arrivals_near(Point(0.5, 0.5), 0.3)
        far = service.expected_arrivals_near(Point(0.05, 0.05), 0.02)
        assert tasks_near >= far[1]

    def test_snapshot_tracks_sparse_work(self):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=60, num_tasks=60, num_instances=3), seed=4
        )
        config = StreamConfig(round_interval=1.0, budget=20.0)
        service = StreamingService(MQAGreedy(), workload.quality_model, config)
        engine = service.engine
        load_workload(engine, workload)
        service.drain(until=2.0)
        snapshot = service.snapshot_metrics()
        assert snapshot.dense_pairs_equivalent > 0
        assert 0 < snapshot.candidate_pairs_examined

    def test_drain_with_zero_rounds_elapsed(self):
        """A drain that advances no rounds is a clean no-op: empty
        result, clock untouched, drain cursor unmoved."""
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        # No events at all — drain_pending finds nothing to target.
        assert service.drain() == []
        assert service.snapshot_metrics().rounds_run == 0
        assert service.drained_assignments == 0
        # With future-stamped events, a drain before their arrival
        # runs only the empty t=0 round: nothing applied, nothing
        # assigned, the cursor stays put.
        service.submit_worker(_worker(1, 0.4, 0.4, arrival=0.9))
        service.submit_task(_task(2, 0.45, 0.4, deadline=3.0, arrival=0.9))
        assert service.drain(until=0.5) == []
        assert service.snapshot_metrics().events_processed == 0
        assert service.drained_assignments == 0
        # The queued events are not lost: the next real round sees them.
        assert len(service.drain(until=1.0)) == 1

    def test_submit_after_close_raises(self):
        config = StreamConfig(round_interval=1.0, budget=50.0, use_prediction=False)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        service.submit_worker(_worker(1, 0.4, 0.4))
        service.submit_task(_task(2, 0.45, 0.4, deadline=2.0))
        service.drain()
        service.close()
        assert service.closed
        with pytest.raises(RuntimeError, match="closed; cannot submit_worker"):
            service.submit_worker(_worker(3, 0.5, 0.5))
        with pytest.raises(RuntimeError, match="closed; cannot submit_task"):
            service.submit_task(_task(4, 0.5, 0.5, deadline=9.0))
        with pytest.raises(RuntimeError, match="closed; cannot drain"):
            service.drain()
        # The read-only surface stays up for post-mortem inspection.
        assert service.snapshot_metrics().assignments == 1
        assert service.metrics_json()["schema"] == "repro.obs.metrics/v1"
        service.close()  # idempotent

    def test_close_via_context_manager(self):
        config = StreamConfig(round_interval=1.0, use_prediction=False)
        with StreamingService(MQAGreedy(), _quality_model(), config) as service:
            assert not service.closed
        assert service.closed

    def test_snapshot_under_empty_history(self):
        """A snapshot before any round: zeroed totals, no phase
        latencies, and a None clock — never an exception."""
        config = StreamConfig(round_interval=1.0, budget=50.0)
        service = StreamingService(MQAGreedy(), _quality_model(), config)
        snapshot = service.snapshot_metrics()
        assert snapshot.clock is None
        assert snapshot.rounds_run == 0
        assert snapshot.events_processed == 0
        assert snapshot.assignments == 0
        assert snapshot.total_quality == 0.0
        assert snapshot.total_cost == 0.0
        assert snapshot.phase_latencies == {}
        # The exports work on the same empty registry (no instruments
        # registered yet, so the exposition is empty but well-formed).
        assert service.metrics_prometheus().strip() == ""
        assert service.metrics_json()["histograms"] == []


class TestStreamingScenariosEndToEnd:
    def test_hotspot_scenario_runs_microbatched(self):
        workload = DriftingHotspotWorkload(
            WorkloadParams(num_workers=90, num_tasks=90, num_instances=4), seed=6
        )
        result = run_stream(
            workload,
            MQAGreedy(),
            config=StreamConfig(round_interval=0.5, budget=30.0),
            seed=6,
        )
        assert len(result.instances) == 8  # two rounds per instance
        assert result.total_assigned > 0

    def test_finer_rounds_never_crash_on_empty_world(self):
        config = StreamConfig(round_interval=0.25, use_prediction=True)
        engine = StreamingEngine(MQAGreedy(), _quality_model(), config)
        engine.advance_to(1.0)
        assert engine.rounds_run == 5
        assert engine.result().total_assigned == 0


class TestDeltaBuilderEngineIntegration:
    """The delta-maintained build path is the serial engine's default;
    it must reproduce the full-rebuild engine exactly and repair (not
    rebuild) the steady-state rounds."""

    def _run(self, use_delta: bool, use_prediction: bool = True):
        workload = SyntheticWorkload(
            WorkloadParams(num_workers=160, num_tasks=160, num_instances=6),
            seed=11,
        )
        config = StreamConfig(
            round_interval=0.5,
            budget=25.0,
            use_prediction=use_prediction,
            use_delta_builder=use_delta,
        )
        engine = StreamingEngine(
            MQAGreedy(), workload.quality_model, config=config, seed=11,
            end_time=float(workload.num_instances),
        )
        load_workload(engine, workload)
        engine.advance_to(float(workload.num_instances))
        return engine

    @pytest.mark.parametrize("use_prediction", [True, False])
    def test_delta_reproduces_full_rebuild(self, use_prediction):
        delta = self._run(True, use_prediction)
        full = self._run(False, use_prediction)
        assert delta.result().assignments == full.result().assignments
        assert [i.num_pairs for i in delta.result().instances] == [
            i.num_pairs for i in full.result().instances
        ]
        assert delta.result().total_quality == full.result().total_quality

    def test_delta_stats_exposed_and_incremental(self):
        engine = self._run(True)
        stats = engine.delta_stats
        assert stats is not None
        assert stats.rounds == engine.rounds_run
        # At this small scale the arrival-heavy instance boundaries
        # re-prime (churn ratio); the off-boundary rounds must repair.
        assert stats.incremental_rounds >= stats.rounds // 2
        assert stats.primes + stats.incremental_rounds == stats.rounds

    def test_delta_disabled_has_no_stats(self):
        engine = self._run(False)
        assert engine.delta_stats is None

    def test_phase_timers_recorded(self):
        engine = self._run(True)
        instances = engine.result().instances
        assert all(i.build_seconds > 0.0 for i in instances)
        assert all(i.assign_seconds >= 0.0 for i in instances)
        # The phase split stays inside the measured round wall-clock.
        assert all(
            i.build_seconds + i.assign_seconds <= i.cpu_seconds for i in instances
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="delta_slack"):
            StreamConfig(delta_slack=-0.1)
        with pytest.raises(ValueError, match="delta_rebuild_ratio"):
            StreamConfig(delta_rebuild_ratio=1.5)
