"""Tests for repro.core.pruning (Lemmas 4.1 and 4.2)."""

import numpy as np

from repro.core.pruning import cap_candidates, dominance_skyline, probability_prune
from repro.model.pairs import PairPool


def pool_from_rows(rows):
    """rows: list of (cost_lb, cost_ub, quality_lb, quality_ub, cost_var, q_var)."""
    rows = [tuple(r) + (0.0, 0.0)[len(r) - 4:] if len(r) < 6 else tuple(r) for r in rows]
    n = len(rows)
    cost_lb = np.array([r[0] for r in rows], dtype=float)
    cost_ub = np.array([r[1] for r in rows], dtype=float)
    q_lb = np.array([r[2] for r in rows], dtype=float)
    q_ub = np.array([r[3] for r in rows], dtype=float)
    cost_var = np.array([r[4] for r in rows], dtype=float)
    q_var = np.array([r[5] for r in rows], dtype=float)
    return PairPool(
        worker_idx=np.arange(n),
        task_idx=np.arange(n),
        cost_mean=(cost_lb + cost_ub) / 2,
        cost_var=cost_var,
        cost_lb=cost_lb,
        cost_ub=cost_ub,
        quality_mean=(q_lb + q_ub) / 2,
        quality_var=q_var,
        quality_lb=q_lb,
        quality_ub=q_ub,
        existence=np.ones(n),
        is_current=np.ones(n, dtype=bool),
    )


class TestDominanceSkyline:
    def test_strictly_dominated_pair_pruned(self):
        # Pair 1: cheaper (ub 1 < lb 2) and better (lb 3 > ub 2).
        pool = pool_from_rows([(2.0, 2.0, 1.0, 2.0), (1.0, 1.0, 3.0, 3.0)])
        survivors = dominance_skyline(pool, np.array([0, 1]))
        assert survivors.tolist() == [1]

    def test_equal_quality_no_dominance(self):
        pool = pool_from_rows([(2.0, 2.0, 3.0, 3.0), (1.0, 1.0, 3.0, 3.0)])
        survivors = dominance_skyline(pool, np.array([0, 1]))
        assert survivors.tolist() == [0, 1]

    def test_overlapping_cost_intervals_no_dominance(self):
        # ub_c of candidate (2.0) not < lb_c of pair (1.5).
        pool = pool_from_rows([(1.5, 3.0, 1.0, 2.0), (1.0, 2.0, 3.0, 4.0)])
        survivors = dominance_skyline(pool, np.array([0, 1]))
        assert survivors.tolist() == [0, 1]

    def test_skyline_of_frontier_survives(self):
        # Quality increases with cost: nothing dominated.
        pool = pool_from_rows([(i, i, i, i) for i in range(1, 6)])
        survivors = dominance_skyline(pool, np.arange(5))
        assert survivors.tolist() == list(range(5))

    def test_chain_domination(self):
        # One superstar dominates the other two.
        pool = pool_from_rows(
            [(0.5, 0.5, 9.0, 9.0), (2.0, 2.0, 1.0, 1.0), (3.0, 3.0, 2.0, 2.0)]
        )
        survivors = dominance_skyline(pool, np.arange(3))
        assert survivors.tolist() == [0]

    def test_empty_and_singleton(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0)])
        assert dominance_skyline(pool, np.array([], dtype=int)).size == 0
        assert dominance_skyline(pool, np.array([0])).tolist() == [0]

    def test_matches_naive_implementation(self, rng):
        n = 60
        cost = np.sort(rng.uniform(0, 5, size=(n, 2)), axis=1)
        quality = np.sort(rng.uniform(0, 5, size=(n, 2)), axis=1)
        pool = pool_from_rows(
            [(c[0], c[1], q[0], q[1]) for c, q in zip(cost, quality)]
        )
        rows = np.arange(n)
        fast = set(dominance_skyline(pool, rows).tolist())
        naive = {
            int(j)
            for j in rows
            if not any(
                pool.cost_ub[a] < pool.cost_lb[j] and pool.quality_lb[a] > pool.quality_ub[j]
                for a in rows
            )
        }
        assert fast == naive


class TestProbabilityPrune:
    def test_probably_worse_pair_pruned(self):
        # Pair 0: lower quality mean AND higher cost mean, both stochastic.
        pool = pool_from_rows(
            [(3.0, 5.0, 0.5, 1.5, 0.3, 0.3), (1.0, 2.0, 2.0, 3.0, 0.3, 0.3)]
        )
        survivors = probability_prune(pool, np.array([0, 1]))
        assert survivors.tolist() == [1]

    def test_no_mutual_elimination(self):
        pool = pool_from_rows(
            [(1.0, 2.0, 1.0, 2.0, 0.2, 0.2), (1.0, 2.0, 1.0, 2.0, 0.2, 0.2)]
        )
        survivors = probability_prune(pool, np.array([0, 1]))
        assert survivors.tolist() == [0, 1]

    def test_deterministic_degenerates_to_dominance(self):
        pool = pool_from_rows([(2.0, 2.0, 1.0, 1.0), (1.0, 1.0, 3.0, 3.0)])
        survivors = probability_prune(pool, np.array([0, 1]))
        assert survivors.tolist() == [1]

    def test_better_on_one_dimension_survives(self):
        # Pair 0 is cheaper but worse quality: survives.
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0), (2.0, 2.0, 3.0, 3.0)])
        survivors = probability_prune(pool, np.array([0, 1]))
        assert survivors.tolist() == [0, 1]

    def test_singleton(self):
        pool = pool_from_rows([(1.0, 1.0, 1.0, 1.0)])
        assert probability_prune(pool, np.array([0])).tolist() == [0]


class TestCapCandidates:
    def test_under_cap_untouched(self):
        pool = pool_from_rows([(1.0, 1.0, float(i), float(i)) for i in range(5)])
        assert cap_candidates(pool, np.arange(5), 10).tolist() == list(range(5))

    def test_keeps_highest_quality(self):
        pool = pool_from_rows([(1.0, 1.0, float(i), float(i)) for i in range(5)])
        kept = cap_candidates(pool, np.arange(5), 2)
        assert sorted(kept.tolist()) == [3, 4]

    def test_tie_break_by_cost_then_row(self):
        pool = pool_from_rows(
            [(3.0, 3.0, 2.0, 2.0), (1.0, 1.0, 2.0, 2.0), (1.0, 1.0, 2.0, 2.0)]
        )
        kept = cap_candidates(pool, np.arange(3), 1)
        assert kept.tolist() == [1]
