"""Tests for repro.model.instance (Section III-B pair construction)."""

import numpy as np
import pytest

from repro.geo.point import euclidean_distance
from repro.model.entities import Task, Worker
from repro.model.instance import build_problem
from repro.model.validity import can_reach
from repro.workloads.quality import HashQualityModel

from repro.testing import (
    make_predicted_tasks,
    make_predicted_workers,
    make_problem,
    make_tasks,
    make_workers,
)

UNIT_COST = 5.0


def build(seed=0, n=10, m=8, k=0, l=0, **kwargs):
    rng = np.random.default_rng(seed)
    workers = make_workers(rng, n)
    tasks = make_tasks(rng, m)
    predicted_workers = make_predicted_workers(rng, k)
    predicted_tasks = make_predicted_tasks(rng, l)
    quality_model = HashQualityModel((1.0, 2.0), seed=seed)
    problem = build_problem(
        workers, tasks, predicted_workers, predicted_tasks,
        quality_model, UNIT_COST, 0.0, **kwargs,
    )
    return problem, workers, tasks, predicted_workers, predicted_tasks, quality_model


class TestCurrentPairs:
    def test_every_valid_pair_present_exactly_once(self):
        problem, workers, tasks, *_ = build()
        pool = problem.pool
        seen = set(zip(pool.worker_idx.tolist(), pool.task_idx.tolist()))
        assert len(seen) == len(pool)
        for i, worker in enumerate(workers):
            for j, task in enumerate(tasks):
                expected = can_reach(worker, task, 0.0)
                assert ((i, j) in seen) == expected

    def test_costs_match_euclidean_distance(self):
        problem, workers, tasks, *_ = build()
        pool = problem.pool
        for row in range(len(pool)):
            worker = workers[pool.worker_idx[row]]
            task = tasks[pool.task_idx[row]]
            expected = UNIT_COST * euclidean_distance(worker.location, task.location)
            assert pool.cost_mean[row] == pytest.approx(expected)
            assert pool.cost_lb[row] == pytest.approx(expected)
            assert pool.cost_ub[row] == pytest.approx(expected)
            assert pool.cost_var[row] == 0.0

    def test_qualities_match_quality_model(self):
        problem, workers, tasks, _, _, quality_model = build()
        pool = problem.pool
        matrix = quality_model.quality_matrix(workers, tasks)
        for row in range(len(pool)):
            expected = matrix[pool.worker_idx[row], pool.task_idx[row]]
            assert pool.quality_mean[row] == pytest.approx(float(expected))
            assert pool.quality_var[row] == 0.0

    def test_current_pairs_flagged_and_certain(self):
        problem, *_ = build()
        pool = problem.pool
        assert pool.is_current.all()
        np.testing.assert_allclose(pool.existence, 1.0)

    def test_empty_inputs(self):
        problem, *_ = build(n=0, m=0)
        assert problem.num_pairs == 0

    def test_no_workers(self):
        problem, *_ = build(n=0, m=5)
        assert problem.num_pairs == 0

    def test_pair_materialization(self):
        problem, workers, tasks, *_ = build()
        pair = problem.pair(0)
        assert pair.worker is workers[problem.pool.worker_idx[0]]
        assert pair.task is tasks[problem.pool.task_idx[0]]
        assert pair.is_current


class TestPredictedPairs:
    def test_mixed_pairs_not_current(self):
        problem, *_ = build(k=4, l=3, reservation_filter=False)
        pool = problem.pool
        predicted_rows = ~pool.is_current
        assert predicted_rows.any()
        # Index ranges: predicted workers sit after current ones.
        n, m = problem.num_current_workers, problem.num_current_tasks
        for row in np.nonzero(predicted_rows)[0]:
            assert pool.worker_idx[row] >= n or pool.task_idx[row] >= m

    def test_existence_probability_case1(self):
        """<w_hat, t_j>: p = min(n_j / |W_p|, 1)."""
        problem, workers, tasks, pw, _, _ = build(k=3, l=0, reservation_filter=False)
        pool = problem.pool
        n = len(workers)
        for row in np.nonzero(~pool.is_current)[0]:
            task_index = int(pool.task_idx[row])
            if task_index < len(tasks):  # current task, predicted worker
                valid_workers = sum(
                    1 for w in workers if can_reach(w, tasks[task_index], 0.0)
                )
                expected = min(valid_workers / n, 1.0)
                assert pool.existence[row] == pytest.approx(expected)

    def test_existence_probability_case2(self):
        """<w_i, t_hat>: p = min(m_i / |T_p|, 1)."""
        problem, workers, tasks, _, pt, _ = build(k=0, l=3, reservation_filter=False)
        pool = problem.pool
        m = len(tasks)
        for row in np.nonzero(~pool.is_current)[0]:
            worker_index = int(pool.worker_idx[row])
            if worker_index < len(workers):
                valid_tasks = sum(
                    1 for t in tasks if can_reach(workers[worker_index], t, 0.0)
                )
                expected = min(valid_tasks / m, 1.0)
                assert pool.existence[row] == pytest.approx(expected)

    def test_existence_probability_case3(self):
        """<w_hat, t_hat>: p = u / (|W_p| |T_p|)."""
        problem, workers, tasks, *_ = build(k=3, l=3, reservation_filter=False)
        pool = problem.pool
        n, m = len(workers), len(tasks)
        total_valid = sum(
            1 for w in workers for t in tasks if can_reach(w, t, 0.0)
        )
        expected = min(total_valid / (n * m), 1.0)
        future_future = (
            (~pool.is_current)
            & (pool.worker_idx >= n)
            & (pool.task_idx >= m)
        )
        assert future_future.any()
        np.testing.assert_allclose(pool.existence[future_future], expected)

    def test_quality_bounds_enclose_mean(self):
        problem, *_ = build(k=4, l=4, reservation_filter=False)
        pool = problem.pool
        assert (pool.quality_lb <= pool.quality_mean + 1e-9).all()
        assert (pool.quality_mean <= pool.quality_ub + 1e-9).all()

    def test_cost_bounds_enclose_mean(self):
        problem, *_ = build(k=4, l=4, reservation_filter=False)
        pool = problem.pool
        assert (pool.cost_lb <= pool.cost_mean + 1e-9).all()
        assert (pool.cost_mean <= pool.cost_ub + 1e-9).all()

    def test_future_future_flag(self):
        with_ff, *_ = build(k=3, l=3, reservation_filter=False)
        without_ff, *_ = build(
            k=3, l=3, reservation_filter=False, include_future_future_pairs=False
        )
        n = with_ff.num_current_workers
        m = with_ff.num_current_tasks
        ff_rows = (
            (with_ff.pool.worker_idx >= n) & (with_ff.pool.task_idx >= m)
        ).sum()
        assert ff_rows > 0
        assert len(without_ff.pool) == len(with_ff.pool) - ff_rows
        remaining_ff = (
            (without_ff.pool.worker_idx >= n) & (without_ff.pool.task_idx >= m)
        ).sum()
        assert remaining_ff == 0

    def test_reservation_filter_drops_beatable_reservations(self):
        unfiltered, *_ = build(k=4, l=4, reservation_filter=False)
        filtered, *_ = build(k=4, l=4, reservation_filter=True)
        assert len(filtered.pool) <= len(unfiltered.pool)
        # Mixed rows surviving the filter must beat the entity's best
        # current option (or the entity has none) - spot check tasks.
        pool = filtered.pool
        n, m = filtered.num_current_workers, filtered.num_current_tasks
        current = pool.is_current
        for row in np.nonzero(~current)[0]:
            w, t = int(pool.worker_idx[row]), int(pool.task_idx[row])
            if w >= n and t < m:  # predicted worker, current task
                current_rows = np.nonzero(current & (pool.task_idx == t))[0]
                if current_rows.size:
                    best = pool.quality_mean[current_rows].max()
                    assert pool.quality_mean[row] > best

    def test_discounting_scales_quality(self):
        discounted, *_ = build(k=4, l=0, reservation_filter=False)
        raw, *_ = build(
            k=4, l=0, reservation_filter=False, discount_by_existence=False
        )
        d_pred = discounted.pool.quality_mean[~discounted.pool.is_current]
        r_pred = raw.pool.quality_mean[~raw.pool.is_current]
        assert d_pred.shape == r_pred.shape
        assert (d_pred <= r_pred + 1e-9).all()


class TestValidation:
    def test_negative_unit_cost_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            build_problem(
                make_workers(rng, 2), make_tasks(rng, 2), [], [],
                HashQualityModel((1, 2)), -1.0, 0.0,
            )

    def test_unflagged_predicted_worker_rejected(self):
        rng = np.random.default_rng(0)
        impostor = make_workers(rng, 1)  # not flagged predicted
        with pytest.raises(ValueError):
            build_problem(
                make_workers(rng, 2), make_tasks(rng, 2), impostor, [],
                HashQualityModel((1, 2)), 1.0, 0.0,
            )

    def test_unflagged_predicted_task_rejected(self):
        rng = np.random.default_rng(0)
        impostor = make_tasks(rng, 1)
        with pytest.raises(ValueError):
            build_problem(
                make_workers(rng, 2), make_tasks(rng, 2), [], impostor,
                HashQualityModel((1, 2)), 1.0, 0.0,
            )

    def test_quality_matrix_shape_enforced(self):
        rng = np.random.default_rng(0)

        class BadModel:
            def quality_matrix(self, workers, tasks):
                return np.zeros((1, 1))

            def prior(self):
                return (1.0, 0.1, 0.0, 2.0)

        with pytest.raises(ValueError):
            build_problem(
                make_workers(rng, 3), make_tasks(rng, 2), [], [],
                BadModel(), 1.0, 0.0,
            )
