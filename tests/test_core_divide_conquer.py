"""Tests for repro.core.divide_conquer (MQA_D&C)."""

import numpy as np
import pytest

from repro.core.divide_conquer import DivideConquerConfig, MQADivideConquer
from repro.core.exact import exact_assignment
from repro.core.greedy import MQAGreedy

from repro.testing import make_problem

RNG = np.random.default_rng(0)


def run_dc(problem, budget_current=50.0, budget_future=0.0, config=None):
    return MQADivideConquer(config).assign(problem, budget_current, budget_future, RNG)


class TestConfig:
    def test_invalid_fixed_g(self):
        with pytest.raises(ValueError):
            DivideConquerConfig(fixed_g=1)

    def test_invalid_max_g(self):
        with pytest.raises(ValueError):
            DivideConquerConfig(max_g=1)

    def test_greedy_config_propagation(self):
        config = DivideConquerConfig(delta=0.3, candidate_cap=32)
        greedy = config.greedy_config()
        assert greedy.delta == 0.3
        assert greedy.candidate_cap == 32


class TestDCInvariants:
    def test_no_worker_or_task_reused(self, small_problem):
        result = run_dc(small_problem)
        workers = [p.worker.id for p in result.pairs]
        tasks = [p.task.id for p in result.pairs]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)

    def test_budget_respected(self, small_problem):
        for budget in (1.0, 3.0, 10.0, 100.0):
            result = run_dc(small_problem, budget_current=budget)
            assert result.total_cost <= budget + 1e-6

    def test_only_current_pairs_materialized(self, mixed_problem):
        result = run_dc(mixed_problem, budget_future=50.0)
        assert all(p.is_current for p in result.pairs)

    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        result = run_dc(problem)
        assert result.pairs == []

    def test_deterministic_across_calls(self, small_problem):
        assert run_dc(small_problem, 8.0).rows == run_dc(small_problem, 8.0).rows

    def test_fixed_g_variants_all_valid(self, small_problem):
        for g in (2, 3, 5):
            result = run_dc(
                small_problem, budget_current=10.0,
                config=DivideConquerConfig(fixed_g=g),
            )
            workers = [p.worker.id for p in result.pairs]
            assert len(set(workers)) == len(workers)
            assert result.total_cost <= 10.0 + 1e-6


class TestDCQuality:
    def test_loose_budget_covers_all_tasks(self):
        problem = make_problem(seed=1, num_workers=10, num_tasks=6)
        result = run_dc(problem, budget_current=1e6)
        assert result.num_assigned == 6

    def test_within_factor_of_optimum(self):
        ratios = []
        for seed in range(8):
            problem = make_problem(seed=seed, num_workers=5, num_tasks=5)
            budget = 6.0
            result = run_dc(problem, budget_current=budget)
            _, optimum = exact_assignment(problem, budget)
            if optimum > 0:
                assert result.total_quality <= optimum + 1e-9
                ratios.append(result.total_quality / optimum)
        assert np.mean(ratios) > 0.7

    def test_comparable_to_greedy(self):
        """D&C and GREEDY land in the same quality ballpark (Sec. VI)."""
        dc_total = 0.0
        greedy_total = 0.0
        for seed in range(6):
            problem = make_problem(seed=seed, num_workers=12, num_tasks=10)
            dc_total += run_dc(problem, budget_current=12.0).total_quality
            greedy_total += MQAGreedy().assign(problem, 12.0, 0.0, RNG).total_quality
        assert dc_total >= 0.8 * greedy_total

    def test_single_task_problem_uses_leaf_path(self):
        problem = make_problem(seed=3, num_workers=6, num_tasks=1)
        result = run_dc(problem, budget_current=20.0)
        assert result.num_assigned == 1


class TestDecomposition:
    def test_groups_partition_tasks(self, small_problem):
        dc = MQADivideConquer()
        pool = small_problem.pool
        task_ids = np.unique(pool.task_idx)
        groups = dc._decompose(small_problem, task_ids, fan_out=3)
        flat = np.concatenate(groups)
        assert sorted(flat.tolist()) == sorted(task_ids.tolist())
        assert len(flat) == len(set(flat.tolist()))

    def test_group_sizes_ceil(self, small_problem):
        dc = MQADivideConquer()
        pool = small_problem.pool
        task_ids = np.unique(pool.task_idx)
        groups = dc._decompose(small_problem, task_ids, fan_out=4)
        expected_size = -(-task_ids.size // 4)
        assert all(len(g) <= expected_size for g in groups)

    def test_anchor_sweeps_by_longitude(self, small_problem):
        """The first group's anchor is the leftmost task."""
        dc = MQADivideConquer()
        pool = small_problem.pool
        task_ids = np.unique(pool.task_idx)
        xs = {t: small_problem.tasks[t].location.x for t in task_ids}
        groups = dc._decompose(small_problem, task_ids, fan_out=3)
        leftmost = min(task_ids, key=lambda t: xs[t])
        assert leftmost in groups[0]
