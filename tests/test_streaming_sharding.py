"""Differential suite: sharded streaming == serial streaming, exactly.

Two layers of bit-identity are enforced:

1. **Pool level** — :func:`build_problem_sharded` emits a pool
   row-for-row, bit-for-bit identical to ``build_problem_sparse`` (and
   therefore to the dense ``build_problem``) for every K, every flag
   combination, and arbitrary entity sets (hypothesis).
2. **Engine level** — :class:`ShardedStreamingEngine` reproduces the
   serial :class:`StreamingEngine`'s :class:`SimulationResult` exactly
   (assignments, quality/cost accounting, prediction errors) on the
   seeded bursty and drifting-hotspot scenarios, both prediction legs,
   K in {1, 2, 4}, across all three backends.

The conflict-free merge relies on unique ownership (every query entity
has exactly one owning tile) plus the border margin covering one
reachable radius; the margin sufficiency test drives velocities and
deadlines to the edges to probe exactly that.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MQADivideConquer, MQAGreedy, RandomAssigner
from repro.geo import TileGrid
from repro.model.sparse import SparseBuildStats, build_problem_sparse
from repro.streaming import (
    ShardedStreamingEngine,
    ShardingConfig,
    StreamConfig,
    build_problem_sharded,
    prepared_engine,
    prepared_sharded_engine,
    run_sharded_stream,
    run_stream,
)
from repro.testing import (
    make_predicted_tasks,
    make_predicted_workers,
    make_tasks,
    make_workers,
)
from repro.workloads import (
    BurstyWorkload,
    CitywideMultiHotspotWorkload,
    DriftingHotspotWorkload,
    WorkloadParams,
)
from repro.workloads.quality import HashQualityModel

from test_streaming_equivalence import assert_pools_identical, assert_results_identical

_SCENARIO_PARAMS = WorkloadParams(
    num_workers=200,
    num_tasks=200,
    num_instances=5,
    velocity_range=(0.05, 0.09),
    deadline_range=(0.5, 1.2),
)


class TestShardedPoolEquivalence:
    """build_problem_sharded == build_problem_sparse, bit for bit."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=24),
        m=st.integers(min_value=0, max_value=24),
        k=st.integers(min_value=0, max_value=8),
        l=st.integers(min_value=0, max_value=8),
        num_shards=st.integers(min_value=1, max_value=6),
        velocity=st.floats(min_value=0.02, max_value=0.6),
        deadline_offset=st.floats(min_value=0.1, max_value=2.5),
        discount=st.booleans(),
        reservation=st.booleans(),
        future_future=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pools_identical_property(
        self,
        seed,
        n,
        m,
        k,
        l,
        num_shards,
        velocity,
        deadline_offset,
        discount,
        reservation,
        future_future,
    ):
        rng = np.random.default_rng(seed)
        workers = make_workers(rng, n, velocity=velocity)
        tasks = make_tasks(rng, m, deadline_offset=deadline_offset)
        predicted_workers = make_predicted_workers(rng, k)
        predicted_tasks = make_predicted_tasks(rng, l)
        quality_model = HashQualityModel((1.0, 2.0), seed=seed)
        kwargs = dict(
            discount_by_existence=discount,
            reservation_filter=reservation,
            include_future_future_pairs=future_future,
        )
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0, **kwargs,
        )
        sharded = build_problem_sharded(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0,
            tiles=TileGrid.from_shard_count(num_shards), **kwargs,
        )
        assert_pools_identical(sparse, sharded)

    def test_candidate_and_emitted_counters_match_serial(self):
        """candidates/emitted/dense_equivalent are partition-invariant
        (gathered/queries legitimately differ per shard layout)."""
        rng = np.random.default_rng(4)
        workers = make_workers(rng, 150, velocity=0.08)
        tasks = make_tasks(rng, 150, deadline_offset=0.8)
        quality_model = HashQualityModel((1.0, 2.0), seed=4)
        serial_stats = SparseBuildStats()
        build_problem_sparse(
            workers, tasks, [], [], quality_model, 10.0, 0.0, stats=serial_stats
        )
        sharded_stats = SparseBuildStats()
        build_problem_sharded(
            workers, tasks, [], [], quality_model, 10.0, 0.0,
            tiles=TileGrid.from_shard_count(4), stats=sharded_stats,
        )
        assert sharded_stats.candidates == serial_stats.candidates
        assert sharded_stats.emitted == serial_stats.emitted
        assert sharded_stats.dense_equivalent == serial_stats.dense_equivalent

    def test_margin_sufficiency_under_extreme_reach(self):
        """Fast workers with long deadlines reach across several tiles;
        the auto margin must still cover every valid pair."""
        rng = np.random.default_rng(9)
        workers = make_workers(rng, 60, velocity=0.9)
        tasks = make_tasks(rng, 60, deadline_offset=2.0)
        predicted_workers = make_predicted_workers(rng, 15)
        predicted_tasks = make_predicted_tasks(rng, 15)
        quality_model = HashQualityModel((1.0, 2.0), seed=9)
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0,
        )
        for num_shards in (2, 4, 6, 9):
            sharded = build_problem_sharded(
                workers, tasks, predicted_workers, predicted_tasks,
                quality_model, 10.0, 0.0,
                tiles=TileGrid.from_shard_count(num_shards),
            )
            assert_pools_identical(sparse, sharded)

    def test_margin_floor_only_widens(self):
        """An explicit margin floor changes work routing, never output."""
        rng = np.random.default_rng(12)
        workers = make_workers(rng, 80, velocity=0.1)
        tasks = make_tasks(rng, 80, deadline_offset=0.7)
        quality_model = HashQualityModel((1.0, 2.0), seed=12)
        sparse = build_problem_sparse(workers, tasks, [], [], quality_model, 10.0, 0.0)
        for floor in (0.0, 0.15, 1.0):
            sharded = build_problem_sharded(
                workers, tasks, [], [], quality_model, 10.0, 0.0,
                tiles=TileGrid(2, 2), margin_floor=floor,
            )
            assert_pools_identical(sparse, sharded)

    def test_exact_predicted_quality_mode(self):
        rng = np.random.default_rng(21)
        workers = make_workers(rng, 40, velocity=0.2)
        tasks = make_tasks(rng, 40, deadline_offset=1.0)
        predicted_workers = make_predicted_workers(rng, 10)
        predicted_tasks = make_predicted_tasks(rng, 10)
        quality_model = HashQualityModel((1.0, 2.0), seed=21)
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0, exact_predicted_quality=True,
        )
        sharded = build_problem_sharded(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0,
            tiles=TileGrid(2, 2), exact_predicted_quality=True,
        )
        assert_pools_identical(sparse, sharded)

    def test_compact_targets_identical(self):
        """The process backend's compacted per-shard payloads (local
        column ids + col_map translation) change nothing in the pool."""
        rng = np.random.default_rng(52)
        workers = make_workers(rng, 70, velocity=0.15)
        tasks = make_tasks(rng, 70, deadline_offset=0.9)
        predicted_workers = make_predicted_workers(rng, 18)
        predicted_tasks = make_predicted_tasks(rng, 18)
        quality_model = HashQualityModel((1.0, 2.0), seed=52)
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0,
        )
        for num_shards in (1, 4):
            sharded = build_problem_sharded(
                workers, tasks, predicted_workers, predicted_tasks,
                quality_model, 10.0, 0.0,
                tiles=TileGrid.from_shard_count(num_shards), compact_targets=True,
            )
            assert_pools_identical(sparse, sharded)

    def test_chunked_survivor_pricing_is_identical(self, monkeypatch):
        """Force the phase-2 chunked pricing dispatch (normally armed
        only above the survivor threshold) and check bit-identity."""
        from concurrent.futures import ThreadPoolExecutor

        import repro.streaming.sharding as sharding_mod

        monkeypatch.setattr(sharding_mod, "_PRICE_DISPATCH_MIN", 1)
        rng = np.random.default_rng(44)
        workers = make_workers(rng, 60, velocity=0.2)
        tasks = make_tasks(rng, 60, deadline_offset=1.0)
        predicted_workers = make_predicted_workers(rng, 20)
        predicted_tasks = make_predicted_tasks(rng, 20)
        quality_model = HashQualityModel((1.0, 2.0), seed=44)
        sparse = build_problem_sparse(
            workers, tasks, predicted_workers, predicted_tasks,
            quality_model, 10.0, 0.0,
        )
        with ThreadPoolExecutor(max_workers=4) as executor:
            sharded = build_problem_sharded(
                workers, tasks, predicted_workers, predicted_tasks,
                quality_model, 10.0, 0.0,
                tiles=TileGrid(2, 2), executor=executor,
            )
        assert_pools_identical(sparse, sharded)

    def test_matrix_only_quality_model_falls_back_globally(self):
        """Models without the by-ids hook still work (quality priced in
        the reconciliation pass instead of the shards)."""

        class MatrixOnlyModel:
            def __init__(self, inner):
                self._inner = inner

            def quality_matrix(self, workers, tasks):
                return self._inner.quality_matrix(workers, tasks)

            def quality_pairs(self, workers, tasks):
                return self._inner.quality_pairs(workers, tasks)

            def prior(self):
                return self._inner.prior()

        rng = np.random.default_rng(31)
        workers = make_workers(rng, 50, velocity=0.15)
        tasks = make_tasks(rng, 50, deadline_offset=0.9)
        inner = HashQualityModel((1.0, 2.0), seed=31)
        sparse = build_problem_sparse(workers, tasks, [], [], inner, 10.0, 0.0)
        sharded = build_problem_sharded(
            workers, tasks, [], [], MatrixOnlyModel(inner), 10.0, 0.0,
            tiles=TileGrid(2, 2),
        )
        assert_pools_identical(sparse, sharded)


class TestShardedEngineEquivalence:
    """Sharded engine rounds == serial engine rounds, exactly."""

    @pytest.mark.parametrize("make_workload", [BurstyWorkload, DriftingHotspotWorkload])
    @pytest.mark.parametrize("use_prediction", [True, False])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_seeded_equivalence(self, make_workload, use_prediction, num_shards):
        workload = make_workload(_SCENARIO_PARAMS, seed=29)
        config = StreamConfig(
            round_interval=0.5, budget=50.0, use_prediction=use_prediction
        )
        serial = run_stream(workload, MQAGreedy(), config=config, seed=29)
        sharded = run_sharded_stream(
            workload,
            MQAGreedy(),
            config=config,
            sharding=ShardingConfig(num_shards=num_shards, backend="serial"),
            seed=29,
        )
        assert serial.total_assigned > 0
        assert_results_identical(serial, sharded)

    def test_citywide_scenario_equivalence(self):
        workload = CitywideMultiHotspotWorkload(_SCENARIO_PARAMS, seed=17)
        config = StreamConfig(round_interval=0.5, budget=50.0)
        serial = run_stream(workload, MQAGreedy(), config=config, seed=17)
        sharded = run_sharded_stream(
            workload,
            MQAGreedy(),
            config=config,
            sharding=ShardingConfig(num_shards=4, backend="serial"),
            seed=17,
        )
        assert serial.total_assigned > 0
        assert_results_identical(serial, sharded)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match(self, backend):
        """The executor backends produce the same bits as in-process."""
        workload = BurstyWorkload(
            WorkloadParams(
                num_workers=120,
                num_tasks=120,
                num_instances=4,
                velocity_range=(0.05, 0.09),
                deadline_range=(0.5, 1.0),
            ),
            seed=5,
        )
        config = StreamConfig(round_interval=0.5, budget=40.0)
        serial = run_stream(workload, MQAGreedy(), config=config, seed=5)
        sharded = run_sharded_stream(
            workload,
            MQAGreedy(),
            config=config,
            sharding=ShardingConfig(num_shards=4, backend=backend),
            seed=5,
        )
        assert_results_identical(serial, sharded)

    @pytest.mark.parametrize(
        "make_assigner", [MQADivideConquer, RandomAssigner]
    )
    def test_other_assigners(self, make_assigner):
        """D&C and RANDOM (RNG-consuming) run identically when sharded."""
        workload = BurstyWorkload(
            WorkloadParams(
                num_workers=140,
                num_tasks=140,
                num_instances=4,
                velocity_range=(0.05, 0.09),
                deadline_range=(0.5, 1.0),
            ),
            seed=37,
        )
        config = StreamConfig(round_interval=1.0, budget=40.0)
        serial = run_stream(workload, make_assigner(), config=config, seed=37)
        sharded = run_sharded_stream(
            workload,
            make_assigner(),
            config=config,
            sharding=ShardingConfig(num_shards=2, backend="serial"),
            seed=37,
        )
        assert_results_identical(serial, sharded)


class TestShardedEngineApi:
    def test_dense_builder_rejected(self):
        with pytest.raises(ValueError):
            ShardedStreamingEngine(
                MQAGreedy(),
                HashQualityModel((1.0, 2.0)),
                config=StreamConfig(use_sparse_builder=False),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardingConfig(num_shards=0)
        with pytest.raises(ValueError):
            ShardingConfig(backend="gpu")
        with pytest.raises(ValueError):
            ShardingConfig(margin=-0.5)
        with pytest.raises(ValueError):
            ShardingConfig(max_workers=0)

    def test_close_is_idempotent_and_context_manager(self):
        engine = ShardedStreamingEngine(
            MQAGreedy(),
            HashQualityModel((1.0, 2.0)),
            sharding=ShardingConfig(num_shards=2, backend="thread"),
        )
        with engine:
            pass
        engine.close()

    def test_rounds_after_close_raise_for_parallel_backends(self):
        """A closed thread/process engine must refuse further rounds
        instead of silently running them in-process."""
        from repro.model.entities import Worker
        from repro.geo import Point

        engine = ShardedStreamingEngine(
            MQAGreedy(),
            HashQualityModel((1.0, 2.0)),
            sharding=ShardingConfig(num_shards=2, backend="thread"),
        )
        engine.close()
        engine.submit_worker(Worker(id=1, location=Point(0.5, 0.5), velocity=0.1))
        with pytest.raises(RuntimeError, match="closed"):
            engine.advance_to(1.0)
        # The serial backend never had an executor; closing it is
        # inert and rounds keep working.
        serial_engine = ShardedStreamingEngine(
            MQAGreedy(),
            HashQualityModel((1.0, 2.0)),
            sharding=ShardingConfig(num_shards=2, backend="serial"),
        )
        serial_engine.close()
        serial_engine.advance_to(1.0)

    def test_tiles_follow_shard_count(self):
        engine = ShardedStreamingEngine(
            MQAGreedy(),
            HashQualityModel((1.0, 2.0)),
            sharding=ShardingConfig(num_shards=6, backend="serial"),
        )
        assert engine.tiles.num_tiles == 6
        assert engine.sharding.backend == "serial"


class TestTileSliceCache:
    """The engine-owned slice cache must be invisible in results and
    actually hit on churn-free rounds."""

    def test_cache_hits_on_churn_free_rounds(self):
        workload = CitywideMultiHotspotWorkload(
            WorkloadParams(
                num_workers=300, num_tasks=300, num_instances=4,
                velocity_range=(0.04, 0.07), deadline_range=(1.5, 2.5),
            ),
            seed=9,
        )
        # use_delta_builder=False: the slice cache serves the legacy
        # fresh-build path; the fused pipeline keeps per-tile state in
        # its own pools and never touches it.
        config = StreamConfig(
            round_interval=0.25, budget=0.0, use_prediction=False,
            use_delta_builder=False,
        )
        engine, _ = prepared_sharded_engine(
            workload, MQAGreedy(), config=config,
            sharding=ShardingConfig(num_shards=4, backend="serial"), seed=9,
        )
        with engine:
            engine.advance_to(float(workload.num_instances))
        # budget 0 -> no assignments -> 3 of every 4 rounds leave the
        # task index untouched, so snapshot and slices must be reused.
        assert engine.slice_cache.csr_hits > 0
        assert engine.slice_cache.slice_hits > 0

    def test_cached_rounds_reproduce_serial_engine(self):
        params = WorkloadParams(
            num_workers=260, num_tasks=260, num_instances=4,
            velocity_range=(0.04, 0.07), deadline_range=(1.0, 2.0),
        )
        workload = CitywideMultiHotspotWorkload(params, seed=5)
        config = StreamConfig(round_interval=0.25, budget=8.0, use_prediction=True)
        serial_engine, _ = prepared_engine(
            workload, MQAGreedy(), config=config, seed=5
        )
        serial_engine.advance_to(float(workload.num_instances))
        workload = CitywideMultiHotspotWorkload(params, seed=5)
        sharded_engine, _ = prepared_sharded_engine(
            workload, MQAGreedy(), config=config,
            sharding=ShardingConfig(num_shards=4, backend="serial"), seed=5,
        )
        with sharded_engine:
            sharded_engine.advance_to(float(workload.num_instances))
        assert_results_identical(serial_engine.result(), sharded_engine.result())
