"""Tests for repro.simulation.metrics."""

import pytest

from repro.simulation.metrics import InstanceMetrics, SimulationResult


def metrics(instance, quality=1.0, cost=2.0, assigned=1, cpu=0.1,
            worker_error=None, task_error=None):
    return InstanceMetrics(
        instance=instance,
        quality=quality,
        cost=cost,
        assigned=assigned,
        num_workers=10,
        num_tasks=10,
        num_predicted_workers=0,
        num_predicted_tasks=0,
        num_pairs=50,
        cpu_seconds=cpu,
        worker_prediction_error=worker_error,
        task_prediction_error=task_error,
    )


class TestSimulationResult:
    def test_totals(self):
        result = SimulationResult(
            instances=[metrics(0, quality=2.0, cost=1.0), metrics(1, quality=3.0, cost=2.0)]
        )
        assert result.total_quality == pytest.approx(5.0)
        assert result.total_cost == pytest.approx(3.0)
        assert result.total_assigned == 2

    def test_average_cpu(self):
        result = SimulationResult(
            instances=[metrics(0, cpu=0.1), metrics(1, cpu=0.3)]
        )
        assert result.average_cpu_seconds == pytest.approx(0.2)

    def test_empty_result(self):
        result = SimulationResult()
        assert result.total_quality == 0.0
        assert result.average_cpu_seconds == 0.0
        assert result.average_worker_prediction_error is None
        assert result.average_task_prediction_error is None

    def test_prediction_errors_skip_missing(self):
        result = SimulationResult(
            instances=[
                metrics(0),
                metrics(1, worker_error=0.2, task_error=0.4),
                metrics(2, worker_error=0.4, task_error=0.2),
            ]
        )
        assert result.average_worker_prediction_error == pytest.approx(0.3)
        assert result.average_task_prediction_error == pytest.approx(0.3)
