"""Differential tests: the sparse-native greedy selection engine.

``TripletSelection`` must select exactly the rows the per-iteration
rescan loop selects — including float tie-breaking, which depends on
the canonical candidate ordering — across adversarial pools with
duplicated (tie-heavy) costs and qualities.  The z-threshold shortcuts
of the Eq. 9 confidence test and the Lemma 4.2 pruning are covered by
dedicated equivalence tests against the direct formulas.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import GreedyConfig, _greedy_select_rescan, greedy_select
from repro.core.pruning import probability_prune
from repro.core.selection import _phi_threshold, budget_confident_rows
from repro.core.triplet_select import triplet_greedy_select
from repro.model.pairs import PairPool
from repro.uncertainty.vector import phi_vec, prob_greater_vec, prob_less_or_equal_vec


def _random_pool(rng: np.random.Generator, n: int) -> PairPool:
    """Tie-heavy pool: quantized values exercise ulp-order contracts."""
    num_workers = int(rng.integers(1, max(n // 8, 2)))
    num_tasks = int(rng.integers(1, max(n // 8, 2)))
    worker = rng.integers(0, num_workers, n)
    task = rng.integers(0, num_tasks, n)
    is_current = rng.random(n) < rng.random()
    quality = np.round(rng.uniform(0.0, 3.0, n), 1)
    cost = np.round(rng.uniform(0.0, 5.0, n), 1)
    cost_var = np.where(is_current, 0.0, np.round(rng.uniform(0.0, 2.0, n), 2))
    cost_lb = np.where(is_current, cost, np.maximum(cost - rng.uniform(0, 1, n), 0.0))
    cost_ub = np.where(is_current, cost, cost + rng.uniform(0, 1, n))
    quality_var = np.where(is_current, 0.0, rng.uniform(0, 1, n))
    quality_lb = np.where(is_current, quality, np.round(quality - rng.uniform(0, 1, n), 1))
    quality_ub = np.where(is_current, quality, np.round(quality + rng.uniform(0, 1, n), 1))
    return PairPool(
        worker, task, cost, cost_var, cost_lb, cost_ub,
        quality, quality_var, quality_lb, quality_ub,
        np.ones(n), is_current,
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    delta=st.sampled_from([0.1, 0.42, 0.5, 0.9]),
    cap=st.sampled_from([1, 4, 64]),
    dominance=st.booleans(),
    probability=st.booleans(),
    objective=st.sampled_from(["probability", "efficiency"]),
)
@settings(max_examples=80, deadline=None)
def test_engine_matches_rescan_loop(seed, delta, cap, dominance, probability, objective):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 350))
    pool = _random_pool(rng, n)
    config = GreedyConfig(
        delta=delta,
        candidate_cap=cap,
        use_dominance_pruning=dominance,
        use_probability_pruning=probability,
        selection_objective=objective,
    )
    budget_current = float(rng.uniform(0.0, 15.0))
    budget_max = budget_current + float(rng.uniform(0.0, 15.0))
    rows = np.unique(rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False))
    expected = _greedy_select_rescan(pool, rows, budget_current, budget_max, config)
    actual = triplet_greedy_select(pool, rows, budget_current, budget_max, config)
    assert actual is not None
    assert actual == expected


def test_extreme_delta_falls_back_to_rescan():
    rng = np.random.default_rng(0)
    pool = _random_pool(rng, 64)
    config = GreedyConfig(delta=1e-9)
    rows = np.arange(64, dtype=np.int64)
    assert triplet_greedy_select(pool, rows, 10.0, 20.0, config) is None
    # The public entry point transparently uses the rescan loop.
    assert greedy_select(pool, rows, 10.0, 20.0, config) == _greedy_select_rescan(
        pool, rows, 10.0, 20.0, config
    )


def test_greedy_select_dispatch_is_transparent():
    """Above the engine cutoff, the public API output is unchanged."""
    rng = np.random.default_rng(3)
    pool = _random_pool(rng, 4000)
    config = GreedyConfig()
    rows = np.arange(4000, dtype=np.int64)
    assert greedy_select(pool, rows, 20.0, 40.0, config) == _greedy_select_rescan(
        pool, rows, 20.0, 40.0, config
    )


class TestPhiThresholdShortcuts:
    """The z-threshold shortcuts are bit-identical to the formulas."""

    def test_budget_confidence_matches_direct_phi(self):
        rng = np.random.default_rng(0)
        for trial in range(150):
            n = 300
            cost_mean = rng.uniform(0, 10, n)
            cost_var = np.where(rng.random(n) < 0.5, 0.0, rng.uniform(1e-30, 4.0, n))
            zeros = np.zeros(n)
            zi = np.zeros(n, dtype=np.int64)
            zb = np.zeros(n, dtype=bool)
            pool = PairPool(
                zi, zi, cost_mean, cost_var, zeros, zeros,
                zeros, zeros, zeros, zeros, zeros, zb,
            )
            delta = float(rng.choice([0.0, 0.1, 0.5, 0.9, 0.9999, rng.random()]))
            budget_max = float(rng.uniform(0, 12))
            spent = float(rng.uniform(0, 6))
            rows = np.arange(n, dtype=np.int64)
            got = budget_confident_rows(pool, rows, spent, budget_max, delta)
            headroom = budget_max - spent - cost_mean
            deterministic = cost_var <= 1e-24
            std = np.sqrt(np.where(deterministic, 1.0, cost_var))
            prob = np.where(
                deterministic,
                (headroom >= 0.0).astype(float),
                phi_vec(headroom / std),
            )
            np.testing.assert_array_equal(got, rows[prob > delta], err_msg=str(trial))

    def test_band_boundary_is_exact(self):
        """Lanes densely packed around the threshold stay exact."""
        for delta in (1e-9, 0.1, 0.5, 0.9, 0.999999):
            thresholds = _phi_threshold(delta)
            center = 0.0 if thresholds is None else sum(thresholds) / 2
            z = center + np.linspace(-0.05, 0.05, 5001)
            variance = np.ones_like(z)
            cost = -z  # budget_max = spent = 0 -> headroom == z
            zeros = np.zeros_like(z)
            zi = np.zeros(z.size, dtype=np.int64)
            zb = np.zeros(z.size, dtype=bool)
            pool = PairPool(
                zi, zi, cost, variance, zeros, zeros,
                zeros, zeros, zeros, zeros, zeros, zb,
            )
            rows = np.arange(z.size, dtype=np.int64)
            got = budget_confident_rows(pool, rows, 0.0, 0.0, delta)
            np.testing.assert_array_equal(got, rows[phi_vec(z) > delta])

    def test_probability_prune_matches_direct_formulas(self):
        rng = np.random.default_rng(1)
        for trial in range(200):
            n = int(rng.integers(2, 70))
            quality = rng.choice([0.0, 0.5, 1.0], n) + rng.choice([0.0, 0.0, 0.001, 0.3], n)
            cost = rng.choice([0.0, 1.0], n) + rng.choice([0.0, 0.0, 0.01, 0.2], n)
            quality_var = rng.choice([0.0, 1e-10, 0.5, 2.0], n)
            cost_var = rng.choice([0.0, 1e-8, 1.0, 30.0], n)
            zeros = np.zeros(n)
            zi = np.zeros(n, dtype=np.int64)
            zb = np.zeros(n, dtype=bool)
            pool = PairPool(
                zi, zi, cost, cost_var, zeros, zeros,
                quality, quality_var, zeros, zeros, zeros, zb,
            )
            rows = np.arange(n, dtype=np.int64)
            got = probability_prune(pool, rows)
            quality_better = prob_greater_vec(
                quality[:, None], quality_var[:, None],
                quality[None, :], quality_var[None, :],
            )
            cost_better = prob_less_or_equal_vec(
                cost[:, None], cost_var[:, None], cost[None, :], cost_var[None, :]
            )
            worse_both = (quality_better < 0.5) & (cost_better < 0.5)
            np.fill_diagonal(worse_both, False)
            np.testing.assert_array_equal(
                got, rows[~worse_both.any(axis=1)], err_msg=str(trial)
            )


def test_engine_rejects_nothing_on_empty_rows():
    pool = PairPool.empty()
    assert greedy_select(pool, np.zeros(0, dtype=np.int64), 1.0, 2.0, GreedyConfig()) == []


@pytest.mark.parametrize("delta", [0.1, 0.5, 0.9])
def test_thresholds_are_cached_and_ordered(delta):
    lo, hi = _phi_threshold(delta)
    assert lo < hi
    assert _phi_threshold(delta) == (lo, hi)
