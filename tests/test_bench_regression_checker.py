"""The bench-regression gate fails on regressions and passes on truth.

Exercises ``benchmarks/check_bench_regression.py`` against synthetic
baseline/fresh directories — including the committed repo baselines
compared against themselves (which must always pass) and a corrupted
baseline (which must fail), the end-to-end proof the CI gate bites.
"""

from __future__ import annotations

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
CHECKER = REPO_ROOT / "benchmarks" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_bench_regression", CHECKER)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload), encoding="utf-8")


def _streaming_payload(events: float, ratio: float) -> dict:
    leg = {"events_per_second": events, "pair_ratio": ratio}
    return {
        "bench": "streaming",
        "pair_ratio_floor": 5.0,
        "no_prediction": dict(leg),
        "with_prediction": dict(leg),
    }


class TestStreamingRules:
    def test_identical_results_pass(self, checker, tmp_path):
        payload = _streaming_payload(5000.0, 6.4)
        _write(tmp_path / "base", "BENCH_streaming.json", payload)
        _write(tmp_path / "fresh", "BENCH_streaming.json", payload)
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0

    def test_events_drop_over_tolerance_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(3000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_events_drop_within_tolerance_passes(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(3600.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0

    def test_pair_ratio_below_recorded_floor_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 4.9))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_leg_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        broken = _streaming_payload(5000.0, 6.4)
        del broken["with_prediction"]
        _write(tmp_path / "fresh", "BENCH_streaming.json", broken)
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_file_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        (tmp_path / "fresh").mkdir()
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_phases_fails(self, checker, tmp_path):
        base = _streaming_payload(5000.0, 6.4)
        base["no_prediction"]["phases"] = {"mean_build_ms": 3.0}
        base["with_prediction"]["phases"] = {"mean_build_ms": 9.0}
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def _delta_payload(self, build_speedup: float, round_speedup: float = 1.4) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        payload["delta"] = {
            "build_speedup_floor": 3.0,
            "round_speedup_floor": 1.15,
            "steady_state_build_speedup": build_speedup,
            "round_speedup": round_speedup,
        }
        return payload

    def test_delta_build_speedup_below_floor_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._delta_payload(4.1))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._delta_payload(2.8))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_delta_round_speedup_below_floor_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._delta_payload(4.1))
        _write(
            tmp_path / "fresh", "BENCH_streaming.json",
            self._delta_payload(4.1, round_speedup=1.0),
        )
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_delta_drop_over_tolerance_fails_even_above_floor(self, checker, tmp_path):
        # 8.0 -> 4.0 is a 50% collapse of the speedup even though the
        # 3.0 floor still holds — the drop rule must catch it.
        _write(tmp_path / "base", "BENCH_streaming.json", self._delta_payload(8.0))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._delta_payload(4.0))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_delta_round_drop_over_tolerance_fails_even_above_floor(
        self, checker, tmp_path
    ):
        _write(
            tmp_path / "base", "BENCH_streaming.json",
            self._delta_payload(4.1, round_speedup=3.0),
        )
        _write(
            tmp_path / "fresh", "BENCH_streaming.json",
            self._delta_payload(4.1, round_speedup=1.6),
        )
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_delta_healthy_passes(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._delta_payload(4.1))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._delta_payload(3.9))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0

    def test_missing_fresh_delta_section_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._delta_payload(4.1))
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_sharded_section_fails(self, checker, tmp_path):
        """A baseline with a sharded section demands one in the fresh
        results — the scaling bench silently not running must fail."""
        base = _streaming_payload(5000.0, 6.4)
        base["sharded"] = {"serial": {"rounds_per_second": 0.5}}
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def _warm_select_payload(
        self, speedup: float, mean_speedup: float = 1.6
    ) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        payload["warm_select"] = {
            "select_speedup_floor": 2.0,
            "steady_state_select_speedup": speedup,
            "mean_select_speedup": mean_speedup,
            "cold": {"median_select_ms": 10.0},
            "warm": {"median_select_ms": 10.0 / speedup},
        }
        return payload

    def test_warm_select_healthy_passes(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._warm_select_payload(2.3))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._warm_select_payload(2.2))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0

    def test_warm_select_below_recorded_floor_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._warm_select_payload(2.3))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._warm_select_payload(1.8))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_warm_select_drop_over_tolerance_fails_even_above_floor(
        self, checker, tmp_path
    ):
        # 4.0 -> 2.4 still clears the 2.0 floor but is a >30% collapse
        # of the committed speedup — the drop rule must catch it.
        _write(tmp_path / "base", "BENCH_streaming.json", self._warm_select_payload(4.0))
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._warm_select_payload(2.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_warm_select_section_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._warm_select_payload(2.3))
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_warm_select_missing_speedup_figure_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._warm_select_payload(2.3))
        broken = self._warm_select_payload(2.3)
        del broken["warm_select"]["steady_state_select_speedup"]
        _write(tmp_path / "fresh", "BENCH_streaming.json", broken)
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_single_phase_key_fails(self, checker, tmp_path):
        """A phase present in the committed breakdown must keep being
        measured — a fresh breakdown lacking the select/finalize split
        (but still present) fails."""
        base = _streaming_payload(5000.0, 6.4)
        base["with_prediction"]["phases"] = {
            "mean_build_ms": 9.0, "mean_select_ms": 4.0, "mean_finalize_ms": 1.0,
        }
        fresh = _streaming_payload(5000.0, 6.4)
        fresh["with_prediction"]["phases"] = {"mean_build_ms": 9.0}
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", fresh)
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def _health_payload(
        self,
        delta_rate: float = 0.95,
        repair_rate: float = 0.68,
        accept_rate: float = 1.0,
        overhead: float = 1.005,
    ) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        payload["health"] = {
            "delta_incremental_rate": delta_rate,
            "delta_incremental_rate_floor": 0.85,
            "warm_select_repair_rate": repair_rate,
            "warm_select_repair_rate_floor": 0.5,
            "hungarian_warm_accept_rate": accept_rate,
            "hungarian_warm_accept_rate_floor": 0.5,
            "metrics_overhead_ratio": overhead,
            "metrics_overhead_ratio_ceil": 1.03,
        }
        return payload

    def test_health_healthy_passes(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._health_payload())
        _write(tmp_path / "fresh", "BENCH_streaming.json", self._health_payload(0.93))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta_rate": 0.7},     # prime/fallback storm in the delta cache
            {"repair_rate": 0.3},    # warm selection regressed to cold primes
            {"accept_rate": 0.2},    # Hungarian warm starts mostly rejected
            {"overhead": 1.08},      # metrics layer got expensive
        ],
        ids=["delta-rate", "repair-rate", "accept-rate", "overhead"],
    )
    def test_health_regression_fails(self, checker, tmp_path, kwargs):
        _write(tmp_path / "base", "BENCH_streaming.json", self._health_payload())
        _write(
            tmp_path / "fresh", "BENCH_streaming.json", self._health_payload(**kwargs)
        )
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_missing_fresh_health_section_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._health_payload())
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def test_health_missing_rate_figure_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_streaming.json", self._health_payload())
        broken = self._health_payload()
        del broken["health"]["warm_select_repair_rate"]
        _write(tmp_path / "fresh", "BENCH_streaming.json", broken)
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 1

    def _sharded_payload(
        self,
        k4_speedup: float = 2.1,
        k4_ipc: int | None = 800_000,
        scaling_asserted: bool = True,
        cpu_count: int = 8,
        ipc_ceil: int | None = 4_000_000,
    ) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        k4 = {
            "backend": "process",
            "num_shards": 4,
            "speedup_vs_serial": k4_speedup,
        }
        if k4_ipc is not None:
            k4["ipc_bytes_per_round"] = k4_ipc
        payload["sharded"] = {
            "cpu_count": cpu_count,
            "scaling_asserted": scaling_asserted,
            "scaling_floor": 1.8,
            "serial": {"rounds_per_second": 0.55},
            "variants": {"K4_process": k4},
        }
        if ipc_ceil is not None:
            payload["sharded"]["ipc_bytes_per_round_ceil"] = ipc_ceil
        return payload

    def _run_sharded(self, checker, tmp_path, base: dict, fresh: dict) -> int:
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", fresh)
        return checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )

    def test_sharded_healthy_passes(self, checker, tmp_path):
        rc = self._run_sharded(
            checker, tmp_path, self._sharded_payload(), self._sharded_payload(2.0)
        )
        assert rc == 0

    def test_sharded_ipc_over_recorded_ceiling_fails(self, checker, tmp_path):
        """Round messages swelling past the recorded per-round pipe
        budget — a regression from churn deltas back toward full
        pools — must trip the gate even when throughput looks fine."""
        rc = self._run_sharded(
            checker, tmp_path,
            self._sharded_payload(),
            self._sharded_payload(k4_ipc=9_000_000),
        )
        assert rc == 1

    def test_sharded_ipc_silently_dropped_fails(self, checker, tmp_path):
        rc = self._run_sharded(
            checker, tmp_path,
            self._sharded_payload(),
            self._sharded_payload(k4_ipc=None),
        )
        assert rc == 1

    def test_sharded_scaling_floor_armed_fails_below_floor(self, checker, tmp_path):
        """A fresh run that *asserted* scaling (>= 4 cores) is held to
        the absolute floor recorded in the baseline."""
        rc = self._run_sharded(
            checker, tmp_path,
            self._sharded_payload(),
            self._sharded_payload(k4_speedup=1.2),
        )
        assert rc == 1

    @pytest.mark.parametrize(
        "fresh_kwargs",
        [
            {"k4_speedup": 1.2, "scaling_asserted": False},
            {"k4_speedup": 1.2, "cpu_count": 2},
        ],
        ids=["not-asserted", "too-few-cores"],
    )
    def test_sharded_scaling_floor_disarmed_passes(
        self, checker, tmp_path, fresh_kwargs
    ):
        """A laptop run records its (noisy) speedups without being held
        to a parallelism bar the machine cannot reach."""
        rc = self._run_sharded(
            checker, tmp_path,
            self._sharded_payload(),
            self._sharded_payload(**fresh_kwargs),
        )
        assert rc == 0

    def test_missing_baseline_passes(self, checker, tmp_path):
        (tmp_path / "base").mkdir()
        _write(tmp_path / "fresh", "BENCH_streaming.json", _streaming_payload(5000.0, 6.4))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )
        assert rc == 0


class TestServingRules:
    @staticmethod
    def _serving_payload(
        *,
        tenants: int = 4,
        engaged: bool = True,
        bit_identical: bool = True,
        drop_wait: str | None = None,
        drop_recovery: str | None = None,
    ) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        wait_ms = {"p50": 0.1, "p95": 4.2, "p99": 18.0}
        if drop_wait:
            del wait_ms[drop_wait]
        recovery = {
            "bit_identical": bit_identical,
            "checkpoint_ms": 1.0,
            "recovery_ms": 2.5,
            "replayed_ops": 3,
        }
        if drop_recovery:
            del recovery[drop_recovery]
        payload["serving"] = {
            "tenants": tenants,
            "tenants_floor": 4,
            "admission": {
                "admitted": 300,
                "rejected_queue_full": 5,
                "engaged": engaged,
                "wait_ms": wait_ms,
            },
            "recovery": recovery,
        }
        return payload

    def _run(self, checker, tmp_path, base: dict, fresh: dict) -> int:
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", fresh)
        return checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )

    def test_healthy_serving_passes(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path, self._serving_payload(), self._serving_payload()
        )
        assert rc == 0

    def test_missing_fresh_serving_section_fails(self, checker, tmp_path):
        fresh = self._serving_payload()
        del fresh["serving"]
        rc = self._run(checker, tmp_path, self._serving_payload(), fresh)
        assert rc == 1

    def test_recovery_not_bit_identical_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._serving_payload(),
            self._serving_payload(bit_identical=False),
        )
        assert rc == 1

    def test_admission_not_engaged_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._serving_payload(),
            self._serving_payload(engaged=False),
        )
        assert rc == 1

    def test_tenants_below_recorded_floor_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._serving_payload(),
            self._serving_payload(tenants=3),
        )
        assert rc == 1

    def test_missing_wait_percentile_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._serving_payload(),
            self._serving_payload(drop_wait="p99"),
        )
        assert rc == 1

    def test_missing_recovery_timing_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._serving_payload(),
            self._serving_payload(drop_recovery="recovery_ms"),
        )
        assert rc == 1

    def test_no_serving_baseline_passes(self, checker, tmp_path):
        """First run: the fresh side introduces the section."""
        rc = self._run(
            checker, tmp_path, _streaming_payload(5000.0, 6.4), self._serving_payload()
        )
        assert rc == 0


class TestResilienceRules:
    @staticmethod
    def _resilience_payload(
        *,
        completed: bool = True,
        rounds_to_recover: float = 1.0,
        overhead: float = 1.05,
        ceil: float = 1.5,
        drop: str | None = None,
    ) -> dict:
        payload = _streaming_payload(5000.0, 6.4)
        section = {
            "num_shards": 2,
            "faults_injected": 2,
            "completed_with_faults": completed,
            "respawns": 2,
            "respawn_seconds": 0.02,
            "rounds_to_recover": rounds_to_recover,
            "deadline_overhead_ratio": overhead,
            "deadline_overhead_ceil": ceil,
        }
        if drop:
            del section[drop]
        payload["resilience"] = section
        return payload

    def _run(self, checker, tmp_path, base: dict, fresh: dict) -> int:
        _write(tmp_path / "base", "BENCH_streaming.json", base)
        _write(tmp_path / "fresh", "BENCH_streaming.json", fresh)
        return checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_streaming.json"]
        )

    def test_healthy_resilience_passes(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._resilience_payload(), self._resilience_payload(),
        )
        assert rc == 0

    def test_missing_fresh_resilience_section_fails(self, checker, tmp_path):
        fresh = self._resilience_payload()
        del fresh["resilience"]
        rc = self._run(checker, tmp_path, self._resilience_payload(), fresh)
        assert rc == 1

    def test_not_completed_with_faults_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._resilience_payload(),
            self._resilience_payload(completed=False),
        )
        assert rc == 1

    def test_rounds_to_recover_regression_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._resilience_payload(rounds_to_recover=1.0),
            self._resilience_payload(rounds_to_recover=2.0),
        )
        assert rc == 1

    def test_overhead_past_recorded_ceiling_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._resilience_payload(ceil=1.5),
            self._resilience_payload(overhead=1.8),
        )
        assert rc == 1

    def test_missing_respawn_timing_fails(self, checker, tmp_path):
        rc = self._run(
            checker, tmp_path,
            self._resilience_payload(),
            self._resilience_payload(drop="respawn_seconds"),
        )
        assert rc == 1

    def test_no_resilience_baseline_passes(self, checker, tmp_path):
        """First run: the fresh side introduces the section."""
        rc = self._run(
            checker, tmp_path,
            _streaming_payload(5000.0, 6.4), self._resilience_payload(),
        )
        assert rc == 0


class TestMatchingRules:
    @staticmethod
    def _payload(speedup: float, floor: float = 5.0) -> dict:
        return {
            "bench": "matching",
            "speedup_at_500": speedup,
            "speedup_floor": floor,
        }

    def test_floor_violation_fails(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_matching.json", self._payload(8.0))
        _write(tmp_path / "fresh", "BENCH_matching.json", self._payload(4.5))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_matching.json"]
        )
        assert rc == 1

    def test_drop_over_tolerance_fails_even_above_floor(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_matching.json", self._payload(10.0))
        _write(tmp_path / "fresh", "BENCH_matching.json", self._payload(6.0))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_matching.json"]
        )
        assert rc == 1

    def test_healthy_results_pass(self, checker, tmp_path):
        _write(tmp_path / "base", "BENCH_matching.json", self._payload(8.0))
        _write(tmp_path / "fresh", "BENCH_matching.json", self._payload(7.8))
        rc = checker.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh"),
             "--bench", "BENCH_matching.json"]
        )
        assert rc == 0


class TestAgainstCommittedBaselines:
    """End-to-end over the real committed files."""

    def test_committed_baselines_pass_against_themselves(self, checker, tmp_path):
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 0

    def test_corrupted_baseline_fails(self, checker, tmp_path):
        """Synthetic regression: inflate the committed baseline so the
        repo's own fresh numbers look like a >30% collapse — the gate
        must fire (this is the CI-bites proof the issue asks for)."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        corrupted = json.loads((base / "BENCH_streaming.json").read_text())
        corrupted["no_prediction"]["events_per_second"] *= 10.0
        (base / "BENCH_streaming.json").write_text(json.dumps(corrupted))
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 1

    def test_corrupted_health_baseline_fails(self, checker, tmp_path):
        """Raising the recorded health floor above the repo's own fresh
        rate must trip the gate — the proof the health checks bite on
        the real committed file, not just synthetic payloads."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        corrupted = json.loads((base / "BENCH_streaming.json").read_text())
        assert "health" in corrupted, "committed baseline lost its health section"
        corrupted["health"]["delta_incremental_rate_floor"] = 0.999
        (base / "BENCH_streaming.json").write_text(json.dumps(corrupted))
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 1

    def test_corrupted_ipc_ceiling_baseline_fails(self, checker, tmp_path):
        """Lowering the recorded IPC ceiling below the repo's own fresh
        per-round pipe bytes must trip the gate — the proof the IPC
        budget bites on the real committed file."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        corrupted = json.loads((base / "BENCH_streaming.json").read_text())
        sharded = corrupted.get("sharded")
        assert sharded, "committed baseline lost its sharded section"
        fresh_ipc = [
            v["ipc_bytes_per_round"]
            for v in sharded["variants"].values()
            if v.get("ipc_bytes_per_round")
        ]
        assert fresh_ipc, "committed sharded section records no IPC figures"
        sharded["ipc_bytes_per_round_ceil"] = min(fresh_ipc) - 1
        (base / "BENCH_streaming.json").write_text(json.dumps(corrupted))
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 1

    def test_corrupted_serving_baseline_fails(self, checker, tmp_path):
        """Raising the recorded tenant floor above the repo's own fresh
        tenant count must trip the gate — the proof the serving checks
        bite on the real committed file."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        corrupted = json.loads((base / "BENCH_streaming.json").read_text())
        serving = corrupted.get("serving")
        assert serving, "committed baseline lost its serving section"
        serving["tenants_floor"] = serving["tenants"] + 1
        (base / "BENCH_streaming.json").write_text(json.dumps(corrupted))
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 1

    def test_corrupted_resilience_baseline_fails(self, checker, tmp_path):
        """Lowering the recorded deadline-overhead ceiling below the
        repo's own fresh ratio must trip the gate — the proof the
        resilience checks bite on the real committed file."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        corrupted = json.loads((base / "BENCH_streaming.json").read_text())
        resilience = corrupted.get("resilience")
        assert resilience, "committed baseline lost its resilience section"
        resilience["deadline_overhead_ceil"] = (
            json.loads((REPO_ROOT / "BENCH_streaming.json").read_text())[
                "resilience"
            ]["deadline_overhead_ratio"]
            / 2.0
        )
        (base / "BENCH_streaming.json").write_text(json.dumps(corrupted))
        rc = checker.main(["--baseline", str(base), "--fresh", str(REPO_ROOT)])
        assert rc == 1

    def test_committed_scaling_floor_is_armed_on_capable_runs(self, checker, tmp_path):
        """The committed baseline records the scaling floor that arms
        on >= 4-core scaling-asserted runs: a fresh result asserting
        scaling below that floor must fail against the real file."""
        base = tmp_path / "base"
        base.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, base / name)
        committed = json.loads((base / "BENCH_streaming.json").read_text())
        floor = committed["sharded"].get("scaling_floor")
        assert floor is not None, "committed baseline lost its scaling floor"
        fresh = json.loads(json.dumps(committed))
        fresh["sharded"]["scaling_asserted"] = True
        fresh["sharded"]["cpu_count"] = checker._SCALING_MIN_CORES
        fresh["sharded"]["variants"]["K4_process"]["speedup_vs_serial"] = (
            floor - 0.5
        )
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        for name in checker.BENCH_FILES:
            shutil.copy(REPO_ROOT / name, fresh_dir / name)
        (fresh_dir / "BENCH_streaming.json").write_text(json.dumps(fresh))
        rc = checker.main(["--baseline", str(base), "--fresh", str(fresh_dir)])
        assert rc == 1

    def test_tolerance_validation(self, checker, tmp_path):
        with pytest.raises(SystemExit):
            checker.main(
                ["--baseline", str(tmp_path), "--fresh", str(tmp_path),
                 "--tolerance", "1.5"]
            )
