"""Tests for repro.experiments.runner."""

import pytest

from repro.experiments.config import scaled_config
from repro.experiments.runner import (
    AlgorithmSpec,
    FigureResult,
    SeriesPoint,
    run_figure,
    run_simulation,
    standard_algorithms,
    wp_wop_algorithms,
)
from repro.core.random_assign import RandomAssigner
from repro.workloads.synthetic import SyntheticWorkload

SCALE = 0.02  # tiny: 100 workers/tasks over 15 instances


def tiny_config():
    return scaled_config(SCALE, seed=3)


class TestAlgorithmSets:
    def test_standard_labels(self):
        assert [s.label for s in standard_algorithms()] == ["GREEDY", "D&C", "RANDOM"]

    def test_wp_wop_labels(self):
        labels = [s.label for s in wp_wop_algorithms()]
        assert labels == [
            "GREEDY_WP", "D&C_WP", "RANDOM_WP",
            "GREEDY_WoP", "D&C_WoP", "RANDOM_WoP",
        ]
        modes = [s.use_prediction for s in wp_wop_algorithms()]
        assert modes == [True, True, True, False, False, False]


class TestRunSimulation:
    def test_single_cell(self):
        config = tiny_config()
        workload = SyntheticWorkload(config.params, seed=config.seed)
        spec = AlgorithmSpec("RANDOM", RandomAssigner, use_prediction=False)
        result = run_simulation(workload, spec, config)
        assert len(result.instances) == config.params.num_instances


class TestRunFigure:
    def test_sweep_structure(self):
        result = run_figure(
            figure_id="test",
            title="test sweep",
            x_name="B",
            x_values=[2.0, 4.0],
            make_workload=lambda x, c: SyntheticWorkload(c.params, seed=c.seed),
            make_config=lambda x: tiny_config().with_fields(budget=float(x)),
            algorithms=[AlgorithmSpec("RANDOM", RandomAssigner, use_prediction=False)],
        )
        assert result.x_labels == ["2.0", "4.0"]
        assert result.algorithms == ["RANDOM"]
        assert len(result.points) == 2

    def test_series_and_point_lookup(self):
        result = run_figure(
            figure_id="test",
            title="t",
            x_name="B",
            x_values=[2.0, 6.0],
            make_workload=lambda x, c: SyntheticWorkload(c.params, seed=c.seed),
            make_config=lambda x: tiny_config().with_fields(budget=float(x)),
            algorithms=[AlgorithmSpec("RANDOM", RandomAssigner, use_prediction=False)],
            x_formatter=lambda b: f"{b:g}",
        )
        series = result.series("RANDOM", "quality")
        assert len(series) == 2
        assert series[0] <= series[1] + 1e-9  # more budget, more quality
        point = result.point("2", "RANDOM")
        assert isinstance(point, SeriesPoint)
        with pytest.raises(KeyError):
            result.point("2", "NOPE")

    def test_workload_shared_across_algorithms(self):
        """Both algorithms must see identical workloads per x value."""
        created = []

        def make_workload(x, config):
            workload = SyntheticWorkload(config.params, seed=config.seed)
            created.append(workload)
            return workload

        run_figure(
            figure_id="t", title="t", x_name="x",
            x_values=[1.0],
            make_workload=make_workload,
            make_config=lambda x: tiny_config(),
            algorithms=[
                AlgorithmSpec("A", RandomAssigner, use_prediction=False),
                AlgorithmSpec("B", RandomAssigner, use_prediction=False),
            ],
        )
        assert len(created) == 1
