"""Direct tests for repro.core.greedy_reference.

The reference implementation is itself a deliverable (the semantic
anchor for the vectorized greedy), so it gets its own invariant tests
in addition to the equality checks in test_core_greedy.
"""

import numpy as np

from repro.core.greedy import GreedyConfig
from repro.core.greedy_reference import ReferenceGreedy

from repro.testing import make_problem

RNG = np.random.default_rng(0)


class TestReferenceGreedy:
    def test_invariants(self):
        problem = make_problem(seed=8, num_workers=8, num_tasks=7)
        result = ReferenceGreedy().assign(problem, 8.0, 0.0, RNG)
        workers = [p.worker.id for p in result.pairs]
        tasks = [p.task.id for p in result.pairs]
        assert len(set(workers)) == len(workers)
        assert len(set(tasks)) == len(tasks)
        assert result.total_cost <= 8.0 + 1e-6

    def test_empty_problem(self):
        problem = make_problem(num_workers=0, num_tasks=0)
        assert ReferenceGreedy().assign(problem, 5.0, 0.0, RNG).pairs == []

    def test_respects_config(self):
        problem = make_problem(seed=8, num_workers=8, num_tasks=7)
        config = GreedyConfig(
            use_dominance_pruning=False, use_probability_pruning=False,
            candidate_cap=1000,
        )
        result = ReferenceGreedy(config).assign(problem, 8.0, 0.0, RNG)
        assert result.total_cost <= 8.0 + 1e-6

    def test_zero_budget(self):
        problem = make_problem(seed=8)
        result = ReferenceGreedy().assign(problem, 0.0, 0.0, RNG)
        assert result.pairs == []

    def test_cap_limits_candidates(self):
        problem = make_problem(seed=8, num_workers=10, num_tasks=10)
        capped = ReferenceGreedy(GreedyConfig(candidate_cap=1)).assign(
            problem, 10.0, 0.0, RNG
        )
        # With cap 1 each iteration picks the single top-quality pair;
        # the result is a valid matching.
        workers = [p.worker.id for p in capped.pairs]
        assert len(set(workers)) == len(workers)
