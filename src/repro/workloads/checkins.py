"""Check-in records: synthesis, loading, and saving.

The paper configures workers from Gowalla check-ins and tasks from
Foursquare check-ins inside San Francisco.  Those datasets are not
redistributable here, so :func:`generate_checkins` synthesizes streams
with the statistical features the experiments actually consume (see
DESIGN.md):

- a Gaussian-hotspot mixture over the city bounding box (skewed,
  multi-modal spatial density);
- power-law user activity (a few heavy users, a long tail);
- non-stationary temporal intensity: hotspot popularity drifts over
  the collection span and a daily cycle modulates arrival times —
  this drift is what makes "real" prediction error grow with window
  size ``w`` in Fig. 10.

:func:`load_gowalla_checkins` parses the genuine Gowalla/Brightkite
TSV layout (``user <tab> iso-time <tab> lat <tab> lon <tab> place``),
so users holding the real data can swap it in.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

# The paper's San Francisco extraction window (its printed latitude /
# longitude pairs are transposed; these are the intended bounds).
SAN_FRANCISCO_BOUNDS = (37.709, 37.839, -122.503, -122.373)

_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True, slots=True)
class CheckinRecord:
    """One check-in: a user at a place at a time.

    Attributes:
        user_id: pseudonymous user identifier.
        time: seconds since the start of the collection span.
        latitude / longitude: WGS84 coordinates.
    """

    user_id: int
    time: float
    latitude: float
    longitude: float


@dataclass(frozen=True)
class CheckinGeneratorConfig:
    """Knobs of the synthetic check-in generator.

    Attributes:
        num_records: total check-ins to produce.
        num_users: distinct users; activity is Zipf(``user_skew``).
        num_hotspots: Gaussian mixture components.
        hotspot_std_fraction: hotspot spread as a fraction of the
            bounding-box diagonal.
        drift_amplitude: how strongly hotspot popularity drifts across
            the span (0 = stationary).
        daily_cycle_amplitude: strength of the within-day intensity
            cycle.
        span_days: length of the collection span.
        bounds: ``(lat_min, lat_max, lon_min, lon_max)``.
        user_skew: Zipf exponent of user activity.
        stability: fraction of check-ins allocated to hotspots by a
            deterministic largest-remainder quota (people revisiting
            their haunts) rather than an independent draw; high values
            give the temporally stable per-cell counts real check-in
            data exhibits (and Fig. 10's small errors require).
    """

    num_records: int = 10000
    num_users: int = 1000
    num_hotspots: int = 8
    hotspot_std_fraction: float = 0.025
    drift_amplitude: float = 0.25
    daily_cycle_amplitude: float = 0.3
    span_days: float = 30.0
    bounds: tuple[float, float, float, float] = SAN_FRANCISCO_BOUNDS
    user_skew: float = 1.1
    stability: float = 0.98

    def __post_init__(self) -> None:
        if not 0.0 <= self.stability <= 1.0:
            raise ValueError("stability must be in [0, 1]")
        if self.num_records < 0:
            raise ValueError("num_records must be non-negative")
        if self.num_users < 1:
            raise ValueError("need at least one user")
        if self.num_hotspots < 1:
            raise ValueError("need at least one hotspot")
        if not 0.0 <= self.drift_amplitude < 1.0:
            raise ValueError("drift_amplitude must be in [0, 1)")
        if not 0.0 <= self.daily_cycle_amplitude < 1.0:
            raise ValueError("daily_cycle_amplitude must be in [0, 1)")
        lat_min, lat_max, lon_min, lon_max = self.bounds
        if lat_min >= lat_max or lon_min >= lon_max:
            raise ValueError(f"malformed bounds {self.bounds}")


def generate_checkins(
    config: CheckinGeneratorConfig, rng: np.random.Generator
) -> list[CheckinRecord]:
    """Synthesize a check-in stream per the generator config.

    The model mirrors what makes real check-in data predictable: the
    popularity of a *place* is temporally stable (people revisit the
    same haunts), so per-area check-in counts are smooth in time;
    non-stationarity enters through a slow popularity drift with
    hotspot-specific phases, which is what makes wide prediction
    windows slightly stale on worker data (Fig. 10's real-data trend).

    Concretely, a hotspot mixture induces a base intensity field over
    a fine internal grid; each (time-ordered) check-in is allocated to
    a cell by a largest-remainder quota stream over the drifting field
    (with a ``1 - stability`` fraction of independent draws as noise)
    and placed uniformly inside the cell.  User ids are Zipf-activity
    metadata.  The allocation is O(num_records x cells); intended for
    the tens of thousands of records the experiments use.
    """
    n = config.num_records
    if n == 0:
        return []
    lat_min, lat_max, lon_min, lon_max = config.bounds
    span_seconds = config.span_days * _SECONDS_PER_DAY

    # Hotspot mixture -> base intensity field over the internal grid.
    centers_lat = rng.uniform(lat_min, lat_max, size=config.num_hotspots)
    centers_lon = rng.uniform(lon_min, lon_max, size=config.num_hotspots)
    base_weights = rng.dirichlet(np.ones(config.num_hotspots) * 2.0)
    phases = rng.uniform(0.0, 2.0 * math.pi, size=config.num_hotspots)

    resolution = _FIELD_RESOLUTION
    diagonal = math.hypot(lat_max - lat_min, lon_max - lon_min)
    std = config.hotspot_std_fraction * diagonal
    draws_per_field = 20000
    hotspot_of_draw = rng.choice(config.num_hotspots, size=draws_per_field, p=base_weights)
    draw_lat = np.clip(
        centers_lat[hotspot_of_draw] + rng.normal(0.0, std, size=draws_per_field),
        lat_min, lat_max,
    )
    draw_lon = np.clip(
        centers_lon[hotspot_of_draw] + rng.normal(0.0, std, size=draws_per_field),
        lon_min, lon_max,
    )
    rows = np.minimum(
        ((draw_lat - lat_min) / (lat_max - lat_min) * resolution).astype(int),
        resolution - 1,
    )
    cols = np.minimum(
        ((draw_lon - lon_min) / (lon_max - lon_min) * resolution).astype(int),
        resolution - 1,
    )
    cells_of_draws = rows * resolution + cols
    field = np.bincount(cells_of_draws, minlength=resolution * resolution).astype(float)
    field /= field.sum()

    # Each cell drifts with the phase of its dominant hotspot (cells
    # near the same hotspot rise and fall together).
    cell_phase = np.zeros(resolution * resolution)
    cell_rows, cell_cols = np.divmod(np.arange(resolution * resolution), resolution)
    cell_lat = lat_min + (cell_rows + 0.5) / resolution * (lat_max - lat_min)
    cell_lon = lon_min + (cell_cols + 0.5) / resolution * (lon_max - lon_min)
    nearest = np.argmin(
        (cell_lat[:, None] - centers_lat[None, :]) ** 2
        + (cell_lon[:, None] - centers_lon[None, :]) ** 2,
        axis=1,
    )
    cell_phase = phases[nearest]

    # Arrival times: daily cycle via thinning (rejection sampling).
    times = np.sort(_sample_times(rng, n, span_seconds, config.daily_cycle_amplitude))
    progress = times / span_seconds  # 0..1 across the span

    cells = _allocate_cells(
        rng, progress, field, cell_phase, config.drift_amplitude, config.stability
    )

    # Uniform placement inside the allocated cell.
    cell_rows_of = cells // resolution
    cell_cols_of = cells % resolution
    lats = lat_min + (cell_rows_of + rng.uniform(0.0, 1.0, size=n)) / resolution * (
        lat_max - lat_min
    )
    lons = lon_min + (cell_cols_of + rng.uniform(0.0, 1.0, size=n)) / resolution * (
        lon_max - lon_min
    )

    # User ids: Zipf-activity metadata (not used for placement).
    user_ranks = np.arange(1, config.num_users + 1, dtype=float)
    user_weights = 1.0 / np.power(user_ranks, config.user_skew)
    users = rng.choice(
        config.num_users, size=n, p=user_weights / user_weights.sum()
    )

    records = [
        CheckinRecord(
            user_id=int(u), time=float(t), latitude=float(la), longitude=float(lo)
        )
        for u, t, la, lo in zip(users, times, lats, lons)
    ]
    records.sort(key=lambda r: r.time)
    return records


# Internal intensity-field resolution of the check-in generator.  A
# multiple of the default prediction grid (gamma = 10) so that, when
# the workload maps the bounding box onto the unit square with the same
# bounds, every prediction cell is an exact union of generator cells —
# a prerequisite for the temporal count stability the generator builds.
_FIELD_RESOLUTION = 20


def _allocate_cells(
    rng: np.random.Generator,
    progress: np.ndarray,
    field: np.ndarray,
    cell_phase: np.ndarray,
    drift_amplitude: float,
    stability: float,
) -> np.ndarray:
    """Assign each (time-ordered) check-in to an intensity-field cell.

    With probability ``stability`` the check-in goes to the cell with
    the largest running quota (cumulative drifting target share minus
    check-ins already placed) — keeping per-cell counts tightly
    aligned with the drifting field; otherwise it is an independent
    draw from the current field (the noise component).
    """
    n = progress.size
    allocation = np.empty(n, dtype=np.int64)
    target = np.zeros(field.size)
    allocated = np.zeros(field.size)
    noise = rng.uniform(0.0, 1.0, size=n) >= stability
    noisy_draws = rng.uniform(0.0, 1.0, size=n)
    two_pi = 2.0 * math.pi
    for i in range(n):
        weights = field * (1.0 + drift_amplitude * np.sin(two_pi * progress[i] + cell_phase))
        weights_sum = weights.sum()
        target += weights / weights_sum
        if noise[i]:
            cumulative = np.cumsum(weights)
            chosen = int(np.searchsorted(cumulative, noisy_draws[i] * weights_sum))
            chosen = min(chosen, field.size - 1)
        else:
            chosen = int(np.argmax(target - allocated))
        allocated[chosen] += 1.0
        allocation[i] = chosen
    return allocation


def _sample_times(
    rng: np.random.Generator, n: int, span_seconds: float, cycle_amplitude: float
) -> np.ndarray:
    """Arrival times with a daily intensity cycle, sampled systematically.

    Times are the inverse-CDF of the cyclic intensity evaluated at
    evenly spaced quantiles (with one shared random offset).  Compared
    to i.i.d. draws, this removes the ~1/sqrt(n) noise in per-interval
    totals — matching the smooth aggregate usage real platforms show —
    while preserving the within-day cycle shape.
    """
    if n == 0:
        return np.empty(0)
    grid = np.linspace(0.0, span_seconds, 4096)
    day_phase = (grid % _SECONDS_PER_DAY) / _SECONDS_PER_DAY
    intensity = 1.0 + cycle_amplitude * np.sin(2.0 * math.pi * day_phase)
    cumulative = np.concatenate([[0.0], np.cumsum((intensity[1:] + intensity[:-1]) / 2.0)])
    cumulative /= cumulative[-1]
    quantiles = (np.arange(n) + rng.uniform(0.0, 1.0)) / n
    return np.interp(quantiles, cumulative, grid)


def load_gowalla_checkins(
    path: str | Path,
    bounds: tuple[float, float, float, float] | None = None,
    limit: int | None = None,
) -> list[CheckinRecord]:
    """Parse the Gowalla/Brightkite SNAP TSV check-in layout.

    Lines look like ``196514  2010-07-24T13:45:06Z  53.36  -2.27  145064``.
    Times become seconds relative to the earliest parsed record.

    Args:
        path: the TSV file.
        bounds: optional ``(lat_min, lat_max, lon_min, lon_max)``
            filter (the paper restricts to San Francisco).
        limit: optional cap on the number of records parsed.
    """
    raw: list[tuple[int, float, float, float]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            fields = line.rstrip("\n").split("\t")
            if len(fields) < 4:
                continue
            try:
                user = int(fields[0])
                timestamp = datetime.fromisoformat(
                    fields[1].replace("Z", "+00:00")
                ).astimezone(timezone.utc)
                latitude = float(fields[2])
                longitude = float(fields[3])
            except (ValueError, IndexError):
                continue  # malformed line: skip rather than abort a 6M-line file
            if bounds is not None:
                lat_min, lat_max, lon_min, lon_max = bounds
                if not (lat_min <= latitude <= lat_max and lon_min <= longitude <= lon_max):
                    continue
            raw.append((user, timestamp.timestamp(), latitude, longitude))
            if limit is not None and len(raw) >= limit:
                break
    if not raw:
        return []
    earliest = min(r[1] for r in raw)
    records = [
        CheckinRecord(user_id=u, time=t - earliest, latitude=la, longitude=lo)
        for u, t, la, lo in raw
    ]
    records.sort(key=lambda r: r.time)
    return records


def load_foursquare_checkins(
    path: str | Path,
    bounds: tuple[float, float, float, float] | None = None,
    limit: int | None = None,
) -> list[CheckinRecord]:
    """Parse the Foursquare (Yang et al.) TSV check-in layout.

    Lines look like::

        470	49bbd6c0f964a520f4531fe3	4bf58...	Bar	40.73	-74.00	-240	Tue Apr 03 18:00:06 +0000 2012

    i.e. ``user <tab> venue <tab> category id <tab> category <tab> lat
    <tab> lon <tab> tz offset <tab> ctime``.  Times become seconds
    relative to the earliest parsed record; malformed lines are
    skipped.

    Args:
        path: the TSV file.
        bounds: optional ``(lat_min, lat_max, lon_min, lon_max)``
            filter (the paper restricts to San Francisco).
        limit: optional cap on the number of records parsed.
    """
    raw: list[tuple[int, float, float, float]] = []
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            fields = line.rstrip("\n").split("\t")
            if len(fields) < 8:
                continue
            try:
                user = int(fields[0])
                latitude = float(fields[4])
                longitude = float(fields[5])
                timestamp = datetime.strptime(
                    fields[7], "%a %b %d %H:%M:%S %z %Y"
                )
            except (ValueError, IndexError):
                continue
            if bounds is not None:
                lat_min, lat_max, lon_min, lon_max = bounds
                if not (lat_min <= latitude <= lat_max and lon_min <= longitude <= lon_max):
                    continue
            raw.append((user, timestamp.timestamp(), latitude, longitude))
            if limit is not None and len(raw) >= limit:
                break
    if not raw:
        return []
    earliest = min(r[1] for r in raw)
    records = [
        CheckinRecord(user_id=u, time=t - earliest, latitude=la, longitude=lo)
        for u, t, la, lo in raw
    ]
    records.sort(key=lambda r: r.time)
    return records


def save_checkins(records: list[CheckinRecord], path: str | Path) -> None:
    """Write records as CSV (round-trips with :func:`load_checkins_csv`)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "time", "latitude", "longitude"])
        for record in records:
            writer.writerow(
                [record.user_id, record.time, record.latitude, record.longitude]
            )


def load_checkins_csv(path: str | Path) -> list[CheckinRecord]:
    """Read records written by :func:`save_checkins`."""
    records: list[CheckinRecord] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            records.append(
                CheckinRecord(
                    user_id=int(row["user_id"]),
                    time=float(row["time"]),
                    latitude=float(row["latitude"]),
                    longitude=float(row["longitude"]),
                )
            )
    records.sort(key=lambda r: r.time)
    return records
