"""2-D spatial samplers: Uniform, Gaussian, Zipf (Section VI).

The paper's synthetic experiments place workers/tasks in ``[0, 1]^2``
following Uniform, Gaussian ``N(0.5, 1^2)`` (truncated to the square),
or Zipf (skew 0.3) distributions, and exercise all nine worker x task
combinations (Figs. 18-19).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class SpatialSampler(Protocol):
    """Draws points in the unit square."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Return a ``(size, 2)`` array of coordinates in ``[0, 1]^2``."""
        ...


def truncated_gaussian(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: float,
    high: float,
    size: int,
) -> np.ndarray:
    """Gaussian samples rejected outside ``[low, high]``.

    Used for locations (``N(0.5, 1)`` on each axis), worker velocities
    (``N((v-+v+)/2, (v+-v-)^2)`` within ``[v-, v+]``) and quality
    scores.  Rejection keeps the shape exact; a degenerate interval or
    zero std returns the clipped mean.
    """
    if low > high:
        raise ValueError(f"empty truncation interval [{low}, {high}]")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if std <= 0.0 or low == high:
        return np.full(size, min(max(mean, low), high))

    out = np.empty(size)
    filled = 0
    while filled < size:
        # Oversample: acceptance can be low when the interval sits in
        # the tail, so scale the batch by a rough acceptance estimate.
        needed = size - filled
        batch = rng.normal(mean, std, size=max(needed * 4, 16))
        accepted = batch[(batch >= low) & (batch <= high)]
        take = accepted[:needed]
        out[filled : filled + take.size] = take
        filled += take.size
    return out


class UniformSampler:
    """Uniform over the unit square."""

    name = "uniform"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(0.0, 1.0, size=(size, 2))

    def __repr__(self) -> str:
        return "UniformSampler()"


class GaussianSampler:
    """Axis-independent truncated Gaussian, the paper's ``N(0.5, 1^2)``."""

    name = "gaussian"

    def __init__(self, mean: float = 0.5, std: float = 1.0) -> None:
        if std <= 0.0:
            raise ValueError(f"std must be positive, got {std}")
        self._mean = mean
        self._std = std

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        xs = truncated_gaussian(rng, self._mean, self._std, 0.0, 1.0, size)
        ys = truncated_gaussian(rng, self._mean, self._std, 0.0, 1.0, size)
        return np.column_stack([xs, ys])

    def __repr__(self) -> str:
        return f"GaussianSampler(mean={self._mean}, std={self._std})"


class ZipfSampler:
    """Zipf-skewed spatial distribution over a coarse cell ranking.

    The unit square is divided into ``resolution^2`` cells; cell ranks
    follow a fixed space-filling order and cell probabilities are
    proportional to ``1 / rank^skew``.  A sample picks a cell by that
    law and a uniform point inside it.  With the paper's skew 0.3 this
    yields a mildly skewed density concentrated toward low-rank cells.
    """

    name = "zipf"

    def __init__(self, skew: float = 0.3, resolution: int = 10) -> None:
        if skew < 0.0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self._skew = skew
        self._resolution = resolution
        ranks = np.arange(1, resolution * resolution + 1, dtype=float)
        weights = 1.0 / np.power(ranks, skew)
        self._probabilities = weights / weights.sum()

    @property
    def skew(self) -> float:
        return self._skew

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        cells = rng.choice(self._probabilities.size, size=size, p=self._probabilities)
        rows, cols = np.divmod(cells, self._resolution)
        side = 1.0 / self._resolution
        xs = (cols + rng.uniform(0.0, 1.0, size=size)) * side
        ys = (rows + rng.uniform(0.0, 1.0, size=size)) * side
        return np.column_stack([xs, ys])

    def __repr__(self) -> str:
        return f"ZipfSampler(skew={self._skew}, resolution={self._resolution})"


def make_sampler(name: str, zipf_skew: float = 0.3) -> SpatialSampler:
    """Sampler factory: ``uniform`` / ``gaussian`` / ``zipf``.

    Single-letter aliases (``U``/``G``/``Z``) match the distribution-
    combination labels of Figs. 18-19.
    """
    key = name.strip().lower()
    if key in ("uniform", "u"):
        return UniformSampler()
    if key in ("gaussian", "g"):
        return GaussianSampler()
    if key in ("zipf", "z"):
        return ZipfSampler(skew=zipf_skew)
    raise ValueError(f"unknown spatial distribution {name!r}")
