"""Streaming scenario workloads: bursty arrivals and drifting hotspots.

The Table IV synthetic streams spread arrivals smoothly, which is the
friendliest possible shape for a fixed per-instance budget.  Online
services see harsher traffic, and these two scenarios model the
canonical failure modes:

- :class:`BurstyWorkload` — long quiet stretches punctuated by
  synchronized arrival spikes (a concert lets out; a flash sale
  starts).  Stress-tests micro-batch cadence and budget pacing.
- :class:`DriftingHotspotWorkload` — demand concentrated in a compact
  hotspot that migrates across the region over time (lunch crowd
  moving between districts).  Stress-tests the spatial index and the
  grid predictor's ability to track non-stationary fields.

Both implement the :class:`~repro.workloads.base.Workload` protocol,
so they run unchanged through the batch engine, the streaming engine,
and the differential tests between them.  Entities are generated
eagerly and deterministically per seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.workloads.base import WorkloadParams
from repro.workloads.quality import HashQualityModel
from repro.workloads.synthetic import _largest_remainder_round
from repro.workloads.distributions import make_sampler, truncated_gaussian


class _GeneratedStream:
    """Shared eager-generation machinery for the streaming scenarios.

    Subclasses provide per-instance arrival weights and a location
    sampler; this base splits the entity totals, draws velocities and
    deadlines from the Table IV ranges, and materializes the
    per-instance worker/task lists.
    """

    def __init__(self, params: WorkloadParams, seed: int) -> None:
        self._params = params
        self._quality_model = HashQualityModel(params.quality_range, seed=seed)
        rng = np.random.default_rng(seed)

        worker_totals = _largest_remainder_round(
            self._instance_weights(rng, phase=0), params.num_workers
        )
        task_totals = _largest_remainder_round(
            self._instance_weights(rng, phase=1), params.num_tasks
        )

        v_low, v_high = params.velocity_range
        e_low, e_high = params.deadline_range
        v_mean = (v_low + v_high) / 2.0
        v_std = v_high - v_low

        self._workers_by_instance: list[list[Worker]] = []
        self._tasks_by_instance: list[list[Task]] = []
        next_id = 0
        for instance in range(params.num_instances):
            count = int(worker_totals[instance])
            locations = self._locations(rng, instance, count, kind="worker")
            velocities = truncated_gaussian(rng, v_mean, v_std, v_low, v_high, count)
            self._workers_by_instance.append(
                [
                    Worker(
                        id=next_id + i,
                        location=location,
                        velocity=float(v),
                        arrival=float(instance),
                    )
                    for i, (location, v) in enumerate(zip(locations, velocities))
                ]
            )
            next_id += count
        for instance in range(params.num_instances):
            count = int(task_totals[instance])
            locations = self._locations(rng, instance, count, kind="task")
            remaining = rng.uniform(e_low, e_high, size=count)
            self._tasks_by_instance.append(
                [
                    Task(
                        id=next_id + j,
                        location=location,
                        deadline=float(instance) + float(e),
                        arrival=float(instance),
                    )
                    for j, (location, e) in enumerate(zip(locations, remaining))
                ]
            )
            next_id += count

    # -- subclass hooks -----------------------------------------------------

    def _instance_weights(self, rng: np.random.Generator, phase: int) -> np.ndarray:
        """Relative arrival intensity per instance (non-negative)."""
        raise NotImplementedError

    def _locations(
        self, rng: np.random.Generator, instance: int, count: int, kind: str
    ) -> list[Point]:
        """Entity locations for one instance."""
        raise NotImplementedError

    # -- Workload protocol --------------------------------------------------

    @property
    def params(self) -> WorkloadParams:
        return self._params

    @property
    def num_instances(self) -> int:
        return self._params.num_instances

    @property
    def quality_model(self) -> HashQualityModel:
        return self._quality_model

    def arrivals(self, instance: int) -> tuple[list[Worker], list[Task]]:
        if not 0 <= instance < self.num_instances:
            raise IndexError(f"instance {instance} outside [0, {self.num_instances})")
        return (
            list(self._workers_by_instance[instance]),
            list(self._tasks_by_instance[instance]),
        )


class BurstyWorkload(_GeneratedStream):
    """Quiet background traffic with periodic synchronized bursts.

    Every ``burst_period`` instances, one instance receives
    ``burst_multiplier`` times the baseline arrival intensity (both
    workers and tasks burst together — the hard case for a fixed
    per-round budget).  Spatial placement follows the configured
    worker/task distributions, like the Table IV streams.
    """

    def __init__(
        self,
        params: WorkloadParams,
        seed: int = 0,
        burst_period: int = 4,
        burst_multiplier: float = 8.0,
        burst_offset: int = 0,
    ) -> None:
        if burst_period < 1:
            raise ValueError(f"burst_period must be >= 1, got {burst_period}")
        if burst_multiplier < 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {burst_multiplier}"
            )
        if not 0 <= burst_offset < burst_period:
            raise ValueError(
                f"burst_offset must be in [0, burst_period), got {burst_offset}"
            )
        self._burst_period = burst_period
        self._burst_multiplier = burst_multiplier
        self._burst_offset = burst_offset
        self._worker_sampler = make_sampler(
            params.worker_distribution, params.zipf_skew
        )
        self._task_sampler = make_sampler(params.task_distribution, params.zipf_skew)
        super().__init__(params, seed)

    def _instance_weights(self, rng: np.random.Generator, phase: int) -> np.ndarray:
        instances = np.arange(self._params.num_instances)
        weights = np.ones(self._params.num_instances)
        weights[
            instances % self._burst_period == self._burst_offset
        ] = self._burst_multiplier
        return weights

    def _locations(
        self, rng: np.random.Generator, instance: int, count: int, kind: str
    ) -> list[Point]:
        sampler = self._worker_sampler if kind == "worker" else self._task_sampler
        points = sampler.sample(rng, count)
        return [Point(float(x), float(y)) for x, y in points]


class CitywideMultiHotspotWorkload(_GeneratedStream):
    """Several dense, far-apart demand pockets active at once.

    Models a whole city at rush hour: ``num_hotspots`` compact
    Gaussian pockets sit on a jittered sub-grid spanning the region,
    and every instance's arrivals split across them (workers and tasks
    drawn around the same centers, so each pocket is locally dense).
    Reachability radii are small relative to the pocket spacing, which
    makes the assignment problem *spatially decomposable*: pockets
    rarely interact, but each one generates a heavy local candidate
    block.  This is the scenario built to separate the sharded engine
    from the serial one — a single engine round must grind through
    every pocket's candidates sequentially, while grid-partitioned
    shards price the pockets concurrently and only the thin border
    reconciliation runs globally.  (The bursty/drifting scenarios
    concentrate demand in one place at a time, which leaves most
    shards idle and shows little sharding benefit.)
    """

    def __init__(
        self,
        params: WorkloadParams,
        seed: int = 0,
        num_hotspots: int = 4,
        hotspot_std: float = 0.06,
        center_jitter: float = 0.05,
    ) -> None:
        if num_hotspots < 1:
            raise ValueError(f"num_hotspots must be >= 1, got {num_hotspots}")
        if hotspot_std <= 0.0:
            raise ValueError(f"hotspot_std must be positive, got {hotspot_std}")
        if center_jitter < 0.0:
            raise ValueError(f"center_jitter must be >= 0, got {center_jitter}")
        self._num_hotspots = num_hotspots
        self._hotspot_std = hotspot_std
        # Centers on the smallest sub-grid that fits, jittered per seed
        # so hotspots do not sit exactly on shard boundaries.
        grid = int(math.ceil(math.sqrt(num_hotspots)))
        center_rng = np.random.default_rng(seed ^ 0x5EED_C17D)
        centers = []
        for h in range(num_hotspots):
            row, col = divmod(h, grid)
            centers.append(
                (
                    float(np.clip((col + 0.5) / grid
                                  + center_rng.uniform(-center_jitter, center_jitter),
                                  0.05, 0.95)),
                    float(np.clip((row + 0.5) / grid
                                  + center_rng.uniform(-center_jitter, center_jitter),
                                  0.05, 0.95)),
                )
            )
        self._centers = centers
        super().__init__(params, seed)

    @property
    def hotspot_centers(self) -> list[Point]:
        return [Point(x, y) for x, y in self._centers]

    def _instance_weights(self, rng: np.random.Generator, phase: int) -> np.ndarray:
        return np.ones(self._params.num_instances)

    def _locations(
        self, rng: np.random.Generator, instance: int, count: int, kind: str
    ) -> list[Point]:
        centers = np.asarray(self._centers)
        which = rng.integers(0, self._num_hotspots, size=count)
        xs = np.clip(
            rng.normal(centers[which, 0], self._hotspot_std), 0.0, 1.0
        )
        ys = np.clip(
            rng.normal(centers[which, 1], self._hotspot_std), 0.0, 1.0
        )
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


class DriftingHotspotWorkload(_GeneratedStream):
    """A compact demand hotspot orbiting the region center.

    Arrivals are drawn from an isotropic Gaussian of width
    ``hotspot_std`` around a center that moves along a circle of
    radius ``orbit_radius`` by ``drift_rate`` radians per instance
    (clipped to the unit square).  Tasks lead the workers by
    ``task_lead`` radians, so the freshest demand is always slightly
    ahead of the supply that chased the previous position.
    """

    def __init__(
        self,
        params: WorkloadParams,
        seed: int = 0,
        orbit_radius: float = 0.3,
        hotspot_std: float = 0.08,
        drift_rate: float = 0.5,
        task_lead: float = 0.35,
    ) -> None:
        if not 0.0 <= orbit_radius <= 0.5:
            raise ValueError(f"orbit_radius must be in [0, 0.5], got {orbit_radius}")
        if hotspot_std <= 0.0:
            raise ValueError(f"hotspot_std must be positive, got {hotspot_std}")
        self._orbit_radius = orbit_radius
        self._hotspot_std = hotspot_std
        self._drift_rate = drift_rate
        self._task_lead = task_lead
        super().__init__(params, seed)

    def hotspot_center(self, instance: int, kind: str = "worker") -> Point:
        """Hotspot center at one instance (tasks lead by ``task_lead``)."""
        angle = self._drift_rate * instance
        if kind == "task":
            angle += self._task_lead
        return Point(
            0.5 + self._orbit_radius * math.cos(angle),
            0.5 + self._orbit_radius * math.sin(angle),
        )

    def _instance_weights(self, rng: np.random.Generator, phase: int) -> np.ndarray:
        return np.ones(self._params.num_instances)

    def _locations(
        self, rng: np.random.Generator, instance: int, count: int, kind: str
    ) -> list[Point]:
        center = self.hotspot_center(instance, kind)
        xs = np.clip(rng.normal(center.x, self._hotspot_std, size=count), 0.0, 1.0)
        ys = np.clip(rng.normal(center.y, self._hotspot_std, size=count), 0.0, 1.0)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]
