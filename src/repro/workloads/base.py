"""The workload interface and the Table IV parameter space.

A workload feeds the simulation engine the entities that *newly join*
the system at each time instance; the engine handles carry-over,
deadline expiry and worker release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.model.entities import Task, Worker
from repro.model.quality import QualityModel


@dataclass(frozen=True)
class WorkloadParams:
    """The experimental parameter space of Table IV.

    Defaults are the paper's bold settings; parameters the paper leaves
    unbolded default to mid-range values (see DESIGN.md section 4).
    """

    num_workers: int = 5000
    num_tasks: int = 5000
    num_instances: int = 15
    quality_range: tuple[float, float] = (1.0, 2.0)
    deadline_range: tuple[float, float] = (1.0, 2.0)
    velocity_range: tuple[float, float] = (0.2, 0.3)
    worker_distribution: str = "gaussian"
    task_distribution: str = "zipf"
    zipf_skew: float = 0.3
    arrival_wave_amplitude: float = 0.3
    count_noise: float = 0.04
    intensity_resolution: int = 10

    def __post_init__(self) -> None:
        if self.num_workers < 0 or self.num_tasks < 0:
            raise ValueError("entity counts must be non-negative")
        if self.num_instances < 1:
            raise ValueError("need at least one time instance")
        for name, (low, high) in (
            ("quality_range", self.quality_range),
            ("deadline_range", self.deadline_range),
            ("velocity_range", self.velocity_range),
        ):
            if low > high:
                raise ValueError(f"{name}: lower bound {low} exceeds upper bound {high}")
        if not 0.0 < self.velocity_range[0]:
            raise ValueError("velocities must be positive")
        if self.deadline_range[0] <= 0.0:
            raise ValueError("deadlines must leave positive remaining time")
        if not 0.0 <= self.arrival_wave_amplitude < 1.0:
            raise ValueError("arrival_wave_amplitude must be in [0, 1)")
        if self.count_noise < 0.0:
            raise ValueError("count_noise must be non-negative")
        if self.intensity_resolution < 1:
            raise ValueError("intensity_resolution must be >= 1")


@runtime_checkable
class Workload(Protocol):
    """Per-instance entity arrivals plus the quality score model."""

    @property
    def num_instances(self) -> int:
        """Number of time instances ``R``."""
        ...

    @property
    def quality_model(self) -> QualityModel:
        """Quality scores ``q_ij`` for this workload's entities."""
        ...

    def arrivals(self, instance: int) -> tuple[list[Worker], list[Task]]:
        """Workers and tasks newly joining at time instance ``instance``."""
        ...
