"""Synthetic worker/task streams over the Table IV parameter space.

Arrival model
-------------

Workers/tasks are split across the ``R`` time instances with a smooth
sinusoidal intensity wave.  *Spatially*, each stream follows a stable
per-cell intensity field derived from the configured distribution
(Uniform / Gaussian / Zipf): the per-instance per-cell counts are the
field scaled by the instance's intensity, perturbed by a small
multiplicative noise (``count_noise``) and rounded by largest
remainder.  Entities are placed uniformly inside their cell.

This *stable-field* model is what makes the paper's single-digit
prediction errors achievable (Fig. 10): with fully independent
per-instance placement, per-cell counts carry irreducible Poisson
noise of order ``1/sqrt(count-per-cell)`` — tens of percent at the
paper's own densities (~0.8 entities/cell/instance).  Real check-in
streams are temporally stable (people revisit the same haunts), and
the synthetic model mirrors that; DESIGN.md discusses the choice.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.workloads.base import WorkloadParams
from repro.workloads.distributions import make_sampler, truncated_gaussian
from repro.workloads.quality import HashQualityModel

# Sampler draws used to estimate the stable per-cell intensity field.
_FIELD_ESTIMATION_DRAWS = 20000


def _intensity_field(sampler, rng: np.random.Generator, resolution: int) -> np.ndarray:
    """Per-cell probabilities of the spatial distribution.

    Estimated by histogramming a large reference sample on the
    ``resolution x resolution`` internal grid.
    """
    points = sampler.sample(rng, _FIELD_ESTIMATION_DRAWS)
    cols = np.minimum((points[:, 0] * resolution).astype(int), resolution - 1)
    rows = np.minimum((points[:, 1] * resolution).astype(int), resolution - 1)
    counts = np.bincount(rows * resolution + cols, minlength=resolution * resolution)
    field = counts / counts.sum()
    # A fixed per-cell jitter breaks the remainder ties of flat fields
    # deterministically: without it, largest-remainder rounding of a
    # near-uniform field would pick a *different* winning cell set each
    # instance (ties broken by the per-instance noise), destroying the
    # temporal stability the predictor relies on.
    jitter = 1.0 + 0.15 * rng.standard_normal(field.size)
    field = np.maximum(field * jitter, 0.0)
    return field / field.sum()


def _largest_remainder_round(expected: np.ndarray, total: int) -> np.ndarray:
    """Integer counts summing to ``total``, proportional to ``expected``."""
    if total <= 0 or expected.sum() <= 0.0:
        return np.zeros_like(expected, dtype=np.int64)
    shares = expected / expected.sum() * total
    floors = np.floor(shares).astype(np.int64)
    deficit = total - int(floors.sum())
    if deficit > 0:
        remainders = shares - floors
        top = np.argsort(-remainders, kind="stable")[:deficit]
        floors[top] += 1
    return floors


class SyntheticWorkload:
    """Pre-generated synthetic arrivals for one experiment run.

    All entities are generated eagerly in the constructor so every
    algorithm sees the *same* stream for the same seed — the fair-
    comparison requirement of Section VI.
    """

    def __init__(self, params: WorkloadParams, seed: int = 0) -> None:
        self._params = params
        self._quality_model = HashQualityModel(params.quality_range, seed=seed)
        rng = np.random.default_rng(seed)
        resolution = params.intensity_resolution

        worker_sampler = make_sampler(params.worker_distribution, params.zipf_skew)
        task_sampler = make_sampler(params.task_distribution, params.zipf_skew)
        worker_field = _intensity_field(worker_sampler, rng, resolution)
        task_field = _intensity_field(task_sampler, rng, resolution)

        worker_totals = self._instance_totals(rng, params.num_workers, phase=0.0)
        task_totals = self._instance_totals(rng, params.num_tasks, phase=math.pi / 3.0)

        self._workers_by_instance: list[list[Worker]] = []
        self._tasks_by_instance: list[list[Task]] = []
        next_id = 0
        v_low, v_high = params.velocity_range
        e_low, e_high = params.deadline_range
        v_mean = (v_low + v_high) / 2.0
        v_std = v_high - v_low  # paper: N((v-+v+)/2, (v+-v-)^2)

        for instance in range(params.num_instances):
            locations = self._place_entities(
                rng, worker_field, int(worker_totals[instance]), resolution,
                params.count_noise,
            )
            count = len(locations)
            velocities = truncated_gaussian(rng, v_mean, v_std, v_low, v_high, count)
            workers = [
                Worker(
                    id=next_id + i,
                    location=location,
                    velocity=float(v),
                    arrival=float(instance),
                )
                for i, (location, v) in enumerate(zip(locations, velocities))
            ]
            next_id += count
            self._workers_by_instance.append(workers)

        for instance in range(params.num_instances):
            locations = self._place_entities(
                rng, task_field, int(task_totals[instance]), resolution,
                params.count_noise,
            )
            count = len(locations)
            remaining = rng.uniform(e_low, e_high, size=count)
            tasks = [
                Task(
                    id=next_id + j,
                    location=location,
                    deadline=float(instance) + float(e),
                    arrival=float(instance),
                )
                for j, (location, e) in enumerate(zip(locations, remaining))
            ]
            next_id += count
            self._tasks_by_instance.append(tasks)

    def _instance_totals(self, rng: np.random.Generator, total: int, phase: float) -> np.ndarray:
        """Split ``total`` arrivals across instances along a smooth wave."""
        instances = self._params.num_instances
        amplitude = self._params.arrival_wave_amplitude
        weights = 1.0 + amplitude * np.sin(
            2.0 * np.pi * np.arange(instances) / instances + phase
        )
        return _largest_remainder_round(weights, total)

    @staticmethod
    def _place_entities(
        rng: np.random.Generator,
        field: np.ndarray,
        total: int,
        resolution: int,
        count_noise: float,
    ) -> list[Point]:
        """Materialize one instance's arrivals from the intensity field.

        Per-cell expectations get a small multiplicative Gaussian noise
        before largest-remainder rounding, then entities are placed
        uniformly inside their cell.
        """
        if total <= 0:
            return []
        expected = field * total
        if count_noise > 0.0:
            expected = np.maximum(
                expected * (1.0 + count_noise * rng.standard_normal(field.size)), 0.0
            )
        counts = _largest_remainder_round(expected, total)
        side = 1.0 / resolution
        locations: list[Point] = []
        for cell in np.nonzero(counts)[0]:
            row, col = divmod(int(cell), resolution)
            xs = rng.uniform(col * side, (col + 1) * side, size=int(counts[cell]))
            ys = rng.uniform(row * side, (row + 1) * side, size=int(counts[cell]))
            locations.extend(Point(float(x), float(y)) for x, y in zip(xs, ys))
        return locations

    @property
    def params(self) -> WorkloadParams:
        return self._params

    @property
    def num_instances(self) -> int:
        return self._params.num_instances

    @property
    def quality_model(self) -> HashQualityModel:
        return self._quality_model

    def arrivals(self, instance: int) -> tuple[list[Worker], list[Task]]:
        """Entities newly joining at time instance ``instance``."""
        if not 0 <= instance < self.num_instances:
            raise IndexError(f"instance {instance} outside [0, {self.num_instances})")
        return (
            list(self._workers_by_instance[instance]),
            list(self._tasks_by_instance[instance]),
        )

    def total_workers(self) -> int:
        """Workers generated across all instances (should equal ``n``)."""
        return sum(len(ws) for ws in self._workers_by_instance)

    def total_tasks(self) -> int:
        """Tasks generated across all instances (should equal ``m``)."""
        return sum(len(ts) for ts in self._tasks_by_instance)
