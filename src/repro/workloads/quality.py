"""Deterministic hashed quality scores ``q_ij``.

The paper generates the quality score of every worker-and-task pair
from a Gaussian within ``[q-, q+]``.  Materializing an ``n x m`` matrix
per instance would be wasteful; instead the score of a pair is a pure
function of ``(worker.id, task.id, seed)`` via a SplitMix64-style
mixer, so any submatrix can be produced lazily, identically, on demand
— the same pair always scores the same, across algorithms and runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.model.entities import Task, Worker

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_WORKER_SALT = np.uint64(0x8B72E7D8C27D3B4D)
_TASK_SALT = np.uint64(0xD6E8FEB86659FD93)

_TWO_POW_53 = float(1 << 53)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = values + _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def _hash_uniform(worker_ids: np.ndarray, task_ids: np.ndarray, salt: np.uint64) -> np.ndarray:
    """Uniforms in ``(0, 1]`` from broadcastable id arrays.

    Pass ``worker_ids[:, None]`` against ``task_ids`` for the full
    pairwise matrix, or two aligned 1-D arrays for elementwise pairs;
    a given ``(worker, task)`` id pair hashes to the same value either
    way (all operations are elementwise).
    """
    mixed_workers = _splitmix64(worker_ids.astype(np.uint64) * _WORKER_SALT + salt)
    mixed_tasks = _splitmix64(task_ids.astype(np.uint64) * _TASK_SALT + salt)
    combined = _splitmix64(mixed_workers ^ mixed_tasks)
    # Top 53 bits -> (0, 1]; +1 keeps log() finite in Box-Muller.
    return ((combined >> np.uint64(11)).astype(np.float64) + 1.0) / _TWO_POW_53


class HashQualityModel:
    """Gaussian-in-range quality scores, deterministic per pair.

    Scores are ``N(center, ((q+ - q-) / 4)^2)`` clipped to
    ``[q-, q+]``, with ``center`` the range midpoint — a Gaussian
    "within the range" as the paper specifies, with the clipped tails
    carrying ~5% of the mass.
    """

    def __init__(self, quality_range: tuple[float, float], seed: int = 0) -> None:
        low, high = quality_range
        if low > high:
            raise ValueError(f"empty quality range [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)
        self._center = (self._low + self._high) / 2.0
        self._std = (self._high - self._low) / 4.0
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def quality_range(self) -> tuple[float, float]:
        return (self._low, self._high)

    def quality_matrix(self, workers: Sequence[Worker], tasks: Sequence[Task]) -> np.ndarray:
        """Dense score matrix for the given entities (vectorized)."""
        worker_ids = np.array([w.id for w in workers], dtype=np.int64)
        task_ids = np.array([t.id for t in tasks], dtype=np.int64)
        return self.quality_by_ids(worker_ids, task_ids)

    def quality_by_ids(self, worker_ids: np.ndarray, task_ids: np.ndarray) -> np.ndarray:
        """Score matrix keyed directly by id arrays."""
        worker_ids = np.abs(np.asarray(worker_ids, dtype=np.int64))
        task_ids = np.abs(np.asarray(task_ids, dtype=np.int64))
        if worker_ids.size == 0 or task_ids.size == 0:
            return np.zeros((worker_ids.size, task_ids.size))
        return self._scores(worker_ids[:, None], task_ids[None, :])

    def quality_pairs(self, workers: Sequence[Worker], tasks: Sequence[Task]) -> np.ndarray:
        """Elementwise scores for aligned worker/task sequences.

        ``workers[i]`` is paired with ``tasks[i]``; the result is the
        diagonal of :meth:`quality_matrix` without materializing the
        outer product — the hook the sparse pair builder uses to price
        only reachable pairs.  Scores are bit-identical to the matrix
        entries for the same id pairs.
        """
        if len(workers) != len(tasks):
            raise ValueError(
                f"aligned sequences required, got {len(workers)} workers "
                f"and {len(tasks)} tasks"
            )
        worker_ids = np.abs(np.array([w.id for w in workers], dtype=np.int64))
        task_ids = np.abs(np.array([t.id for t in tasks], dtype=np.int64))
        if worker_ids.size == 0:
            return np.zeros(0)
        return self._scores(worker_ids, task_ids)

    def quality_pairs_by_ids(
        self, worker_ids: np.ndarray, task_ids: np.ndarray
    ) -> np.ndarray:
        """Elementwise scores keyed directly by aligned id arrays.

        Same contract as :meth:`quality_pairs` without the entity
        objects — the hook the sharded candidate builder uses so shard
        workers can price qualities from numpy id gathers instead of
        materializing per-pair Python lists.  Bit-identical to the
        matrix entries for the same id pairs.
        """
        worker_ids = np.abs(np.asarray(worker_ids, dtype=np.int64))
        task_ids = np.abs(np.asarray(task_ids, dtype=np.int64))
        if worker_ids.shape != task_ids.shape:
            raise ValueError(
                f"aligned id arrays required, got shapes {worker_ids.shape} "
                f"and {task_ids.shape}"
            )
        if worker_ids.size == 0:
            return np.zeros(0)
        return self._scores(worker_ids, task_ids)

    def _scores(self, worker_ids: np.ndarray, task_ids: np.ndarray) -> np.ndarray:
        """Gaussian-in-range scores for broadcastable id arrays."""
        u1 = _hash_uniform(worker_ids, task_ids, self._seed)
        u2 = _hash_uniform(worker_ids, task_ids, self._seed + np.uint64(0x1234567))
        gaussians = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return np.clip(self._center + self._std * gaussians, self._low, self._high)

    def prior(self) -> tuple[float, float, float, float]:
        """``(mean, variance, lower, upper)`` of the score distribution."""
        return (self._center, self._std * self._std, self._low, self._high)
