"""Workload generation: synthetic (Table IV) and check-in based.

The paper evaluates on synthetic worker/task streams with configurable
spatial distributions (Uniform / Gaussian / Zipf) and on two real
check-in datasets (Gowalla for workers, Foursquare for tasks) mapped to
the unit square and split into ``R`` time subintervals.  This package
generates the synthetic streams, synthesizes Gowalla/Foursquare-style
check-in data (no network access; see DESIGN.md), loads genuine
check-in files when available, and adapts both into the common
:class:`~repro.workloads.base.Workload` interface the simulation
engine consumes.
"""

from repro.workloads.base import Workload, WorkloadParams
from repro.workloads.distributions import (
    SpatialSampler,
    UniformSampler,
    GaussianSampler,
    ZipfSampler,
    make_sampler,
    truncated_gaussian,
)
from repro.workloads.quality import HashQualityModel
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.checkins import (
    CheckinRecord,
    CheckinGeneratorConfig,
    generate_checkins,
    load_gowalla_checkins,
    save_checkins,
)
from repro.workloads.real import RealWorkload, map_to_unit_square
from repro.workloads.streaming import (
    BurstyWorkload,
    CitywideMultiHotspotWorkload,
    DriftingHotspotWorkload,
)

__all__ = [
    "Workload",
    "WorkloadParams",
    "SpatialSampler",
    "UniformSampler",
    "GaussianSampler",
    "ZipfSampler",
    "make_sampler",
    "truncated_gaussian",
    "HashQualityModel",
    "SyntheticWorkload",
    "CheckinRecord",
    "CheckinGeneratorConfig",
    "generate_checkins",
    "load_gowalla_checkins",
    "save_checkins",
    "RealWorkload",
    "map_to_unit_square",
    "BurstyWorkload",
    "CitywideMultiHotspotWorkload",
    "DriftingHotspotWorkload",
]
