"""Check-in streams as MQA workloads (the paper's "real data" setup).

Section VI: Gowalla check-ins initialize *workers*, Foursquare
check-ins initialize *tasks*; locations are linearly mapped to
``[0, 1]^2``, the joint time span is divided into ``R`` subintervals,
and the check-ins of each subinterval become the arrivals of the
corresponding time instance.  Velocities, deadlines and quality scores
still follow the Table IV parameter recipes (check-ins carry neither).
"""

from __future__ import annotations

import numpy as np

from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.workloads.base import WorkloadParams
from repro.workloads.checkins import CheckinRecord
from repro.workloads.distributions import truncated_gaussian
from repro.workloads.quality import HashQualityModel


def map_to_unit_square(
    records: list[CheckinRecord],
    bounds: tuple[float, float, float, float] | None = None,
) -> list[Point]:
    """Linearly map record coordinates into ``[0, 1]^2``.

    Args:
        records: check-ins to map (longitude -> x, latitude -> y).
        bounds: ``(lat_min, lat_max, lon_min, lon_max)``; computed from
            the records when omitted.  Records outside explicit bounds
            are clipped onto the boundary.
    """
    if not records:
        return []
    if bounds is None:
        lats = [r.latitude for r in records]
        lons = [r.longitude for r in records]
        bounds = (min(lats), max(lats), min(lons), max(lons))
    lat_min, lat_max, lon_min, lon_max = bounds
    lat_span = lat_max - lat_min or 1.0
    lon_span = lon_max - lon_min or 1.0
    points = []
    for record in records:
        x = min(max((record.longitude - lon_min) / lon_span, 0.0), 1.0)
        y = min(max((record.latitude - lat_min) / lat_span, 0.0), 1.0)
        points.append(Point(x, y))
    return points


class RealWorkload:
    """Workload built from two check-in streams.

    Args:
        worker_checkins: the "Gowalla" stream (each check-in spawns a
            worker at its mapped location in its subinterval).
        task_checkins: the "Foursquare" stream (each check-in spawns a
            task).
        params: Table IV parameters (``num_instances``, velocity /
            deadline / quality ranges; entity counts come from the
            streams themselves).
        seed: drives velocity / deadline sampling and quality hashing.
        bounds: optional shared geo bounds for the unit-square mapping.
    """

    def __init__(
        self,
        worker_checkins: list[CheckinRecord],
        task_checkins: list[CheckinRecord],
        params: WorkloadParams,
        seed: int = 0,
        bounds: tuple[float, float, float, float] | None = None,
    ) -> None:
        self._params = params
        self._quality_model = HashQualityModel(params.quality_range, seed=seed)
        rng = np.random.default_rng(seed)

        if bounds is None and (worker_checkins or task_checkins):
            combined = worker_checkins + task_checkins
            lats = [r.latitude for r in combined]
            lons = [r.longitude for r in combined]
            bounds = (min(lats), max(lats), min(lons), max(lons))

        worker_points = map_to_unit_square(worker_checkins, bounds)
        task_points = map_to_unit_square(task_checkins, bounds)

        # Scale the joint time span onto [0, R): check-in subinterval k
        # feeds time instance k.
        all_times = [r.time for r in worker_checkins] + [r.time for r in task_checkins]
        t_min = min(all_times) if all_times else 0.0
        t_max = max(all_times) if all_times else 1.0
        span = (t_max - t_min) or 1.0
        instances = params.num_instances

        def instance_of(time: float) -> int:
            scaled = (time - t_min) / span * instances
            return min(int(scaled), instances - 1)

        self._workers_by_instance: list[list[Worker]] = [[] for _ in range(instances)]
        self._tasks_by_instance: list[list[Task]] = [[] for _ in range(instances)]

        v_low, v_high = params.velocity_range
        v_mean = (v_low + v_high) / 2.0
        v_std = v_high - v_low
        velocities = truncated_gaussian(
            rng, v_mean, v_std, v_low, v_high, len(worker_checkins)
        )
        next_id = 0
        for record, point, velocity in zip(worker_checkins, worker_points, velocities):
            instance = instance_of(record.time)
            self._workers_by_instance[instance].append(
                Worker(
                    id=next_id,
                    location=point,
                    velocity=float(velocity),
                    arrival=float(instance),
                )
            )
            next_id += 1

        e_low, e_high = params.deadline_range
        remaining = rng.uniform(e_low, e_high, size=len(task_checkins))
        for record, point, extra in zip(task_checkins, task_points, remaining):
            instance = instance_of(record.time)
            self._tasks_by_instance[instance].append(
                Task(
                    id=next_id,
                    location=point,
                    deadline=float(instance) + float(extra),
                    arrival=float(instance),
                )
            )
            next_id += 1

    @property
    def params(self) -> WorkloadParams:
        return self._params

    @property
    def num_instances(self) -> int:
        return self._params.num_instances

    @property
    def quality_model(self) -> HashQualityModel:
        return self._quality_model

    def arrivals(self, instance: int) -> tuple[list[Worker], list[Task]]:
        """Entities newly joining at time instance ``instance``."""
        if not 0 <= instance < self.num_instances:
            raise IndexError(f"instance {instance} outside [0, {self.num_instances})")
        return (
            list(self._workers_by_instance[instance]),
            list(self._tasks_by_instance[instance]),
        )

    def total_workers(self) -> int:
        return sum(len(ws) for ws in self._workers_by_instance)

    def total_tasks(self) -> int:
        return sum(len(ts) for ts in self._tasks_by_instance)
