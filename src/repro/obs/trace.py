"""Per-round span tracing, exportable as Chrome trace-event JSON.

The recorder captures *complete* events (``ph: "X"`` — a name, a
start timestamp, a duration) and *instant* events (``ph: "i"``) into a
flat list, using the :func:`repro.obs.metrics.monotonic` clock
rebased to the first event so timestamps start near zero.  The
resulting file loads directly in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): each streaming round is one span on the
engine track with its build/price/select/finalize phases nested
inside, per-tile shard phases fan out on their own tracks, and cache
events (delta primes/repairs, warm-select decisions, Hungarian
warm-start accept/reject) appear as instants within their round.

Disabled recorders drop everything at one boolean check, so a
trace-off engine pays no per-round cost; memory when enabled is one
small dict per event (bounded by ``max_events``, oldest-first drop is
*not* attempted — recording stops, and the export notes truncation —
so a long-lived service cannot leak unboundedly).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import monotonic

__all__ = ["TraceRecorder", "validate_chrome_trace"]

#: Default cap on recorded events; at ~10 events per round this is
#: ~100k rounds of trace — far beyond what a human inspects, small
#: enough (tens of MB) to always be writable.
DEFAULT_MAX_EVENTS = 1_000_000

_US = 1e6  # chrome trace timestamps are microseconds


class TraceRecorder:
    """Collects spans and instants; exports Chrome trace-event JSON.

    All ``ts``/``dur`` arguments are *seconds* on the
    :func:`~repro.obs.metrics.monotonic` clock; the recorder rebases
    them to its first event and converts to microseconds on export.
    ``tid`` selects the track: 0 is the engine's round track, shard
    tiles use ``tid = tile + 1`` so parallel tile phases render as
    parallel tracks.
    """

    def __init__(self, enabled: bool = True, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.enabled = bool(enabled)
        self.max_events = int(max_events)
        self.truncated = False
        # Events hold *raw* clock seconds in "ts"/"dur"; the export
        # rebases to the earliest timestamp and converts to µs —
        # events are not recorded in chronological order (a round span
        # lands after the tile spans it encloses), so the epoch is
        # only known at export time.
        self._events: list[dict] = []

    def __len__(self) -> int:
        return len(self._events)

    def _push(self, event: dict) -> bool:
        if len(self._events) >= self.max_events:
            self.truncated = True
            return False
        self._events.append(event)
        return True

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        cat: str = "phase",
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a complete event covering ``[ts, ts + dur]`` seconds."""
        if not self.enabled:
            return
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": ts,
                "dur": max(dur, 0.0),
                "pid": 0,
                "tid": tid,
                "args": args or {},
            }
        )

    def add_instant(
        self,
        name: str,
        ts: float | None = None,
        cat: str = "event",
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """Record a point event (``ts`` defaults to *now*)."""
        if not self.enabled:
            return
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": monotonic() if ts is None else ts,
                "s": "t",  # thread-scoped instant
                "pid": 0,
                "tid": tid,
                "args": args or {},
            }
        )

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Rebases every timestamp to the earliest recorded one and
        converts seconds to microseconds (the recorder keeps raw clock
        seconds internally).
        """
        epoch = min((e["ts"] for e in self._events), default=0.0)
        events = []
        for raw in self._events:
            event = dict(raw)
            event["ts"] = (raw["ts"] - epoch) * _US
            if "dur" in raw:
                event["dur"] = raw["dur"] * _US
            events.append(event)
        meta = {
            "format": "chrome-trace-events",
            "generator": "repro.obs",
            "truncated": self.truncated,
        }
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": meta,
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the trace to ``path`` (creates parent dirs)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome_trace(), indent=1), encoding="utf-8"
        )
        return path


def validate_chrome_trace(trace: dict) -> list[str]:
    """Structural validation of a Chrome trace-event object.

    Returns a list of human-readable problems (empty = valid):

    - the top level must carry a ``traceEvents`` list;
    - every event needs ``name``/``ph``/``ts``/``pid``/``tid``, with
      ``ts`` (and ``dur`` on complete events) finite and non-negative;
    - every non-round event on the engine's timeline must nest inside
      exactly the round span that contains its start — phases cannot
      leak across round boundaries.

    Used by the trace-schema tests and by ``python -m repro.obs`` (the
    CI smoke job validates the files the stream CLI wrote).
    """
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]

    rounds: list[tuple[float, float, dict]] = []
    for i, event in enumerate(events):
        label = f"event[{i}] ({event.get('name', '?')!r})"
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append(f"{label}: missing {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0 or ts != ts:
            errors.append(f"{label}: ts {ts!r} is not a non-negative number")
            continue
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0 or dur != dur:
                errors.append(f"{label}: dur {dur!r} is not a non-negative number")
                continue
            if event.get("cat") == "round":
                rounds.append((ts, ts + dur, event))

    rounds.sort(key=lambda r: r[0])
    for (_, prev_end, _), (next_start, _, _) in zip(rounds, rounds[1:]):
        if next_start < prev_end - 1e-6:
            errors.append(
                f"round spans overlap near ts={next_start}: rounds must be "
                "disjoint"
            )
            break

    #: tolerance (µs) for nesting checks: phase and round endpoints are
    #: separate clock reads, so a sub-microsecond excess is measurement
    #: skew, not a structural violation.
    slack = 5.0
    if rounds:
        for i, event in enumerate(events):
            if event.get("cat") == "round" or event.get("ph") not in ("X", "i"):
                continue
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                continue
            dur = event.get("dur", 0) if event.get("ph") == "X" else 0
            if not isinstance(dur, (int, float)):
                continue
            enclosing = [
                r for r in rounds if r[0] - slack <= ts and ts + dur <= r[1] + slack
            ]
            if not enclosing:
                errors.append(
                    f"event[{i}] ({event.get('name', '?')!r}) at ts={ts} "
                    f"dur={dur} does not nest inside any round span"
                )
    return errors
