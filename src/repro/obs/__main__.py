"""Validate exported observability artifacts.

Usage::

    python -m repro.obs [--metrics metrics.json] [--trace trace.json]

Each given file is loaded and run through the matching structural
validator (:func:`~repro.obs.export.validate_metrics_snapshot`,
:func:`~repro.obs.trace.validate_chrome_trace`).  Exit status 0 when
every file validates, 1 otherwise, with problems printed one per
line.  The CI smoke job runs this over the files the stream CLI
wrote.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import validate_metrics_snapshot
from repro.obs.trace import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="validate metrics-snapshot and Chrome-trace JSON files",
    )
    parser.add_argument("--metrics", type=Path, help="metrics snapshot JSON")
    parser.add_argument("--trace", type=Path, help="Chrome trace-event JSON")
    args = parser.parse_args(argv)
    if args.metrics is None and args.trace is None:
        parser.error("nothing to validate: pass --metrics and/or --trace")

    failures = 0
    for path, validator, kind in (
        (args.metrics, validate_metrics_snapshot, "metrics"),
        (args.trace, validate_chrome_trace, "trace"),
    ):
        if path is None:
            continue
        try:
            obj = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable {kind} file: {exc}")
            failures += 1
            continue
        errors = validator(obj)
        if errors:
            failures += 1
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: {kind} OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
