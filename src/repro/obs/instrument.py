"""Engine-side glue: one observer per engine, one timer per round.

:class:`StreamObserver` owns a :class:`~repro.obs.metrics.
MetricsRegistry` and a :class:`~repro.obs.trace.TraceRecorder` and
translates what the streaming engine already measures into
instruments and trace events:

- phase durations → ``stream_*_seconds`` histograms + nested spans;
- pool/cache stats (:class:`~repro.model.sparse.SparseBuildStats`,
  :class:`~repro.model.delta.DeltaBuildStats`, :class:`~repro.core.
  triplet_select.SelectionRepairStats`, :class:`~repro.matching.
  hungarian.HungarianWarmStart`) → counters, gauges and per-round
  instant events, by *diffing* the cumulative stats objects the
  layers already maintain — the lower layers stay observability-free;
- per-tile shard build phases → labeled histograms + parallel trace
  tracks.

:class:`RoundTimer` is the round's single timing source: the engine
starts/stops phases on it, and both the legacy
:class:`~repro.simulation.metrics.InstanceMetrics` fields and the
registry histograms are views over the one set of measurements — the
phase accounting cannot fork.  The timer always measures (the same
clock reads the engine made before this layer existed); only the
*recording* is gated, so a disabled observer costs one boolean check
per round.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, monotonic
from repro.obs.trace import TraceRecorder

__all__ = ["RoundTimer", "StreamObserver"]

#: Cumulative stat attributes diffed each round into registry counters
#: and (when the per-round delta is positive) trace instant events.
#: ``(stats_kind, attribute) -> (counter_name, instant_name | None)``.
_STAT_COUNTERS = {
    "delta": (
        ("primes", "delta_primes_total", "delta.prime"),
        ("incremental_rounds", "delta_incremental_rounds_total", "delta.repair"),
        ("rejoined_for_motion", "delta_motion_rejoins_total", "delta.motion_rejoin"),
    ),
    "warm_select": (
        ("primes", "warm_select_primes_total", "warm_select.prime"),
        ("repaired", "warm_select_repaired_total", "warm_select.repair"),
        ("declined", "warm_select_declined_total", "warm_select.decline"),
        (
            "guard_fallbacks",
            "warm_select_guard_fallbacks_total",
            "warm_select.guard_fallback",
        ),
        (
            "churn_fallbacks",
            "warm_select_churn_fallbacks_total",
            "warm_select.churn_fallback",
        ),
    ),
    "hungarian": (
        ("solves", "hungarian_solves_total", None),
        ("warm_attempts", "hungarian_warm_attempts_total", None),
        ("warm_accepted", "hungarian_warm_accepted_total", "hungarian.warm_accept"),
        ("warm_fallbacks", "hungarian_warm_fallbacks_total", "hungarian.warm_reject"),
        (
            "degenerate_skips",
            "hungarian_degenerate_skips_total",
            "hungarian.degenerate_skip",
        ),
    ),
}


class RoundTimer:
    """Phase stopwatch for one round (always measuring, never recording).

    ``phase_start``/``phase_end`` bracket measured phases; ``record``
    books *derived* durations (the select/finalize split of the assign
    phase, the price slice of the build phase) with an explicit start
    so trace spans still nest correctly.
    """

    __slots__ = ("round_index", "sim_time", "t0", "end", "_starts", "_durations")

    def __init__(self, round_index: int, sim_time: float):
        self.round_index = round_index
        self.sim_time = sim_time
        self.t0 = monotonic()
        self.end = self.t0
        self._starts: dict[str, float] = {}
        self._durations: dict[str, float] = {}

    def phase_start(self, name: str) -> None:
        self._starts[name] = monotonic()

    def phase_end(self, name: str) -> float:
        duration = monotonic() - self._starts[name]
        self._durations[name] = duration
        return duration

    def record(self, name: str, seconds: float, start: float | None = None) -> None:
        """Book a derived duration (optionally anchored at ``start``)."""
        self._durations[name] = seconds
        if start is not None:
            self._starts[name] = start

    def start_of(self, name: str) -> float:
        return self._starts.get(name, self.t0)

    def seconds(self, name: str) -> float:
        return self._durations.get(name, 0.0)

    def finish(self) -> float:
        """Stamp the round end; returns elapsed seconds since ``t0``."""
        self.end = monotonic()
        return self.end - self.t0


class StreamObserver:
    """Per-engine observability hub (metrics registry + trace recorder)."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry(False)
        self.trace = trace if trace is not None else TraceRecorder(False)
        self._prev: dict[tuple[str, str], float] = {}
        self._prev_price = 0.0
        self._active: RoundTimer | None = None

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.trace.enabled

    @property
    def wants_tile_phases(self) -> bool:
        """Whether per-tile shard timings would be recorded anywhere."""
        return self.enabled

    def begin_round(self, round_index: int, sim_time: float) -> RoundTimer:
        timer = RoundTimer(round_index, sim_time)
        self._active = timer
        return timer

    # -- shard tiles (called mid-build by the sharded engine) ---------------

    def record_tile_phases(self, entries: list[tuple[int, float]]) -> None:
        """Book per-tile build phases: ``(tile, seconds)``, tile ``-1``
        being the phase-2 reconcile pass.

        Tile spans are *end-anchored* at the record time: every tile
        ran to completion inside the enclosing build phase (serial
        backends sequentially, parallel backends concurrently), so
        ``[now - dur, now]`` always nests inside the build span
        regardless of backend — per-tile tracks then render the
        parallelism without needing cross-process clock plumbing.
        """
        if not entries or not self.enabled:
            return
        now = monotonic()
        for tile, seconds in entries:
            if tile < 0:
                self.metrics.histogram("stream_reconcile_seconds").observe(seconds)
                if self.trace.enabled:
                    self.trace.add_span(
                        "reconcile", now - seconds, seconds, cat="shard"
                    )
            else:
                self.metrics.histogram(
                    "stream_tile_build_seconds", labels={"tile": str(tile)}
                ).observe(seconds)
                if self.trace.enabled:
                    self.trace.add_span(
                        f"tile{tile}.build",
                        now - seconds,
                        seconds,
                        cat="shard",
                        tid=tile + 1,
                        args={"tile": tile},
                    )

    def record_tile_pool_events(self, events: list[tuple[int, str]]) -> None:
        """Book per-tile delta-pool lifecycle events on the shard tracks.

        Entries are ``(tile, kind)`` with kind one of ``"repair"`` (the
        tile's pool was served incrementally), ``"prime"`` (full
        rebuild), or ``"border_rejoin"`` (an entity crossed into the
        tile's margin zone, forcing a drop-and-rejoin).  Each books a
        tile-labelled counter (``tile_delta_repairs_total`` /
        ``tile_delta_primes_total`` / ``tile_border_rejoins_total``)
        and an instant on the tile's trace track — the same ``tid``
        convention as :meth:`record_tile_phases`, so the instants land
        on the existing shard rows.
        """
        if not events or not self.enabled:
            return
        counters = {
            "repair": "tile_delta_repairs_total",
            "prime": "tile_delta_primes_total",
            "border_rejoin": "tile_border_rejoins_total",
        }
        for tile, kind in events:
            counter = counters.get(kind)
            if counter is None:
                continue
            if self.metrics.enabled:
                self.metrics.counter(counter, labels={"tile": str(tile)}).inc()
            if self.trace.enabled:
                self.trace.add_instant(
                    f"tile{tile}.{kind}",
                    cat="shard",
                    tid=tile + 1,
                    args={"tile": tile},
                )

    def record_supervision_events(self, events: list[tuple[str, dict]]) -> None:
        """Book shard-supervision fault events: ``(kind, detail)``.

        Kinds map to counters — ``deadline_timeout`` →
        ``shard_deadline_timeouts_total``, ``worker_death`` →
        ``shard_worker_deaths_total``, ``respawn`` →
        ``shard_respawns_total`` (plus ``shard_respawn_seconds_total``
        by the respawn's duration), ``backoff_wait`` →
        ``shard_backoff_seconds_total`` (by the wait), ``degraded`` →
        ``shard_degraded_total`` — and each books a trace instant on
        the affected worker's shard track (``tid`` convention of
        :meth:`record_tile_phases`), so a respawn is visible inline
        with the tile spans it interrupted.
        """
        if not events or not self.enabled:
            return
        counters = {
            "deadline_timeout": "shard_deadline_timeouts_total",
            "worker_death": "shard_worker_deaths_total",
            "respawn": "shard_respawns_total",
            "degraded": "shard_degraded_total",
        }
        for kind, detail in events:
            if self.metrics.enabled:
                counter = counters.get(kind)
                if counter is not None:
                    self.metrics.counter(counter).inc()
                if kind == "respawn":
                    self.metrics.counter("shard_respawn_seconds_total").inc(
                        float(detail.get("seconds", 0.0))
                    )
                elif kind == "backoff_wait":
                    self.metrics.counter("shard_backoff_seconds_total").inc(
                        float(detail.get("seconds", 0.0))
                    )
            if self.trace.enabled:
                worker = detail.get("worker")
                self.trace.add_instant(
                    f"supervision.{kind}",
                    cat="supervision",
                    tid=(worker + 1) if isinstance(worker, int) else 0,
                    args=dict(detail),
                )

    # -- round close-out ----------------------------------------------------

    def _diff(self, kind: str, stats) -> list[tuple[str, float]]:
        """Per-round increments of one cumulative stats object."""
        increments = []
        for attribute, counter_name, instant_name in _STAT_COUNTERS[kind]:
            value = float(getattr(stats, attribute))
            key = (kind, attribute)
            delta = value - self._prev.get(key, 0.0)
            self._prev[key] = value
            if delta > 0:
                if self.metrics.enabled:
                    self.metrics.counter(counter_name).inc(delta)
                if instant_name is not None:
                    increments.append((instant_name, delta))
        return increments

    def end_round(
        self,
        timer: RoundTimer,
        *,
        events_processed: float = 0.0,
        num_workers: int = 0,
        num_tasks: int = 0,
        num_pairs: int = 0,
        assigned: int = 0,
        build_stats=None,
        delta_stats=None,
        select_stats=None,
        warm_stats=None,
        cached_pairs: int | None = None,
    ) -> None:
        """Record one finished round into the registry and the trace.

        ``timer.finish()`` must have been called (the engine stamps
        the round end before committing assignments, preserving the
        pre-observability ``cpu_seconds`` measurement window).
        """
        self._active = None
        if build_stats is not None:
            price_total = float(build_stats.price_seconds)
            price_delta = max(price_total - self._prev_price, 0.0)
            self._prev_price = price_total
            timer.record("price", price_delta, start=timer.start_of("build"))
        if not self.enabled:
            return

        round_seconds = timer.end - timer.t0
        events_key = ("engine", "events_processed")
        events_delta = events_processed - self._prev.get(events_key, 0.0)
        self._prev[events_key] = events_processed

        metrics = self.metrics
        if metrics.enabled:
            metrics.counter("stream_rounds_total").inc()
            metrics.counter("stream_events_total").inc(max(events_delta, 0.0))
            metrics.counter("stream_assignments_total").inc(assigned)
            metrics.counter("stream_pairs_total").inc(num_pairs)
            metrics.gauge("stream_available_workers").set(num_workers)
            metrics.gauge("stream_available_tasks").set(num_tasks)
            if cached_pairs is not None:
                metrics.gauge("stream_cached_pairs").set(cached_pairs)
            metrics.histogram("stream_round_seconds").observe(round_seconds)
            for phase in ("build", "price", "select", "finalize"):
                metrics.histogram(f"stream_{phase}_seconds").observe(
                    timer.seconds(phase)
                )
            metrics.histogram("stream_assign_seconds").observe(
                timer.seconds("assign")
            )

        instants: list[tuple[str, float]] = []
        if delta_stats is not None:
            instants += self._diff("delta", delta_stats)
        if select_stats is not None:
            instants += self._diff("warm_select", select_stats)
        if warm_stats is not None:
            instants += self._diff("hungarian", warm_stats)

        trace = self.trace
        if trace.enabled:
            trace.add_span(
                "round",
                timer.t0,
                round_seconds,
                cat="round",
                args={
                    "round": timer.round_index,
                    "sim_time": timer.sim_time,
                    "workers": num_workers,
                    "tasks": num_tasks,
                    "pairs": num_pairs,
                    "assigned": assigned,
                },
            )
            for phase in ("build", "price", "select", "finalize"):
                duration = timer.seconds(phase)
                if duration <= 0.0 and phase != "build":
                    continue
                start = timer.start_of(phase)
                # Derived durations (the price diff) come from clock
                # reads other than this span's anchors; clamp the span
                # into the round so nesting survives the skew.  The
                # histograms keep the unclamped measurement.
                duration = min(duration, max(timer.end - start, 0.0))
                trace.add_span(phase, start, duration)
            mid = timer.t0 + round_seconds / 2.0
            for name, count in instants:
                trace.add_instant(
                    name, ts=min(mid, timer.end), cat="cache", args={"count": count}
                )
