"""Metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Correctness isolation** — instruments only ever *read* the
   simulation (numbers handed to them); they can never influence data,
   ordering or RNG, so results are bit-identical with metrics on or
   off.
2. **Near-zero disabled cost** — a disabled registry hands out shared
   null instruments whose mutators are constant no-ops; call sites
   need no ``if`` guards and pay one attribute call.
3. **Bounded memory** — histograms are fixed-bucket (no reservoir, no
   per-observation storage), so a long-lived service's registry stays
   O(instruments), not O(rounds).

Percentiles (p50/p95/p99) come from the histogram buckets by linear
interpolation inside the owning bucket, clamped to the exact observed
min/max — at the default latency bucket resolution (~19%% geometric
steps) that bounds the relative error well below the cross-run noise
of any wall-clock figure.

This module also owns :func:`monotonic`, the repo's only sanctioned
wall-clock read: everything that times a phase imports it from here
(``tests/test_obs_lint.py`` forbids raw ``time.perf_counter()``
anywhere else), so all timing shares one clock and one choke point.
"""

from __future__ import annotations

import math
from time import perf_counter

__all__ = [
    "monotonic",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "latency_buckets",
]


def monotonic() -> float:
    """Seconds from a monotonic high-resolution clock.

    The single sanctioned timing source — phase accounting everywhere
    in the repo flows through this function (and therefore through
    whatever registry the measured values are recorded into).
    """
    return perf_counter()


def latency_buckets(
    lo: float = 1e-4, hi: float = 60.0, per_decade: int = 12
) -> tuple[float, ...]:
    """Geometric bucket bounds for latency histograms (seconds).

    ``per_decade`` steps per power of ten; the default 12 gives ~21%%
    bucket width — percentile estimates good to a few percent, from 73
    buckets spanning 100 µs to 60 s.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    count = int(math.ceil(per_decade * math.log10(hi / lo)))
    ratio = 10.0 ** (1.0 / per_decade)
    bounds = [lo * ratio**i for i in range(count + 1)]
    bounds[-1] = max(bounds[-1], hi)
    return tuple(bounds)


DEFAULT_LATENCY_BUCKETS = latency_buckets()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease")
        self.value += amount


class Gauge:
    """Last-set value (pool sizes, cache sizes, ratios)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile extraction.

    ``bounds`` are ascending upper bucket edges; an implicit +inf
    bucket catches overflow.  ``observe`` is O(log buckets) (bisect);
    memory is O(buckets) forever.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        labels: tuple[tuple[str, str], ...] = (),
    ):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: bounds must be ascending, non-empty")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:  # bisect_right over the upper edges
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) of the observations.

        Linear interpolation within the owning bucket, clamped to the
        exact observed ``[min, max]``; 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                value = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry.

    Implements the union of the mutator surfaces so call sites stay
    branch-free; every reader reports emptiness.
    """

    __slots__ = ()
    name = ""
    labels = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    min = math.inf
    max = -math.inf
    bounds = ()
    counts: list[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


_NULL = _NullInstrument()


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per engine/service.  ``enabled=False`` is the
    near-zero-cost path: every factory returns the shared null
    instrument (one dict-free early return), nothing is stored, and
    snapshots are empty.

    Instruments are keyed by ``(name, labels)`` so low-cardinality
    label sets (per-tile phases, per-algorithm counters) coexist under
    one name, Prometheus-style.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._instruments: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}

    def _get(self, factory, name: str, labels, **kwargs):
        if not self.enabled:
            return _NULL
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, labels=key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, in stable (name, labels) order."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def find(self, name: str) -> list[Counter | Gauge | Histogram]:
        """All instruments registered under ``name`` (any label set)."""
        return [i for i in self.instruments() if i.name == name]


#: Shared always-disabled registry for callers that want an optional
#: registry parameter with no ``None`` checks.
NULL_REGISTRY = MetricsRegistry(enabled=False)
