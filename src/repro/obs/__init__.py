"""Unified observability layer: metrics, tracing, and export.

Three parts, one substrate:

- :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.
  MetricsRegistry` of counters, gauges and fixed-bucket histograms
  with a near-zero-cost disabled path, plus p50/p95/p99 extraction.
  It also owns the repo's *only* sanctioned monotonic clock
  (:func:`~repro.obs.metrics.monotonic`): every phase timer in the
  engines flows through it, so phase accounting cannot silently fork
  (a repo-wide lint test enforces this).
- :mod:`repro.obs.trace` — per-round span tracing exportable as
  Chrome trace-event JSON (open ``chrome://tracing`` or
  https://ui.perfetto.dev and load the file).
- :mod:`repro.obs.export` — JSON snapshot and Prometheus-style text
  exposition of a registry.

:mod:`repro.obs.instrument` glues the three to the streaming engines:
:class:`~repro.obs.instrument.StreamObserver` owns one registry + one
recorder per engine and translates measured round phases and cache
stats into histograms, counters, spans and instant events.

The hard contract, differentially tested: observability never touches
data, ordering or RNG — results are bit-identical with metrics and
tracing on, off, or absent.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    monotonic,
)
from repro.obs.trace import TraceRecorder, validate_chrome_trace
from repro.obs.export import (
    phase_percentiles,
    registry_snapshot,
    to_prometheus_text,
    validate_metrics_snapshot,
)
from repro.obs.instrument import RoundTimer, StreamObserver

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "monotonic",
    "TraceRecorder",
    "validate_chrome_trace",
    "phase_percentiles",
    "registry_snapshot",
    "to_prometheus_text",
    "validate_metrics_snapshot",
    "RoundTimer",
    "StreamObserver",
]
