"""Registry export: JSON snapshot and Prometheus-style exposition.

Two consumers, one source of truth (the registry):

- :func:`registry_snapshot` — a JSON-ready dict of every instrument,
  histograms carrying count/sum/mean/min/max plus p50/p95/p99 and
  their cumulative buckets.  :func:`phase_percentiles` is the SLO view
  of the same data: ``{phase: {p50, p95, p99, mean, count}}`` for the
  ``stream_*_seconds`` phase histograms, in milliseconds.
- :func:`to_prometheus_text` — the text exposition format (counters,
  gauges, and ``_bucket``/``_sum``/``_count`` histogram series with
  ``le`` labels), scrape-ready for a pull-based collector.

:func:`validate_metrics_snapshot` is the schema check shared by the
unit tests and ``python -m repro.obs`` (the CI smoke job runs it over
the files the stream CLI wrote).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "registry_snapshot",
    "phase_percentiles",
    "to_prometheus_text",
    "write_metrics_json",
    "validate_metrics_snapshot",
]

#: Phase histogram names (registered by StreamObserver) and the short
#: phase labels the SLO view reports them under.
PHASE_HISTOGRAMS = {
    "stream_round_seconds": "round",
    "stream_build_seconds": "build",
    "stream_price_seconds": "price",
    "stream_select_seconds": "select",
    "stream_finalize_seconds": "finalize",
}

QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _labels_dict(instrument) -> dict[str, str]:
    return dict(instrument.labels)


def _histogram_record(h: Histogram) -> dict:
    record = {
        "count": h.count,
        "sum": round(h.sum, 9),
        "mean": round(h.mean, 9),
        "min": round(h.min, 9) if h.count else None,
        "max": round(h.max, 9) if h.count else None,
        "buckets": [
            [bound, sum(h.counts[: i + 1])] for i, bound in enumerate(h.bounds)
        ]
        + [["+Inf", h.count]],
    }
    for label, q in QUANTILES:
        record[label] = round(h.percentile(q), 9)
    return record


def registry_snapshot(registry: MetricsRegistry) -> dict:
    """Every instrument as a JSON-ready dict (empty when disabled)."""
    counters: list[dict] = []
    gauges: list[dict] = []
    histograms: list[dict] = []
    for instrument in registry.instruments():
        base = {"name": instrument.name}
        if instrument.labels:
            base["labels"] = _labels_dict(instrument)
        if isinstance(instrument, Counter):
            counters.append({**base, "value": instrument.value})
        elif isinstance(instrument, Gauge):
            gauges.append({**base, "value": instrument.value})
        elif isinstance(instrument, Histogram):
            histograms.append({**base, **_histogram_record(instrument)})
    return {
        "schema": "repro.obs.metrics/v1",
        "enabled": registry.enabled,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def phase_percentiles(registry: MetricsRegistry) -> dict[str, dict[str, float]]:
    """p50/p95/p99/mean per phase, in milliseconds (the SLO view).

    Only phases that have observations appear; an empty dict means the
    registry is disabled or no round has run.
    """
    out: dict[str, dict[str, float]] = {}
    for name, phase in PHASE_HISTOGRAMS.items():
        for h in registry.find(name):
            if h.labels or h.count == 0:
                continue  # labeled variants (per-tile) are not SLO phases
            out[phase] = {
                label: round(1000.0 * h.percentile(q), 6) for label, q in QUANTILES
            }
            out[phase]["mean"] = round(1000.0 * h.mean, 6)
            out[phase]["count"] = h.count
    return out


def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _prom_labels(labels, extra: list[tuple[str, str]] | None = None) -> str:
    items = list(labels) + (extra or [])
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of the registry (scrape-ready)."""
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        if isinstance(instrument, Counter):
            _type_line(name, "counter")
            lines.append(f"{name}{_prom_labels(instrument.labels)} {instrument.value:g}")
        elif isinstance(instrument, Gauge):
            _type_line(name, "gauge")
            lines.append(f"{name}{_prom_labels(instrument.labels)} {instrument.value:g}")
        elif isinstance(instrument, Histogram):
            _type_line(name, "histogram")
            cumulative = 0
            for bound, count in zip(instrument.bounds, instrument.counts):
                cumulative += count
                le = _prom_labels(instrument.labels, [("le", f"{bound:g}")])
                lines.append(f"{name}_bucket{le} {cumulative}")
            le = _prom_labels(instrument.labels, [("le", "+Inf")])
            lines.append(f"{name}_bucket{le} {instrument.count}")
            suffix = _prom_labels(instrument.labels)
            lines.append(f"{name}_sum{suffix} {instrument.sum:.9g}")
            lines.append(f"{name}_count{suffix} {instrument.count}")
    return "\n".join(lines) + "\n"


def write_metrics_json(
    path: str | Path, registry: MetricsRegistry, extra: dict | None = None
) -> Path:
    """Write the snapshot (plus optional caller fields) to ``path``."""
    payload = registry_snapshot(registry)
    if extra:
        payload.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return path


def validate_metrics_snapshot(obj: dict) -> list[str]:
    """Structural validation of a metrics snapshot (empty = valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["metrics snapshot is not a JSON object"]
    if obj.get("schema") != "repro.obs.metrics/v1":
        errors.append(f"unknown schema {obj.get('schema')!r}")
    for section, value_required in (
        ("counters", True),
        ("gauges", True),
        ("histograms", False),
    ):
        items = obj.get(section)
        if not isinstance(items, list):
            errors.append(f"missing {section!r} list")
            continue
        for item in items:
            label = f"{section[:-1]} {item.get('name', '?')!r}"
            if not isinstance(item.get("name"), str) or not item["name"]:
                errors.append(f"{label}: missing name")
            if value_required:
                v = item.get("value")
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    errors.append(f"{label}: value {v!r} is not a finite number")
            else:
                if not isinstance(item.get("count"), int) or item["count"] < 0:
                    errors.append(f"{label}: count must be a non-negative int")
                for q_label, _ in QUANTILES:
                    q = item.get(q_label)
                    if not isinstance(q, (int, float)) or not math.isfinite(q) or q < 0:
                        errors.append(
                            f"{label}: {q_label} {q!r} is not a non-negative number"
                        )
                buckets = item.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    errors.append(f"{label}: missing buckets")
                else:
                    counts = [b[1] for b in buckets if isinstance(b, list)]
                    if counts != sorted(counts):
                        errors.append(f"{label}: bucket counts not cumulative")
                    if counts and counts[-1] != item.get("count"):
                        errors.append(f"{label}: +Inf bucket != total count")
    return errors
