"""Greedy bipartite matching over sparse pair lists.

A fast 1/2-approximation of maximum-weight matching: consider pairs in
decreasing weight order and take every pair whose endpoints are both
still free.  Used as a cheap comparator and inside tests as an
independent sanity bound on the Hungarian solver.
"""

from __future__ import annotations

import numpy as np


def greedy_max_weight_matching(
    rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
) -> tuple[list[tuple[int, int]], float]:
    """Greedy matching over ``(row, col, weight)`` triples.

    Pairs with non-positive weight are skipped (matching them can only
    hurt a maximization objective where staying unmatched scores 0).

    Returns:
        ``(assignment, total_weight)`` with ``assignment`` sorted by row.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = np.asarray(weights, dtype=float)
    if not (rows.shape == cols.shape == weights.shape):
        raise ValueError("rows, cols and weights must have identical shapes")

    order = np.argsort(-weights, kind="stable")
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    assignment: list[tuple[int, int]] = []
    total = 0.0
    for index in order:
        weight = float(weights[index])
        if weight <= 0.0:
            break  # sorted descending: nothing positive remains
        row, col = int(rows[index]), int(cols[index])
        if row in used_rows or col in used_cols:
            continue
        used_rows.add(row)
        used_cols.add(col)
        assignment.append((row, col))
        total += weight
    assignment.sort()
    return assignment, total


def greedy_max_weight_matching_dense(
    weights: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Greedy matching over a precomputed dense weight matrix.

    Callers that already hold a ``(rows, cols)`` weight matrix (e.g.
    the per-instance matrices cached on a problem) can pass it directly
    instead of rebuilding the sparse triple lists pair by pair.
    Non-positive and non-finite cells are never matched, so ``-inf``
    marks a forbidden pairing exactly as in ``hungarian_max_weight``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    eligible = np.isfinite(weights) & (weights > 0.0)
    rows, cols = np.nonzero(eligible)
    return greedy_max_weight_matching(rows, cols, weights[rows, cols])
