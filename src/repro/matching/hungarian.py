"""Kuhn-Munkres (Hungarian) assignment, O(n^3), from scratch.

The implementation is the shortest-augmenting-path formulation with
dual potentials.  ``hungarian_min_cost`` solves rectangular problems
with ``rows <= cols`` by transposing internally when needed;
``hungarian_max_weight`` is the maximization wrapper that also supports
*partial* assignment (a row may stay unmatched if every remaining
weight is non-positive) by padding with zero-weight dummy columns.
"""

from __future__ import annotations

import numpy as np

_INF = float("inf")


def hungarian_min_cost(cost: np.ndarray) -> tuple[list[tuple[int, int]], float]:
    """Minimum-cost perfect matching of rows onto columns.

    Args:
        cost: 2-D array; every row is matched to exactly one distinct
            column (requires ``rows <= cols``; transposed internally
            otherwise).

    Returns:
        ``(assignment, total_cost)`` with ``assignment`` a list of
        ``(row, col)`` pairs covering every row.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got shape {cost.shape}")
    if cost.size == 0:
        return [], 0.0
    if not np.isfinite(cost).all():
        raise ValueError("cost matrix must be finite")

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n, m = cost.shape

    # 1-indexed potentials and matching, the classic formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)  # match[j] = row matched to column j
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [_INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = _INF
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = row[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    assignment = []
    total = 0.0
    for j in range(1, m + 1):
        if match[j]:
            row, col = match[j] - 1, j - 1
            total += cost[row, col]
            if transposed:
                assignment.append((col, row))
            else:
                assignment.append((row, col))
    assignment.sort()
    return assignment, float(total)


def hungarian_max_weight(
    weights: np.ndarray, allow_unmatched: bool = True
) -> tuple[list[tuple[int, int]], float]:
    """Maximum-total-weight assignment of rows to columns.

    Args:
        weights: 2-D weight matrix; larger is better.  Entries may be
            ``-inf`` to forbid a pairing.
        allow_unmatched: when True (default), rows whose best option is
            non-positive are left unmatched (dummy columns with weight
            0 are added), which is the behaviour the quality-maximizing
            baseline needs — an invalid or worthless pair is simply not
            made.

    Returns:
        ``(assignment, total_weight)``; forbidden or dummy pairings are
        never reported.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    n, m = weights.shape
    if n == 0 or m == 0:
        return [], 0.0

    finite = np.where(np.isfinite(weights), weights, 0.0)
    largest = float(np.abs(finite).max(initial=0.0)) + 1.0
    forbidden_cost = 4.0 * largest * max(n, m)

    # Minimize the negated weights; forbidden cells get a huge cost.
    cost = np.where(np.isfinite(weights), -weights, forbidden_cost)
    if allow_unmatched:
        # Dummy columns with zero weight: matching a row to one means
        # leaving it unmatched.
        cost = np.hstack([cost, np.zeros((n, n))])

    assignment, _ = hungarian_min_cost(cost)
    real_pairs = []
    total = 0.0
    for row, col in assignment:
        if col >= m:
            continue  # dummy column: row left unmatched
        if not np.isfinite(weights[row, col]):
            continue  # forbidden cell chosen only if unavoidable
        real_pairs.append((row, col))
        total += float(weights[row, col])
    return real_pairs, total
