"""Kuhn-Munkres (Hungarian) assignment, O(n^3), from scratch.

The implementation is the shortest-augmenting-path formulation with
dual potentials.  ``hungarian_min_cost`` solves rectangular problems
with ``rows <= cols`` by transposing internally when needed;
``hungarian_max_weight`` is the maximization wrapper that also supports
*partial* assignment (a row may stay unmatched if every remaining
weight is non-positive) by padding with zero-weight dummy columns.

The inner loop is vectorized: each augmenting-path step scans a whole
cost row with NumPy (masked ``minv``/``way`` updates and an argmin for
the delta column) instead of iterating columns in Python.  The scalar
formulation is retained as :func:`_hungarian_reference` — it is the
differential-testing oracle (``tests/test_matching_hungarian.py``) and
the baseline the micro-bench (``benchmarks/test_micro_matching.py``)
measures speedups against.  Both paths share the same dual-potential
updates and tie-breaking (first column attaining the minimum wins), so
they produce identical assignments, not merely equal totals.

Warm starts
-----------

Shortest augmenting paths run Dijkstra over *reduced* costs, so any
dual-feasible ``(u, v)`` is a valid starting point and tighter duals
mean cheaper searches.  :class:`HungarianWarmStart` persists the final
potentials of a solve keyed by caller-supplied row/column identities;
:func:`hungarian_max_weight_warm` re-seeds the surviving entities'
potentials (repairing feasibility row-wise) on the next solve.

Warm-started runs walk different alternating paths than the canonical
cold run, so when the optimum is *degenerate* they may return a
different — equally optimal — matching.  Bit-identity with the cold
solver is therefore enforced by a post-solve *uniqueness certificate*:
the warm result is accepted only when every row has exactly one tight
column class under the final duals (which proves the optimal matching
is unique, hence equal to the cold one); otherwise the solver falls
back to the canonical cold run.  Ties and quantized inputs thus cost
one extra solve but can never change the answer.
"""

from __future__ import annotations

import numpy as np

_INF = float("inf")


def _validated_cost(cost: np.ndarray) -> np.ndarray:
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-D, got shape {cost.shape}")
    if cost.size and not np.isfinite(cost).all():
        raise ValueError("cost matrix must be finite")
    return cost


def _collect_assignment(
    cost: np.ndarray, match: np.ndarray, transposed: bool
) -> tuple[list[tuple[int, int]], float]:
    """Turn a column-to-row matching into the sorted pair list."""
    assignment = []
    total = 0.0
    for col, row in enumerate(match):
        if row < 0:
            continue
        total += cost[row, col]
        row = int(row)  # plain Python ints in the public API
        assignment.append((col, row) if transposed else (row, col))
    assignment.sort()
    return assignment, float(total)


def _solve_sap(
    cost: np.ndarray,
    u0: np.ndarray | None = None,
    v0: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shortest-augmenting-path core over an oriented matrix.

    ``cost`` must already satisfy ``rows <= cols`` and be contiguous.
    ``u0``/``v0`` are optional initial dual potentials; they must be
    dual-feasible (``cost[i, j] - u0[i] - v0[j] >= 0`` everywhere) —
    the reduced costs are Dijkstra edge weights and must stay
    non-negative.  ``None`` starts from zeros (the canonical cold
    run).  Returns ``(match, u, v)`` with ``match[j]`` the row matched
    to column ``j`` (``-1``: unmatched) and the final potentials.
    """
    n, m = cost.shape

    u = np.zeros(n) if u0 is None else np.array(u0, dtype=float)
    v = np.zeros(m) if v0 is None else np.array(v0, dtype=float)
    match = np.full(m, -1, dtype=np.int64)  # match[j] = row matched to column j
    way = np.full(m, -1, dtype=np.int64)
    free_idx = np.empty(m, dtype=np.int64)  # still-unvisited columns, ascending
    minv = np.empty(m)  # tentative slack, aligned with free_idx
    used_cols = np.empty(m, dtype=np.int64)  # visited columns, in visit order

    for i in range(n):
        way.fill(-1)
        free_idx[:] = np.arange(m)
        minv.fill(_INF)
        num_free = m
        num_used = 0
        i0 = i  # row whose edges are relaxed this step
        j0 = -1  # column the search currently sits on (-1: virtual start)
        while True:
            free = free_idx[:num_free]
            slack = minv[:num_free]
            # Same association order as the scalar oracle
            # ((row - u) - v), so ties resolve identically.
            reduced = cost[i0, free] - u[i0] - v[free]
            better = reduced < slack
            slack[better] = reduced[better]
            way[free[better]] = j0
            k1 = int(np.argmin(slack))
            delta = slack[k1]
            j1 = int(free[k1])
            # Dual update: the start row and every visited column's row
            # gain delta; unvisited columns' tentative slacks shrink.
            u[i] += delta
            if num_used:
                visited = used_cols[:num_used]
                u[match[visited]] += delta
                v[visited] -= delta
            slack -= delta
            # Retire j1 from the free set, preserving ascending order.
            free[k1 : num_free - 1] = free[k1 + 1 : num_free]
            slack[k1 : num_free - 1] = slack[k1 + 1 : num_free]
            num_free -= 1
            used_cols[num_used] = j1
            num_used += 1
            i0 = int(match[j1])
            j0 = j1
            if i0 < 0:
                break
        # Augment along the alternating path back to the virtual start.
        j = j0
        while j >= 0:
            j_prev = int(way[j])
            match[j] = i if j_prev < 0 else match[j_prev]
            j = j_prev

    return match, u, v


def hungarian_min_cost(cost: np.ndarray) -> tuple[list[tuple[int, int]], float]:
    """Minimum-cost perfect matching of rows onto columns.

    Args:
        cost: 2-D array; every row is matched to exactly one distinct
            column (requires ``rows <= cols``; transposed internally
            otherwise).

    Returns:
        ``(assignment, total_cost)`` with ``assignment`` a list of
        ``(row, col)`` pairs covering every row.
    """
    cost = _validated_cost(cost)
    if cost.size == 0:
        return [], 0.0

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    cost = np.ascontiguousarray(cost)
    match, _, _ = _solve_sap(cost)
    return _collect_assignment(cost, match, transposed)


def _hungarian_reference(cost: np.ndarray) -> tuple[list[tuple[int, int]], float]:
    """Scalar shortest-augmenting-path solver (differential oracle).

    Pure-Python port of the classic 1-indexed formulation; kept solely
    so the vectorized :func:`hungarian_min_cost` can be checked
    pair-for-pair and timed against it.  Do not call from production
    paths.
    """
    cost = _validated_cost(cost)
    if cost.size == 0:
        return [], 0.0

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n, m = cost.shape

    # 1-indexed potentials and matching, the classic formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)  # match[j] = row matched to column j
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [_INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = _INF
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = row[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    column_match = np.array(match[1:], dtype=np.int64) - 1
    return _collect_assignment(cost, column_match, transposed)


def max_weight_cost_matrix(weights: np.ndarray) -> np.ndarray:
    """The min-cost matrix equivalent to maximizing ``weights``.

    Negates the weights and replaces ``-inf`` (forbidden) cells with a
    finite cost so large that a forbidden pairing is chosen only when
    structurally unavoidable.  Callers that solve the same weight
    matrix repeatedly can precompute this once and hand it to
    :func:`hungarian_max_weight` via ``cost=``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    n, m = weights.shape
    finite = np.where(np.isfinite(weights), weights, 0.0)
    largest = float(np.abs(finite).max(initial=0.0)) + 1.0
    forbidden_cost = 4.0 * largest * max(n, m, 1)
    return np.where(np.isfinite(weights), -weights, forbidden_cost)


def hungarian_max_weight(
    weights: np.ndarray,
    allow_unmatched: bool = True,
    cost: np.ndarray | None = None,
) -> tuple[list[tuple[int, int]], float]:
    """Maximum-total-weight assignment of rows to columns.

    Args:
        weights: 2-D weight matrix; larger is better.  Entries may be
            ``-inf`` to forbid a pairing.
        allow_unmatched: when True (default), rows whose best option is
            non-positive are left unmatched (dummy columns with weight
            0 are added), which is the behaviour the quality-maximizing
            baseline needs — an invalid or worthless pair is simply not
            made.
        cost: optional precomputed :func:`max_weight_cost_matrix` of
            ``weights`` (without dummy padding); callers with cached
            matrices pass it to skip rebuilding the negation.

    Returns:
        ``(assignment, total_weight)``; forbidden or dummy pairings are
        never reported.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    n, m = weights.shape
    if n == 0 or m == 0:
        return [], 0.0

    if cost is None:
        cost = max_weight_cost_matrix(weights)
    else:
        cost = np.asarray(cost, dtype=float)
        if cost.shape != weights.shape:
            raise ValueError(
                f"cost shape {cost.shape} != weights shape {weights.shape}"
            )
    if allow_unmatched:
        # Dummy columns with zero weight: matching a row to one means
        # leaving it unmatched.
        cost = np.hstack([cost, np.zeros((n, n))])

    assignment, _ = hungarian_min_cost(cost)
    real_pairs = []
    total = 0.0
    for row, col in assignment:
        if col >= m:
            continue  # dummy column: row left unmatched
        if not np.isfinite(weights[row, col]):
            continue  # forbidden cell chosen only if unavoidable
        real_pairs.append((row, col))
        total += float(weights[row, col])
    return real_pairs, total


# ---------------------------------------------------------------------------
# Warm-started solves (persisted dual potentials)
# ---------------------------------------------------------------------------


class HungarianWarmStart:
    """Dual potentials persisted across solves, keyed by identity.

    ``column_duals``/``row_duals`` map caller-supplied ids (entity
    ids, not matrix positions) to the final potentials of the last
    solve; entities departing between solves simply drop out of the
    maps, arrivals seed at ``0``.  The counters record how often the
    warm attempt ran, was certified unique (accepted), fell back to
    the cold run, or was skipped outright on a degenerate (tied-entry)
    matrix.
    """

    __slots__ = (
        "column_duals",
        "row_duals",
        "solves",
        "warm_attempts",
        "warm_accepted",
        "warm_fallbacks",
        "degenerate_skips",
    )

    def __init__(self) -> None:
        self.column_duals: dict[int, float] = {}
        self.row_duals: dict[int, float] = {}
        self.solves = 0
        self.warm_attempts = 0
        self.warm_accepted = 0
        self.warm_fallbacks = 0
        self.degenerate_skips = 0


def _unique_optimum(
    cost: np.ndarray, u: np.ndarray, v: np.ndarray, num_real: int
) -> bool:
    """Certify that the optimal matching is unique (sufficient check).

    Under optimal duals every optimal matching uses only *tight*
    (zero-reduced-cost) edges — complementary slackness — and matches
    every row, so the optimal matchings are exactly the row-perfect
    matchings of the tight subgraph.  This peels forced rows: a row
    whose only tight option is one real column must take it in every
    optimal matching (consuming the column); a row tight only on dummy
    columns is unmatched in every one (dummies are identical and never
    scarce, so they count as a single inexhaustible class).  Peeling
    to completion proves the output unique; a stall means an
    alternating structure survives and the certificate conservatively
    fails.  SAP duals keep the whole augmenting forest tight, and
    peeling a forest always completes — so generic (untied) inputs
    certify, while ties stall.  The tolerance errs toward counting
    near-tight edges, i.e. toward failing — false negatives cost a
    cold re-solve, never correctness.
    """
    reduced = cost - u[:, None] - v[None, :]
    scale = float(np.abs(cost[:, :num_real]).max(initial=0.0)) + 1.0
    tight = reduced <= 1e-9 * scale
    real = tight[:, :num_real].copy()
    dummy = (
        tight[:, num_real:].any(axis=1)
        if num_real < cost.shape[1]
        else np.zeros(cost.shape[0], dtype=bool)
    )
    alive = np.ones(cost.shape[0], dtype=bool)
    while alive.any():
        degree = real.sum(axis=1) + dummy
        forced = alive & (degree == 1)
        if not forced.any():
            return False
        forced_real = forced & ~dummy
        if forced_real.any():
            cols = real[forced_real].argmax(axis=1)
            if np.unique(cols).size != cols.size:
                # Two rows forced onto one column: only the tolerance
                # can produce this — reject.
                return False
            real[:, cols] = False
        alive[forced] = False
        real[~alive] = False
    return True


def hungarian_max_weight_warm(
    weights: np.ndarray,
    row_ids,
    col_ids,
    warm: HungarianWarmStart,
    cost: np.ndarray | None = None,
) -> tuple[list[tuple[int, int]], float, bool]:
    """:func:`hungarian_max_weight` with persisted-dual warm starts.

    Args:
        weights: 2-D weight matrix (``allow_unmatched`` semantics —
            dummy columns are always padded).
        row_ids / col_ids: stable identities of the rows/columns,
            used to re-seed surviving entities' potentials from
            ``warm`` and to persist this solve's potentials back.
        warm: the cross-solve dual store (mutated in place).
        cost: optional precomputed :func:`max_weight_cost_matrix`.

    Returns:
        ``(assignment, total_weight, used_warm)`` — bit-identical to
        :func:`hungarian_max_weight` in all cases.  ``used_warm`` is
        True when the warm attempt was certified and its result used;
        otherwise the canonical cold solve produced the result.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    n, m = weights.shape
    if len(row_ids) != n or len(col_ids) != m:
        raise ValueError(
            f"got {len(row_ids)} row ids / {len(col_ids)} col ids for a "
            f"{n} x {m} weight matrix"
        )
    if n == 0 or m == 0:
        return [], 0.0, False

    if cost is None:
        cost = max_weight_cost_matrix(weights)
    else:
        cost = np.asarray(cost, dtype=float)
        if cost.shape != weights.shape:
            raise ValueError(
                f"cost shape {cost.shape} != weights shape {weights.shape}"
            )
    # Dummy columns; n <= m + n always holds, so no transpose here.
    padded = np.hstack([cost, np.zeros((n, n))])
    warm.solves += 1

    v_seed = np.zeros(m + n)
    seeded = 0
    for j, col_id in enumerate(col_ids):
        dual = warm.column_duals.get(col_id)
        if dual is not None:
            # Clamp to the dual sign constraint: a column may end up
            # unmatched, which requires v <= 0 at termination.  The
            # solver only ever lowers visited columns' potentials, so
            # a non-positive seed keeps the end state dual-feasible
            # (an unclamped positive carry-over can certify a
            # suboptimal matching).
            v_seed[j] = min(dual, 0.0)
            seeded += 1

    used_warm = False
    match = u = v = None
    if seeded:
        # Tied entries make a degenerate optimum likely; the
        # certificate below would reject the warm run anyway, so skip
        # the doomed attempt instead of solving twice.
        finite = weights[np.isfinite(weights)]
        if np.unique(finite).size != finite.size:
            warm.degenerate_skips += 1
        else:
            warm.warm_attempts += 1
            # Row-wise feasibility repair: u[i] = min_j reduced cost
            # keeps every Dijkstra edge weight non-negative whatever
            # column potentials survived.
            u_seed = (padded - v_seed[None, :]).min(axis=1)
            match, u, v = _solve_sap(padded, u_seed, v_seed)
            # Optimality needs one condition beyond feasibility and
            # tight matched edges: an *unmatched* column must end with
            # zero potential (complementary slackness — the dual
            # objective counts every column).  Cold runs satisfy this
            # by construction because the search only lowers potentials
            # of columns already in the alternating tree, which are
            # matched; a seeded column that ends up unmatched and
            # unvisited keeps its negative carry-over, and certifying
            # uniqueness from such duals would bless a suboptimal
            # matching.
            slack_cols_clean = not (v[match < 0] < 0.0).any()
            if slack_cols_clean and _unique_optimum(padded, u, v, m):
                warm.warm_accepted += 1
                used_warm = True
            else:
                warm.warm_fallbacks += 1
    if not used_warm:
        match, u, v = _solve_sap(padded)

    warm.column_duals = {
        col_id: float(v[j]) for j, col_id in enumerate(col_ids)
    }
    warm.row_duals = {row_id: float(u[i]) for i, row_id in enumerate(row_ids)}

    assignment, _ = _collect_assignment(padded, match, False)
    real_pairs = []
    total = 0.0
    for row, col in assignment:
        if col >= m:
            continue  # dummy column: row left unmatched
        if not np.isfinite(weights[row, col]):
            continue  # forbidden cell chosen only if unavoidable
        real_pairs.append((row, col))
        total += float(weights[row, col])
    return real_pairs, total, used_warm
