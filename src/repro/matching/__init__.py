"""Bipartite matching substrate.

The MQA heuristics do not need optimal matchings, but two baselines do:
the clairvoyant/offline quality-maximizing assignment used in the
examples and tests (Kuhn-Munkres), and a simple greedy matcher.  Both
are implemented from scratch; the test suite cross-validates the
Hungarian solver against ``scipy.optimize.linear_sum_assignment``.
"""

from repro.matching.hungarian import (
    hungarian_min_cost,
    hungarian_max_weight,
    max_weight_cost_matrix,
)
from repro.matching.bipartite import (
    greedy_max_weight_matching,
    greedy_max_weight_matching_dense,
)

__all__ = [
    "hungarian_min_cost",
    "hungarian_max_weight",
    "max_weight_cost_matrix",
    "greedy_max_weight_matching",
    "greedy_max_weight_matching_dense",
]
