"""Event-driven streaming assignment layer.

A second execution layer beside the batch framework loop
(:mod:`repro.simulation`): entity lifecycles are events on a
continuous timeline, assignment happens in configurable micro-batch
rounds, and candidate pairs are generated output-sensitively through
the spatial index (:mod:`repro.geo.spatial_index` feeding
:func:`repro.model.sparse.build_problem_sparse`).

With instance-aligned rounds the streaming engine reproduces the batch
engine's results exactly — the two layers are differentially tested
against each other — while finer intervals and the
:class:`StreamingService` facade open the online-serving scenarios the
batch loop cannot express.
"""

from repro.streaming.events import (
    Event,
    EventQueue,
    TaskArrival,
    TaskExpiry,
    WorkerArrival,
    WorkerRelease,
)
from repro.streaming.engine import StreamConfig, StreamingEngine
from repro.streaming.adapters import (
    load_workload,
    prepared_engine,
    run_stream,
    workload_events,
)
from repro.streaming.service import StreamSnapshot, StreamingService
from repro.streaming.recovery import (
    CheckpointWriter,
    JournaledService,
    OpJournal,
    RecoveryError,
    state_digest,
)
from repro.streaming.server import (
    AdmissionError,
    ServerConfig,
    StreamServer,
    TenantSpec,
)
from repro.streaming.sharding import (
    ShardedStreamingEngine,
    ShardingConfig,
    build_problem_sharded,
    prepared_sharded_engine,
    run_sharded_stream,
)

__all__ = [
    "Event",
    "EventQueue",
    "WorkerArrival",
    "TaskArrival",
    "TaskExpiry",
    "WorkerRelease",
    "StreamConfig",
    "StreamingEngine",
    "workload_events",
    "load_workload",
    "prepared_engine",
    "run_stream",
    "StreamSnapshot",
    "StreamingService",
    "OpJournal",
    "CheckpointWriter",
    "JournaledService",
    "RecoveryError",
    "state_digest",
    "AdmissionError",
    "ServerConfig",
    "StreamServer",
    "TenantSpec",
    "ShardingConfig",
    "ShardedStreamingEngine",
    "build_problem_sharded",
    "prepared_sharded_engine",
    "run_sharded_stream",
]
