"""One incremental round pipeline: per-tile persistent build state.

This module fuses the repo's two incremental layers — the
:class:`~repro.model.delta.DeltaPoolBuilder` candidate cache (PR 5)
and warm :class:`~repro.core.triplet_select.SelectionState` repair
(PR 6) — into the sharded build path (PR 4), so the serial engine is
literally the K=1 case of the sharded engine instead of a parallel
implementation:

- :class:`TilePipeline` owns one tile's persistent round state: the
  tile's entity lists, a :class:`DeltaPoolBuilder` in external-journal
  mode over the tile's slice of the task-index journal, and the churn
  bookkeeping that keeps both consistent across rounds.
- :class:`TileChurnSplitter` fans the engine's single spatial-index
  mutation journal out to per-tile op streams at *cell* granularity.
  Entities crossing a tile border (more precisely: a tile's grow-only
  margin zone, :class:`~repro.geo.tiles.TileZones`) drop-and-rejoin
  exactly like slack crossings in the serial delta builder — losing
  tiles see a synthetic remove, gaining tiles re-prime, and the
  crossing is surfaced as a ``border_rejoin`` observability event.
- :class:`FusedRoundBuilder` orchestrates a round: it repairs a
  parent-side mirror of the global entity columns in O(churn), splits
  the journal, drives every tile pipeline through a
  :class:`TileRunner` backend (inline for serial/thread, shared-memory
  worker pool for process — see :mod:`repro.streaming.shm`), maps the
  tile-local emissions into global coordinates, and hands the merged
  triplets to the sharded builder's phase-2 reconcile pass
  (:func:`repro.streaming.sharding._reconcile`).  The emitted pool is
  therefore bit-identical to both the serial delta builder and the
  fresh builders — the same proof obligation PRs 4–6 carried.

Warm selection composes through the same machinery: each tile's
emission carries the per-row rank it held in the tile's *previous*
emission, the parent composes those through the previous round's
merged positions into a trusted global ``row_origin`` map, and
annotates the round's :class:`~repro.model.delta.ChurnRecord` exactly
like the serial delta builder does — so ``SelectionState`` repairs
from verbatim survivors instead of self-diffing pair identities.

Correctness hinges on one structural invariant, preserved everywhere:
**tile entity lists are monotone subsequences of the engine's global
lists** (removals keep order, arrivals append at the tail, zone
membership never reorders).  Local→global index maps are then
monotone, tile-local canonical (row, col) order maps into global
canonical order, and per-tile ``prev_origin`` ranks compose into a
strictly increasing global origin map — the precondition the
selection layer's trusted repair path checks for.

The refresh-retry protocol
--------------------------

A churn message is a *claim* about a tile's state that the tile
itself re-verifies (population counts, consistency bounds, journal
contiguity).  A pipeline that cannot apply its delta trustworthily —
a stale worker restarted mid-stream, an expectation mismatch, any
verification guard — does **not** guess: it returns ``None`` as its
round outcome.  The parent then re-sends that tile a *refresh*
message (``_refresh_message``: the tile's wholesale entity lists
instead of a delta) within the same round, the tile cold-primes from
it, and the round's emission is still exact — a refresh is the
always-correct slow path, so degraded rounds lose speed, never
bit-identity.  A tile that rejects its own refresh payload has no
correct state to fall back to, and the parent raises ``RuntimeError``
rather than emit an unverified pool.  Retry traffic is counted into
the same round's ``ipc_bytes`` total, so the observability layer
(:mod:`repro.obs`) surfaces refresh storms instead of hiding them.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from concurrent.futures import Executor

import numpy as np

from repro.geo.box import Box
from repro.geo.point import Point
from repro.geo.spatial_index import SpatialIndex
from repro.geo.tiles import TileGrid, TileZones
from repro.model.delta import (
    ChurnRecord,
    DeltaBuildStats,
    DeltaPoolBuilder,
    PartitionEmission,
    PredictedTaskColumns,
    PredictedWorkerColumns,
    predicted_task_columns,
    predicted_worker_columns,
)
from repro.model.entities import Task, Worker
from repro.model.instance import ProblemInstance, validate_predicted_flags
from repro.model.quality import QualityModel
from repro.model.sparse import (
    _EMPTY_IDX,
    _RADIUS_SLACK,
    SparseBuildStats,
    _task_columns,
    _worker_columns,
)
from repro.obs.metrics import monotonic
from repro.streaming.sharding import _ReconcileContext, _reconcile, _ShardResult

__all__ = [
    "FusedRoundBuilder",
    "InlineTileRunner",
    "PipelineSpec",
    "TileChurnSplitter",
    "TilePipeline",
    "TileRoundMessage",
    "TileRoundOutcome",
    "TileRunnerBroken",
]


class TileRunnerBroken(RuntimeError):
    """A parallel tile runner that can no longer make progress.

    Raised by a supervised backend (the shm process runner) once its
    crash-loop respawn budget is exhausted — the signal for
    :class:`FusedRoundBuilder` to degrade the stream to the inline
    serial path instead of dying.  The runner has already settled its
    surviving workers when this is raised, so ``close()`` starts from
    a known state.
    """

_EMPTY_F = np.zeros(0)


# ---------------------------------------------------------------------------
# Round messages (parent -> tile) and outcomes (tile -> parent)
# ---------------------------------------------------------------------------


@dataclass
class TileRoundMessage:
    """One round's instructions for one tile pipeline.

    Either ``refresh`` carries the tile's wholesale entity lists (the
    pipeline replaces its state and primes), or the message is a pure
    churn delta: the tile's slice of the index journal plus the
    engine-journaled worker churn, with entity *objects* only for the
    arrivals.  This is the entire per-round payload a process-backend
    worker receives — its size is O(tile churn), not O(tile state),
    which is what shrinks the round IPC from full pools to deltas.

    ``expect_*`` / ``*_id_bounds`` are the parent's view of the tile's
    post-churn population (derived from its global mirror and the
    zones); the pipeline cross-checks them so the local→global index
    maps the parent builds are provably aligned with the tile lists.
    """

    tile: int
    ops: list = field(default_factory=list)
    refresh: tuple[list[Worker], list[Task]] | None = None
    task_arrivals: dict[int, Task] = field(default_factory=dict)
    worker_arrivals: list[Worker] = field(default_factory=list)
    worker_removed_ids: list[int] = field(default_factory=list)
    pw_rows: np.ndarray = field(default_factory=lambda: _EMPTY_IDX)
    expect_workers: int = -1
    expect_tasks: int = -1
    worker_id_bounds: tuple[int, int] = (-1, -1)
    task_id_bounds: tuple[int, int] = (-1, -1)


@dataclass
class TileRoundOutcome:
    """One tile's emission plus the stats snapshots the parent books."""

    tile: int
    emission: PartitionEmission
    delta_stats: DeltaBuildStats
    sparse_stats: SparseBuildStats
    incremental: bool


# ---------------------------------------------------------------------------
# TilePipeline: one tile's persistent round state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineSpec:
    """Everything needed to construct one tile's pipeline.

    A plain picklable bundle so runner backends can build pipelines
    wherever they live — in the parent for the inline backends, inside
    pre-forked workers for the shared-memory process backend.
    """

    quality_model: QualityModel
    unit_cost: float
    index_gamma: int
    slack: float = 0.0
    rebuild_churn_ratio: float = 0.5
    discount_by_existence: bool = True
    reservation_filter: bool = True
    include_future_future_pairs: bool = True
    exact_predicted_quality: bool = False

    def make(self, tile: int) -> "TilePipeline":
        return TilePipeline(tile, self)


class TilePipeline:
    """One tile's persistent build state across rounds.

    Owns the tile's entity lists and a :class:`DeltaPoolBuilder` in
    external-journal mode; :meth:`run_round` applies one round's churn
    message, repairs the pool, and emits the tile's partition.  The
    list discipline mirrors the engine's own: removals filter in
    place (order preserved), arrivals append at the tail — which keeps
    the tile lists monotone subsequences of the global lists, the
    invariant the parent's local→global index maps rely on.
    """

    def __init__(self, tile: int, spec: PipelineSpec) -> None:
        self.tile = tile
        self.workers: list[Worker] = []
        self.tasks: list[Task] = []
        self._task_ids: set[int] = set()
        self.builder = DeltaPoolBuilder(
            spec.quality_model,
            spec.unit_cost,
            None,
            discount_by_existence=spec.discount_by_existence,
            reservation_filter=spec.reservation_filter,
            include_future_future_pairs=spec.include_future_future_pairs,
            exact_predicted_quality=spec.exact_predicted_quality,
            index_gamma=spec.index_gamma,
            slack=spec.slack,
            rebuild_churn_ratio=spec.rebuild_churn_ratio,
            assume_static_queries=True,
        )

    def run_round(
        self,
        message: TileRoundMessage,
        now: float,
        predicted_workers: PredictedWorkerColumns | None,
        predicted_tasks: PredictedTaskColumns | None,
    ) -> TileRoundOutcome | None:
        """Apply one round's message; ``None`` asks the parent for a
        refresh (the churn delta could not be applied trustworthily)."""
        started = monotonic()
        local = SparseBuildStats()
        if message.refresh is not None:
            workers, tasks = message.refresh
            self.workers = list(workers)
            self.tasks = list(tasks)
            self._task_ids = {t.id for t in self.tasks}
            ops = None  # untrusted feed -> the builder re-primes
            arrivals = removed = None
        else:
            if not self._apply_churn(message):
                return None
            ops = message.ops
            arrivals = message.worker_arrivals
            removed = message.worker_removed_ids
        if not self._consistent(message):
            return None
        incremental = self.builder.repair(
            self.workers,
            self.tasks,
            now,
            worker_arrivals=arrivals,
            worker_removed_ids=removed,
            ops=ops,
            local=local,
        )
        pw = None
        if predicted_workers is not None and message.pw_rows.size:
            pw = predicted_workers.take(message.pw_rows)
        emission = self.builder.emit_partition(now, pw, predicted_tasks, local=local)
        emission.incremental = incremental
        emission.build_seconds = monotonic() - started
        return TileRoundOutcome(
            tile=self.tile,
            emission=emission,
            delta_stats=replace(self.builder.delta_stats),
            sparse_stats=local,
            incremental=incremental,
        )

    def _apply_churn(self, message: TileRoundMessage) -> bool:
        """Net the tile's routed ops into list edits (same semantics as
        the delta builder's journal replay); False = cannot trust."""
        removed: set[int] = set()
        new_keys: list[int] = []
        new_seen: set[int] = set()
        moved: dict[int, tuple[float, float]] = {}
        for op in message.ops:
            kind, key = op[0], op[1]
            if kind == "insert":
                if key in new_seen or (key in self._task_ids and key not in removed):
                    return False
                new_keys.append(key)
                new_seen.add(key)
            elif kind == "remove":
                if key in new_seen:
                    new_keys.remove(key)
                    new_seen.discard(key)
                elif key in self._task_ids and key not in removed:
                    removed.add(key)
                else:
                    return False
            elif kind == "move":
                if key in new_seen:
                    continue  # the arrival object carries final coords
                if key not in self._task_ids:
                    return False
                # Journal coords are authoritative (the serial delta
                # cache's semantics): the stored object must follow,
                # or a later re-prime rebuilds from stale positions.
                moved[key] = (op[2], op[3])
            else:
                return False
        arriving: list[Task] = []
        for key in new_keys:
            obj = message.task_arrivals.get(key)
            if obj is None:
                return False
            arriving.append(obj)
        if message.worker_removed_ids:
            gone = set(message.worker_removed_ids)
            before = len(self.workers)
            self.workers = [w for w in self.workers if w.id not in gone]
            if before - len(self.workers) != len(gone):
                return False
        if message.worker_arrivals:
            self.workers.extend(message.worker_arrivals)
        if removed:
            self.tasks = [t for t in self.tasks if t.id not in removed]
            self._task_ids -= removed
        if moved:
            for position, task in enumerate(self.tasks):
                coords = moved.get(task.id)
                if coords is not None:
                    point = Point(*coords)
                    self.tasks[position] = replace(
                        task, location=point, box=Box.from_point(point)
                    )
        if arriving:
            self.tasks.extend(arriving)
            self._task_ids.update(t.id for t in arriving)
        return True

    def _consistent(self, message: TileRoundMessage) -> bool:
        """Cross-check the post-churn lists against the parent's view."""
        if message.expect_workers >= 0:
            if len(self.workers) != message.expect_workers:
                return False
            if self.workers and (
                (self.workers[0].id, self.workers[-1].id)
                != message.worker_id_bounds
            ):
                return False
        if message.expect_tasks >= 0:
            if len(self.tasks) != message.expect_tasks:
                return False
            if self.tasks and (
                (self.tasks[0].id, self.tasks[-1].id) != message.task_id_bounds
            ):
                return False
        return True


# ---------------------------------------------------------------------------
# TileChurnSplitter: one journal -> per-tile op streams
# ---------------------------------------------------------------------------


class TileChurnSplitter:
    """Route a spatial-index journal to per-tile op streams.

    Routing is by grid cell against the grow-only
    :class:`~repro.geo.tiles.TileZones` membership: an insert fans out
    to every tile whose zone contains the entity's cell, a remove to
    the tiles of its *last known* cell, and a move decomposes per
    tile — zone-keeping tiles see the move, zone-losing tiles a
    synthetic remove (the incremental drop half of the border
    crossing), and zone-*gaining* tiles are flagged for a re-prime
    (the rejoin half: a gained entity would splice into the middle of
    the tile's task list, which the append-only list discipline
    forbids).  Each gaining crossing is counted as a border rejoin.
    """

    def __init__(self, zones: TileZones) -> None:
        self._zones = zones
        self._grid = zones.grid
        self._cell_of: dict[int, int] = {}
        self.border_rejoins_total = 0

    def reset(self, keys: np.ndarray, cells: np.ndarray) -> None:
        """Rebuild the key→cell map after a full parent refresh."""
        self._cell_of = dict(zip(keys.tolist(), cells.tolist()))

    def split(
        self, ops: list
    ) -> tuple[dict[int, list], set[int], list[int]] | None:
        """One round's ops → (ops per tile, tiles to refresh, rejoin
        tiles — one entry per border crossing).  ``None`` means the
        feed contradicts the known population: refresh everything."""
        per_tile: dict[int, list] = {}
        refresh: set[int] = set()
        rejoin_tiles: list[int] = []
        for op in ops:
            kind, key, x, y = op
            if kind == "insert":
                if key in self._cell_of:
                    return None
                cell = int(self._grid.cell_of(Point(x, y)))
                self._cell_of[key] = cell
                for tile in self._zones.tiles_of_cell(cell).tolist():
                    per_tile.setdefault(tile, []).append(op)
            elif kind == "remove":
                cell = self._cell_of.pop(key, None)
                if cell is None:
                    return None
                for tile in self._zones.tiles_of_cell(cell).tolist():
                    per_tile.setdefault(tile, []).append(op)
            elif kind == "move":
                old = self._cell_of.get(key)
                if old is None:
                    return None
                cell = int(self._grid.cell_of(Point(x, y)))
                self._cell_of[key] = cell
                if cell == old:
                    for tile in self._zones.tiles_of_cell(cell).tolist():
                        per_tile.setdefault(tile, []).append(op)
                    continue
                both = self._zones.tiles_of_cells(np.array([old, cell]))
                old_mask, new_mask = both[:, 0], both[:, 1]
                for tile in np.flatnonzero(old_mask & new_mask).tolist():
                    per_tile.setdefault(tile, []).append(op)
                for tile in np.flatnonzero(old_mask & ~new_mask).tolist():
                    per_tile.setdefault(tile, []).append(("remove", key, x, y))
                gained = np.flatnonzero(new_mask & ~old_mask)
                if gained.size:
                    refresh.update(gained.tolist())
                    rejoin_tiles.extend(gained.tolist())
        self.border_rejoins_total += len(rejoin_tiles)
        return per_tile, refresh, rejoin_tiles


def _net_task_ops(
    ops: list, known: set[int]
) -> tuple[set[int], dict[int, tuple[float, float]], dict[int, tuple[float, float]]] | None:
    """Net one round's raw ops against the known population.

    Returns ``(removed keys, net-new key → final coords, moved key →
    final coords)`` with the delta builder's replay semantics (insert
    of a known key is a contradiction, remove nets a same-round
    insert away, a move of a net-new key just updates its coords), or
    ``None`` when the feed contradicts ``known``.
    """
    removed: set[int] = set()
    new: dict[int, tuple[float, float]] = {}
    moved: dict[int, tuple[float, float]] = {}
    for kind, key, x, y in ops:
        if kind == "insert":
            if key in new or (key in known and key not in removed):
                return None
            new[key] = (x, y)
            moved.pop(key, None)
        elif kind == "remove":
            if key in new:
                del new[key]
            elif key in known and key not in removed:
                removed.add(key)
                moved.pop(key, None)
            else:
                return None
        elif kind == "move":
            if key in new:
                new[key] = (x, y)
            elif key in known and key not in removed:
                moved[key] = (x, y)
            else:
                return None
        else:
            return None
    return removed, new, moved


# ---------------------------------------------------------------------------
# Tile runners: where the pipelines live
# ---------------------------------------------------------------------------


class InlineTileRunner:
    """Runs tile pipelines in the parent process.

    ``executor=None`` runs the tiles sequentially (the serial
    backend — and the K=1 serial engine); a thread pool runs them
    concurrently (the numpy kernels release the GIL).  The process
    backend lives in :mod:`repro.streaming.shm` behind the same
    interface, with the pipelines held by pre-forked workers.
    """

    #: Inline rounds exchange no bytes — the arrays are shared already.
    ipc_bytes_total = 0

    def __init__(
        self, num_tiles: int, spec: PipelineSpec, executor: Executor | None = None
    ) -> None:
        self._pipelines = [spec.make(tile) for tile in range(num_tiles)]
        self._executor = executor

    def run(
        self,
        messages: list[TileRoundMessage],
        now: float,
        predicted_workers: PredictedWorkerColumns | None,
        predicted_tasks: PredictedTaskColumns | None,
    ) -> list[TileRoundOutcome | None]:
        def _one(message: TileRoundMessage) -> TileRoundOutcome | None:
            return self._pipelines[message.tile].run_round(
                message, now, predicted_workers, predicted_tasks
            )

        if self._executor is None or len(messages) <= 1:
            return [_one(message) for message in messages]
        return list(self._executor.map(_one, messages))

    def delta_stats_by_tile(self) -> list[DeltaBuildStats]:
        return [pipe.builder.delta_stats for pipe in self._pipelines]

    def close(self) -> None:  # symmetric with the shm runner
        pass


# ---------------------------------------------------------------------------
# FusedRoundBuilder: the parent-side orchestrator
# ---------------------------------------------------------------------------


class FusedRoundBuilder:
    """Round builder with persistent per-tile state, fused end to end.

    Same contract (and bit-identical output) as
    :func:`~repro.streaming.sharding.build_problem_sharded` and the
    serial :class:`~repro.model.delta.DeltaPoolBuilder` on the same
    arguments — but steady-state cost O(churn + valid pairs) per
    round, across every backend.  Construct once per stream with the
    engine's maintained task index (the builder subscribes to its
    journal) and call :meth:`build_round` each round.

    ``runner_factory`` injects a backend (the shared-memory process
    runner); by default tiles run inline, optionally fanned over
    ``executor`` (also reused for the reconcile pass's parallel
    pricing).
    """

    def __init__(
        self,
        quality_model: QualityModel,
        unit_cost: float,
        tiles: TileGrid,
        task_index: SpatialIndex,
        *,
        executor: Executor | None = None,
        runner_factory: Callable[[PipelineSpec, int], object] | None = None,
        discount_by_existence: bool = True,
        reservation_filter: bool = True,
        include_future_future_pairs: bool = True,
        exact_predicted_quality: bool = False,
        index_gamma: int | None = None,
        slack: float = 0.0,
        rebuild_churn_ratio: float = 0.5,
        margin_floor: float = 0.0,
        stats: SparseBuildStats | None = None,
    ) -> None:
        if slack > 0.0 and tiles.num_tiles > 1:
            raise ValueError(
                "per-tile delta pools do not support motion slack: a "
                "slack-drifting anchor has no single owning tile (run "
                "one tile, or slack=0)"
            )
        self._quality_model = quality_model
        self._unit_cost = float(unit_cost)
        self._tiles = tiles
        self._grid = task_index.grid
        self._log = task_index.subscribe()
        self._discount = discount_by_existence
        self._reservation = reservation_filter
        self._future_future = include_future_future_pairs
        self._exact_predicted = exact_predicted_quality
        self._margin_floor = float(margin_floor)
        self._stats = stats
        self._executor = executor
        self._zones = TileZones(tiles, self._grid)
        self._splitter = TileChurnSplitter(self._zones)
        spec = PipelineSpec(
            quality_model=quality_model,
            unit_cost=unit_cost,
            index_gamma=index_gamma or task_index.grid.gamma,
            slack=float(slack),
            rebuild_churn_ratio=rebuild_churn_ratio,
            discount_by_existence=discount_by_existence,
            reservation_filter=reservation_filter,
            include_future_future_pairs=include_future_future_pairs,
            exact_predicted_quality=exact_predicted_quality,
        )
        self._spec = spec
        if runner_factory is not None:
            self._runner = runner_factory(spec, tiles.num_tiles)
        else:
            self._runner = InlineTileRunner(tiles.num_tiles, spec, executor)
        #: True once a broken parallel backend has been swapped for the
        #: inline serial path (see :meth:`_degrade`).
        self.degraded = False
        self._supervision_events: list[tuple[str, dict]] = []
        self._ipc_bytes_base = 0
        self._respawns_base = 0
        self._respawn_seconds_base = 0.0

        # Parent-side mirror of the global entity columns, repaired in
        # O(churn) per round and verified against the engine's lists.
        self._trusted = False
        self._last_now = -np.inf
        self._w_ids = _EMPTY_IDX
        self._wx = self._wy = self._wvel = self._warr = _EMPTY_F
        self._w_owner = _EMPTY_IDX
        self._t_ids = _EMPTY_IDX
        self._tx = self._ty = self._tdl = self._tarr = _EMPTY_F
        self._t_cells = _EMPTY_IDX
        self._t_key_set: set[int] = set()
        # Previous round's merged-pool row of each tile's cc rows (in
        # tile emission order) — the origin-composition tables.
        self._prev_pos: list[np.ndarray] = [_EMPTY_IDX] * tiles.num_tiles
        self._last_total = -1
        self.last_churn: ChurnRecord | None = None
        #: Bytes exchanged with the runner backend last round (0 for
        #: the inline backends — their arrays are shared).
        self.ipc_bytes_last_round = 0

    @property
    def tiles(self) -> TileGrid:
        return self._tiles

    @property
    def zones(self) -> TileZones:
        return self._zones

    @property
    def ipc_bytes_total(self) -> int:
        """Cumulative bytes exchanged with the runner backend (0 for
        the inline backends, whose arrays are shared in-process).

        Survives a mid-stream degradation: bytes exchanged with a
        runner that was later replaced stay counted.
        """
        return self._ipc_bytes_base + int(
            getattr(self._runner, "ipc_bytes_total", 0)
        )

    @property
    def respawns_total(self) -> int:
        """Worker respawns across the builder's lifetime (0 for the
        inline backends; survives a mid-stream degradation)."""
        return self._respawns_base + int(
            getattr(self._runner, "respawns_total", 0)
        )

    @property
    def respawn_seconds_total(self) -> float:
        """Wall-clock seconds spent respawning workers (backoff +
        process start; survives a mid-stream degradation)."""
        return self._respawn_seconds_base + float(
            getattr(self._runner, "respawn_seconds_total", 0.0)
        )

    @property
    def delta_stats(self) -> DeltaBuildStats:
        """Aggregate of the per-tile builders' counters.

        ``rounds`` counts tile-rounds (K tiles × rounds), so the
        derived incremental rate is the *per-tile average* — the
        health floor the acceptance criteria gate on.
        """
        aggregate = DeltaBuildStats()
        for tile_stats in self._runner.delta_stats_by_tile():
            aggregate.rounds += tile_stats.rounds
            aggregate.primes += tile_stats.primes
            aggregate.incremental_rounds += tile_stats.incremental_rounds
            aggregate.rows_joined += tile_stats.rows_joined
            aggregate.cols_joined += tile_stats.cols_joined
            aggregate.pairs_cached += tile_stats.pairs_cached
            aggregate.revalidated += tile_stats.revalidated
            aggregate.moved_within_slack += tile_stats.moved_within_slack
            aggregate.rejoined_for_motion += tile_stats.rejoined_for_motion
        return aggregate

    def close(self) -> None:
        """Release the runner backend (workers, shared memory)."""
        self._runner.close()

    # -- supervision ---------------------------------------------------------

    def _run_tiles(
        self, messages, now, pw_cols, pt_cols, refresh_message, refresh_tiles
    ):
        """One runner invocation, degradation-protected.

        A supervised backend whose respawn budget is exhausted raises
        :class:`TileRunnerBroken`; the response is to swap in the
        inline serial runner and re-prime every requested tile through
        the wholesale-refresh path — the always-correct slow path, so
        the round (and the stream) completes bit-identically.
        """
        try:
            return self._runner.run(messages, now, pw_cols, pt_cols)
        except TileRunnerBroken as exc:
            self._degrade(exc)
            refresh_tiles.update(message.tile for message in messages)
            fresh = [refresh_message(message.tile) for message in messages]
            outcomes = self._runner.run(fresh, now, pw_cols, pt_cols)
            if any(outcome is None for outcome in outcomes):
                raise RuntimeError(
                    "tile pipeline rejected its own refresh payload"
                ) from exc
            return outcomes

    def _degrade(self, exc: "TileRunnerBroken") -> None:
        """Swap the broken parallel backend for the inline serial path."""
        self._drain_runner_events()
        self._ipc_bytes_base += int(getattr(self._runner, "ipc_bytes_total", 0))
        self._respawns_base += int(getattr(self._runner, "respawns_total", 0))
        self._respawn_seconds_base += float(
            getattr(self._runner, "respawn_seconds_total", 0.0)
        )
        try:
            self._runner.close()
        except Exception:
            pass  # the backend is already broken; reclaim what we can
        self._runner = InlineTileRunner(
            self._tiles.num_tiles, self._spec, self._executor
        )
        self.degraded = True
        self._supervision_events.append(("degraded", {"reason": str(exc)}))

    def _drain_runner_events(self) -> None:
        runner_events = getattr(self._runner, "events", None)
        if runner_events:
            self._supervision_events.extend(runner_events)
            runner_events.clear()

    def drain_supervision_events(self) -> list[tuple[str, dict]]:
        """Fault-handling events since the last drain: ``(kind,
        detail)`` with kind ∈ ``deadline_timeout`` / ``worker_death`` /
        ``backoff_wait`` / ``respawn`` / ``degraded`` — the engine
        forwards them to the observer after each round."""
        self._drain_runner_events()
        events, self._supervision_events = self._supervision_events, []
        return events

    # -- the round ----------------------------------------------------------

    def build_round(
        self,
        current_workers: Sequence[Worker],
        current_tasks: Sequence[Task],
        predicted_workers: Sequence[Worker],
        predicted_tasks: Sequence[Task],
        now: float,
        churn: ChurnRecord | None = None,
        tile_phases: list[tuple[int, float]] | None = None,
        pool_events: list[tuple[int, str]] | None = None,
    ) -> ProblemInstance:
        """One round's problem, repaired per tile from persistent state.

        ``churn`` plays the same double role as in
        :meth:`DeltaPoolBuilder.build`: it carries the engine's
        trusted worker-churn hints in, and is annotated with the
        round's ``row_origin``/``prev_pool_rows`` on the way out (a
        record is annotated on :attr:`last_churn` even when the caller
        passes none).  ``tile_phases`` and ``pool_events`` receive
        per-tile timings and pool lifecycle events for the observer,
        appended in place like the sharded builder's ``tile_phases``.
        """
        validate_predicted_flags(predicted_workers, predicted_tasks)
        n, m = len(current_workers), len(current_tasks)
        k, l = len(predicted_workers), len(predicted_tasks)
        # The runner counts pipe bytes cumulatively so a mid-round
        # retry (refresh re-send) still lands in this round's total.
        ipc_before = self.ipc_bytes_total
        local = SparseBuildStats()
        local.dense_equivalent = n * m + k * m + n * l
        if self._future_future:
            local.dense_equivalent += k * l
        num_tiles = self._tiles.num_tiles

        ops, overflowed = self._log.drain()
        full_refresh = not self._trusted or overflowed or now < self._last_now

        # ---- split the journal + repair the parent mirror -----------------
        per_tile_ops: dict[int, list] = {}
        refresh_tiles: set[int] = set()
        rejoin_tiles: list[int] = []
        w_arrivals_by_tile: dict[int, list[Worker]] = {}
        w_removed_by_tile: dict[int, list[int]] = {}
        new_task_objs: dict[int, Task] = {}
        if not full_refresh:
            split_out = self._splitter.split(ops)
            net = _net_task_ops(ops, self._t_key_set)
            if split_out is None or net is None:
                full_refresh = True
            else:
                per_tile_ops, move_refresh, rejoin_tiles = split_out
                refresh_tiles |= move_refresh
        if not full_refresh:
            worker_hints = (
                (churn.worker_arrivals, churn.worker_removed_ids)
                if churn is not None
                else (None, None)
            )
            full_refresh = not self._repair_workers(
                current_workers, *worker_hints,
                arrivals_by_tile=w_arrivals_by_tile,
                removed_by_tile=w_removed_by_tile,
            )
        if not full_refresh:
            full_refresh = not self._repair_tasks(current_tasks, net, new_task_objs)
        if not full_refresh:
            full_refresh = not self._verify_mirror(current_workers, current_tasks)
        if full_refresh:
            self._refresh_mirror(current_workers, current_tasks)
            self._splitter.reset(self._t_ids, self._t_cells)
            per_tile_ops = {}
            rejoin_tiles = []
            w_arrivals_by_tile = {}
            w_removed_by_tile = {}
            new_task_objs = {}

        # ---- margins + zone growth (growth forces a tile re-prime) --------
        pw_cols = predicted_worker_columns(predicted_workers)
        pt_cols = predicted_task_columns(predicted_tasks)
        build_pt_blocks = bool(l and (n or (k and self._future_future)))
        margin_ct = self._margin_ct(n, m, k, now, pw_cols)
        refresh_tiles.update(self._zones.ensure(margin_ct))
        if full_refresh:
            refresh_tiles = set(range(num_tiles))

        # ---- local→global index maps (and the tile member lists) ----------
        if m:
            t_pos = [
                np.flatnonzero(self._zones.member_mask(tile, self._t_cells))
                for tile in range(num_tiles)
            ]
        else:
            t_pos = [_EMPTY_IDX] * num_tiles
        if n:
            w_pos = [
                np.flatnonzero(self._w_owner == tile) for tile in range(num_tiles)
            ]
        else:
            w_pos = [_EMPTY_IDX] * num_tiles
        if pw_cols is not None:
            pw_owner = self._tiles.tile_of_coordinates(pw_cols.xs, pw_cols.ys)
            pw_pos = [
                np.flatnonzero(pw_owner == tile) for tile in range(num_tiles)
            ]
        else:
            pw_pos = [_EMPTY_IDX] * num_tiles

        def _refresh_message(tile: int) -> TileRoundMessage:
            message = self._expectations(tile, w_pos[tile], t_pos[tile])
            message.pw_rows = pw_pos[tile]
            message.refresh = (
                [current_workers[i] for i in w_pos[tile].tolist()],
                [current_tasks[i] for i in t_pos[tile].tolist()],
            )
            return message

        messages = []
        for tile in range(num_tiles):
            if tile in refresh_tiles:
                messages.append(_refresh_message(tile))
                continue
            message = self._expectations(tile, w_pos[tile], t_pos[tile])
            message.pw_rows = pw_pos[tile]
            message.ops = per_tile_ops.get(tile, [])
            message.task_arrivals = new_task_objs
            message.worker_arrivals = w_arrivals_by_tile.get(tile, [])
            message.worker_removed_ids = w_removed_by_tile.get(tile, [])
            messages.append(message)

        # ---- run the tiles (retrying distrusted ones with a refresh) ------
        outcomes = self._run_tiles(
            messages, now, pw_cols, pt_cols, _refresh_message, refresh_tiles
        )
        retry = [
            _refresh_message(message.tile)
            for message, outcome in zip(messages, outcomes)
            if outcome is None
        ]
        while retry:
            refresh_tiles.update(message.tile for message in retry)
            redos = self._run_tiles(
                retry, now, pw_cols, pt_cols, _refresh_message, refresh_tiles
            )
            # A worker can die *during* the refresh run too; its tiles
            # come back None with the runner marking them failed (the
            # respawn already happened), so they re-prime on the next
            # pass — bounded by the runner's finite respawn budget,
            # whose exhaustion degrades to the inline path instead.
            failed = set(getattr(self._runner, "last_failed_tiles", ()))
            next_retry = []
            for message, redo in zip(retry, redos):
                if redo is None:
                    if message.tile in failed:
                        next_retry.append(_refresh_message(message.tile))
                        continue
                    raise RuntimeError(
                        "tile pipeline rejected its own refresh payload"
                    )
                outcomes[redo.tile] = redo  # messages[i].tile == i
            retry = next_retry
        outcomes = {outcome.tile: outcome for outcome in outcomes}

        # ---- map tile emissions into global coordinates -------------------
        results: list[_ShardResult] = []
        cc_parts: list[tuple] = []
        phase_entries: list[tuple[int, float]] = []
        for tile in range(num_tiles):
            outcome = outcomes[tile]
            emission = outcome.emission
            local.candidates += outcome.sparse_stats.candidates
            local.gathered += outcome.sparse_stats.gathered
            local.queries += outcome.sparse_stats.queries
            local.price_seconds += outcome.sparse_stats.price_seconds
            phase_entries.append((tile, emission.build_seconds))
            if pool_events is not None:
                pool_events.append(
                    (tile, "repair" if outcome.incremental else "prime")
                )
            wmap, tmap, pmap = w_pos[tile], t_pos[tile], pw_pos[tile]
            result = _ShardResult(build_seconds=emission.build_seconds)
            if emission.cc_rows is not None and emission.cc_rows.size:
                rows_g = wmap[emission.cc_rows]
                cols_g = tmap[emission.cc_cols]
                origin_g = self._compose_origin(tile, emission.prev_origin)
                tag = np.full(rows_g.size, tile, dtype=np.int64)
                cc_parts.append(
                    (rows_g, cols_g, emission.cc_dist, emission.cc_quality,
                     origin_g, tag)
                )
            pw_rows, pw_ct_cols = emission.pw_ct
            if pw_rows is not None and pw_rows.size:
                result.pw_ct = (pmap[pw_rows], tmap[pw_ct_cols])
            cw_rows, cw_cols = emission.cw_pt
            if cw_rows is not None and cw_rows.size:
                result.cw_pt = (wmap[cw_rows], cw_cols)
            ff_rows, ff_cols = emission.pw_pt
            if ff_rows is not None and ff_rows.size:
                result.pw_pt = (pmap[ff_rows], ff_cols)
            results.append(result)
        if pool_events is not None:
            pool_events.extend((tile, "border_rejoin") for tile in rejoin_tiles)

        # ---- phase 2: the global reconcile pass ---------------------------
        reconcile_started = monotonic()
        ctx = _ReconcileContext(
            current_workers=current_workers,
            current_tasks=current_tasks,
            predicted_workers=predicted_workers,
            predicted_tasks=predicted_tasks,
            quality_model=self._quality_model,
            unit_cost=self._unit_cost,
            now=now,
            discount_by_existence=self._discount,
            reservation_filter=self._reservation,
            include_future_future_pairs=self._future_future,
            exact_predicted_quality=self._exact_predicted,
            t_intervals=(self._tx, self._tx, self._ty, self._ty) if m else None,
            pw_intervals=pw_cols.intervals if pw_cols is not None else None,
            cw_intervals=(self._wx, self._wx, self._wy, self._wy)
            if (n and l)
            else None,
            pt_intervals=pt_cols.intervals
            if (pt_cols is not None and build_pt_blocks)
            else None,
        )
        instance, extras = _reconcile(
            results, cc_parts, True, ctx, self._executor, num_tiles, local
        )
        if extras:
            origin_merged, tag_merged = extras
        else:
            origin_merged, tag_merged = _EMPTY_IDX, _EMPTY_IDX
        for tile in range(num_tiles):
            self._prev_pos[tile] = np.flatnonzero(tag_merged == tile)

        # ---- warm-selection origin annotation -----------------------------
        total = len(instance.pool)
        if churn is None:
            churn = ChurnRecord()
        churn.row_origin = np.concatenate(
            [
                origin_merged,
                np.full(total - origin_merged.size, -1, dtype=np.int64),
            ]
        )
        churn.prev_pool_rows = self._last_total
        self.last_churn = churn
        self._last_total = total

        if tile_phases is not None:
            tile_phases.extend(phase_entries)
            tile_phases.append((-1, monotonic() - reconcile_started))
        self.ipc_bytes_last_round = self.ipc_bytes_total - ipc_before
        if self._stats is not None:
            self._stats.merge(local)
        self._trusted = True
        self._last_now = now
        return instance

    # -- parent mirror maintenance ------------------------------------------

    def _repair_workers(
        self,
        current_workers: Sequence[Worker],
        arrivals: Sequence[Worker] | None,
        removed_ids: Sequence[int] | None,
        arrivals_by_tile: dict[int, list[Worker]],
        removed_by_tile: dict[int, list[int]],
    ) -> bool:
        """O(churn) repair of the worker columns; False = distrust.

        With engine hints the caller vouches for the list discipline;
        without them the diff is derived here (O(n), still cheap) and
        the discipline is *checked* instead.
        """
        if arrivals is None or removed_ids is None:
            current_ids = np.fromiter(
                (w.id for w in current_workers),
                dtype=np.int64,
                count=len(current_workers),
            )
            keep = np.isin(self._w_ids, current_ids, assume_unique=True)
            new_mask = ~np.isin(current_ids, self._w_ids, assume_unique=True)
            if not np.array_equal(current_ids[~new_mask], self._w_ids[keep]):
                return False
            removed_ids = self._w_ids[~keep].tolist()
            arrivals = [current_workers[i] for i in np.flatnonzero(new_mask)]
        if removed_ids:
            gone = np.fromiter(removed_ids, dtype=np.int64, count=len(removed_ids))
            drop = np.isin(self._w_ids, gone)
            if int(drop.sum()) != len(removed_ids):
                return False
            for tile, wid in zip(
                self._w_owner[drop].tolist(), self._w_ids[drop].tolist()
            ):
                removed_by_tile.setdefault(tile, []).append(wid)
            keep = ~drop
            self._w_ids = self._w_ids[keep]
            self._wx, self._wy = self._wx[keep], self._wy[keep]
            self._wvel, self._warr = self._wvel[keep], self._warr[keep]
            self._w_owner = self._w_owner[keep]
        if arrivals:
            ax, ay, avel, aarr = _worker_columns(arrivals)
            aids = np.fromiter(
                (w.id for w in arrivals), dtype=np.int64, count=len(arrivals)
            )
            owner = self._tiles.tile_of_coordinates(ax, ay)
            for worker, tile in zip(arrivals, owner.tolist()):
                arrivals_by_tile.setdefault(tile, []).append(worker)
            self._w_ids = np.concatenate([self._w_ids, aids])
            self._wx = np.concatenate([self._wx, ax])
            self._wy = np.concatenate([self._wy, ay])
            self._wvel = np.concatenate([self._wvel, avel])
            self._warr = np.concatenate([self._warr, aarr])
            self._w_owner = np.concatenate([self._w_owner, owner])
        return True

    def _repair_tasks(
        self,
        current_tasks: Sequence[Task],
        net: tuple,
        new_task_objs: dict[int, Task],
    ) -> bool:
        """O(churn) repair of the task columns from the netted journal.

        Journal coordinates are authoritative for cells and anchors
        (the same semantics as the serial delta builder's cache), so a
        mover's cell tracks the index even when its entity object is
        stale; deadlines and arrivals come from the tail objects,
        whose ids are verified against the net-new keys.
        """
        removed, new, moved = net
        if removed:
            gone = np.fromiter(removed, dtype=np.int64, count=len(removed))
            drop = np.isin(self._t_ids, gone)
            if int(drop.sum()) != len(removed):
                return False
            keep = ~drop
            self._t_ids = self._t_ids[keep]
            self._tx, self._ty = self._tx[keep], self._ty[keep]
            self._tdl, self._tarr = self._tdl[keep], self._tarr[keep]
            self._t_cells = self._t_cells[keep]
            self._t_key_set -= removed
        for key, (x, y) in moved.items():
            at = np.flatnonzero(self._t_ids == key)
            if at.size != 1:
                return False
            self._tx[at[0]] = x
            self._ty[at[0]] = y
            self._t_cells[at[0]] = int(self._grid.cell_of(Point(x, y)))
        if new:
            tail = list(current_tasks[len(current_tasks) - len(new):])
            if [t.id for t in tail] != list(new.keys()):
                return False
            new_task_objs.update((t.id, t) for t in tail)
            _, _, deadline, arr = _task_columns(tail)
            nx = np.fromiter((xy[0] for xy in new.values()), dtype=float, count=len(new))
            ny = np.fromiter((xy[1] for xy in new.values()), dtype=float, count=len(new))
            nids = np.fromiter(new.keys(), dtype=np.int64, count=len(new))
            self._t_ids = np.concatenate([self._t_ids, nids])
            self._tx = np.concatenate([self._tx, nx])
            self._ty = np.concatenate([self._ty, ny])
            self._tdl = np.concatenate([self._tdl, deadline])
            self._tarr = np.concatenate([self._tarr, arr])
            self._t_cells = np.concatenate(
                [self._t_cells, self._grid.cells_of_coordinates(nx, ny)]
            )
            self._t_key_set |= set(new.keys())
        return True

    def _verify_mirror(
        self, current_workers: Sequence[Worker], current_tasks: Sequence[Task]
    ) -> bool:
        """Spot-check the repaired mirror against the engine lists."""
        if self._w_ids.size != len(current_workers):
            return False
        if self._t_ids.size != len(current_tasks):
            return False
        if current_workers and (
            self._w_ids[0] != current_workers[0].id
            or self._w_ids[-1] != current_workers[-1].id
        ):
            return False
        if current_tasks and (
            self._t_ids[0] != current_tasks[0].id
            or self._t_ids[-1] != current_tasks[-1].id
        ):
            return False
        return True

    def _refresh_mirror(
        self, current_workers: Sequence[Worker], current_tasks: Sequence[Task]
    ) -> None:
        """Rebuild the mirror wholesale from the entity objects."""
        n, m = len(current_workers), len(current_tasks)
        if n:
            self._wx, self._wy, self._wvel, self._warr = _worker_columns(
                current_workers
            )
            self._w_ids = np.fromiter(
                (w.id for w in current_workers), dtype=np.int64, count=n
            )
            self._w_owner = self._tiles.tile_of_coordinates(self._wx, self._wy)
        else:
            self._w_ids = self._w_owner = _EMPTY_IDX
            self._wx = self._wy = self._wvel = self._warr = _EMPTY_F
        if m:
            self._tx, self._ty, self._tdl, self._tarr = _task_columns(current_tasks)
            self._t_ids = np.fromiter(
                (t.id for t in current_tasks), dtype=np.int64, count=m
            )
            self._t_cells = self._grid.cells_of_coordinates(self._tx, self._ty)
        else:
            self._t_ids = self._t_cells = _EMPTY_IDX
            self._tx = self._ty = self._tdl = self._tarr = _EMPTY_F
        self._t_key_set = set(self._t_ids.tolist())

    # -- round helpers ------------------------------------------------------

    def _margin_ct(
        self, n: int, m: int, k: int, now: float,
        pw_cols: PredictedWorkerColumns | None,
    ) -> float:
        """One reachable radius for the current-task side, the same
        formula as ``build_problem_sharded`` (current entities are
        degenerate here, so the task-reach term is exactly zero)."""
        radii: list[float] = []
        if m:
            deadline_max = float(self._tdl.max())
            if n:
                horizon = np.maximum(0.0, deadline_max - np.maximum(now, self._warr))
                radii.append(float((self._wvel * horizon).max()))
            if k:
                horizon = np.maximum(
                    0.0, deadline_max - np.maximum(now, pw_cols.arr)
                )
                radii.append(float((pw_cols.vel * horizon + pw_cols.reach).max()))
        radius = max(radii, default=0.0)
        return radius * (1.0 + _RADIUS_SLACK) + _RADIUS_SLACK + self._margin_floor

    def _expectations(
        self, tile: int, wmap: np.ndarray, tmap: np.ndarray
    ) -> TileRoundMessage:
        message = TileRoundMessage(tile=tile)
        message.expect_workers = int(wmap.size)
        message.expect_tasks = int(tmap.size)
        if wmap.size:
            message.worker_id_bounds = (
                int(self._w_ids[wmap[0]]), int(self._w_ids[wmap[-1]]),
            )
        if tmap.size:
            message.task_id_bounds = (
                int(self._t_ids[tmap[0]]), int(self._t_ids[tmap[-1]]),
            )
        return message

    def _compose_origin(self, tile: int, prev_origin: np.ndarray) -> np.ndarray:
        """Tile emission ranks → previous *merged-pool* rows.

        ``prev_origin[i]`` is the rank row ``i`` held in this tile's
        previous emission; ``_prev_pos[tile]`` maps those ranks to the
        rows the previous reconcile placed them at.  Survivor relative
        order is invariant under compaction + tail appends on both
        levels, so the composed map stays strictly increasing over its
        non-negative entries — the monotonicity the selection state's
        trusted repair path verifies.
        """
        table = self._prev_pos[tile]
        if prev_origin.size == 0:
            return _EMPTY_IDX
        if table.size == 0:
            return np.full(prev_origin.size, -1, dtype=np.int64)
        valid = (prev_origin >= 0) & (prev_origin < table.size)
        return np.where(valid, table[np.where(valid, prev_origin, 0)], -1)
