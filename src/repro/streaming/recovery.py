"""Checkpoint/restore crash recovery for the streaming service.

The streaming engine is deterministic: given a seed and the exact
sequence of operations applied to it (submits and time advances), it
reproduces the same pools, selections, predictions and assignments
bit for bit — the property every differential suite in this repo
already leans on.  That determinism makes crash recovery a
write-ahead-log problem, not a distributed-systems problem:

- :class:`OpJournal` is the WAL.  Every mutating facade call is
  appended as a length- and CRC-framed pickled record *before* it is
  applied (log intent, then apply).  A SIGKILL can therefore leave at
  most a torn final frame — which the reader drops, exactly the
  persist-partial-progress discipline — or a fully journaled op whose
  application never finished, which replay simply re-executes.
- :class:`CheckpointWriter` bounds replay time.  Every N drained
  rounds it snapshots the engine's full round state (candidate-pool
  CSR caches, persistent :class:`~repro.core.triplet_select.
  SelectionState`, predictor windows, RNG, event queue, audit log —
  all inside :meth:`~repro.streaming.engine.StreamingEngine.
  export_state`) plus the journal cursor, atomically
  (tmp + fsync + rename), keeping the last ``keep`` snapshots so a
  checkpoint torn by a crash falls back to its predecessor.
- :meth:`JournaledService.open` is ``replay()``: load the newest
  valid checkpoint, re-apply the journal tail past its cursor, and
  the service stands exactly where a process that never died would —
  proven by the kill-and-replay differential test
  (``tests/test_streaming_recovery.py``), which SIGKILLs a worker
  mid-round and compares :func:`state_digest` component by component
  against an uninterrupted run, for both prediction legs.

Delivery semantics: an op is durable once its frame is flushed (and
fsynced when ``fsync=True``); an op whose append was torn by the
crash was never acknowledged to the caller, so dropping it is the
correct at-most-once outcome.  Assignments already handed out by
``drain`` are never re-delivered after recovery — the drain cursor
rides in the checkpoint and the replayed drains advance it silently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import struct
import zlib
from collections import deque
from collections.abc import Callable
from pathlib import Path

import numpy as np

from repro.simulation.metrics import AssignmentRecord
from repro.streaming.engine import StreamingEngine
from repro.streaming.service import StreamingService

__all__ = [
    "CheckpointWriter",
    "JournaledService",
    "OpJournal",
    "RecoveryError",
    "state_digest",
]

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_CHECKPOINT_SCHEMA = "repro.recovery/v1"
_CHECKPOINT_GLOB = "checkpoint-*.ckpt"


class RecoveryError(RuntimeError):
    """A recovery directory holds no usable state for the request."""


# ---------------------------------------------------------------------------
# OpJournal — the write-ahead log
# ---------------------------------------------------------------------------


class OpJournal:
    """Append-only framed op log that survives SIGKILL.

    Frames are ``<u32 length><u32 crc32><payload>`` with a pickled op
    tuple as payload.  :meth:`append` flushes every frame (and fsyncs
    when ``fsync=True``, the durable default); :func:`read_ops` stops
    cleanly at the first truncated or corrupt frame, so a crash mid
    append loses at most the op that was never acknowledged.
    """

    def __init__(
        self, path: str | Path, fsync: bool = True, faults=None
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._file = open(self.path, "ab")
        self._faults = faults
        self._frames_appended = 0

    def append(self, op: tuple) -> None:
        payload = pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        self._file.flush()
        self._frames_appended += 1
        if self._faults is not None and self._faults.tear_wal(
            self._frames_appended
        ):
            # Deterministic torn-tail injection (repro.faults): cut the
            # frame mid-payload, exactly the state a SIGKILL inside
            # write() leaves behind — read_ops must drop it cleanly.
            end = self._file.tell()
            self._file.truncate(end - (len(payload) // 2 + 1))
            self._file.seek(0, os.SEEK_END)
            self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    @staticmethod
    def read_ops(path: str | Path) -> list[tuple]:
        """Every intact op in the journal, in append order.

        Tolerates a torn tail (truncated frame, short header, CRC
        mismatch): reading stops at the first bad frame and returns
        the intact prefix — the WAL discipline for a log whose writer
        was killed mid-append.
        """
        path = Path(path)
        if not path.exists():
            return []
        ops: list[tuple] = []
        data = path.read_bytes()
        view = io.BytesIO(data)
        while True:
            header = view.read(_FRAME_HEADER.size)
            if len(header) < _FRAME_HEADER.size:
                break
            length, crc = _FRAME_HEADER.unpack(header)
            payload = view.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            try:
                ops.append(pickle.loads(payload))
            except Exception:
                break
        return ops


# ---------------------------------------------------------------------------
# CheckpointWriter — atomic snapshots, pruned, torn-safe
# ---------------------------------------------------------------------------


class CheckpointWriter:
    """Atomic engine-state snapshots with bounded retention.

    A checkpoint is one pickled dict: schema tag, the journal cursor
    (ops fully applied when the snapshot was taken), the service's
    drain cursor, and the engine's :meth:`~repro.streaming.engine.
    StreamingEngine.export_state` blob.  Writes go to a tmp file,
    fsync, then an atomic rename — a crash can only ever leave a tmp
    turd (ignored) or a previous complete checkpoint.  ``keep``
    snapshots are retained so a checkpoint corrupted at rest degrades
    to its predecessor plus a longer journal replay, never to data
    loss.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 2,
        fsync: bool = True,
        faults=None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = int(keep)
        self._fsync = bool(fsync)
        self._faults = faults
        self._writes = 0

    def write(
        self, engine: StreamingEngine, journal_seq: int, drained_assignments: int
    ) -> Path:
        payload = pickle.dumps(
            {
                "schema": _CHECKPOINT_SCHEMA,
                "journal_seq": int(journal_seq),
                "drained_assignments": int(drained_assignments),
                "engine": engine.export_state(),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        final = self.directory / f"checkpoint-{journal_seq:012d}.ckpt"
        tmp = final.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._writes += 1
        if self._faults is not None and self._faults.corrupt_checkpoint(
            self._writes
        ):
            # Deterministic at-rest corruption (repro.faults): stomp
            # the pickle header so load_latest must fall back to the
            # predecessor — the keep>=2 retention policy under test.
            with open(final, "r+b") as fh:
                fh.write(b"\x00" * 16)
        self._prune()
        return final

    def _prune(self) -> None:
        checkpoints = sorted(self.directory.glob(_CHECKPOINT_GLOB))
        for stale in checkpoints[: -self._keep]:
            stale.unlink(missing_ok=True)

    @staticmethod
    def load_latest(directory: str | Path) -> dict | None:
        """The newest checkpoint that parses and validates, else None.

        Walks newest → oldest so a snapshot torn or corrupted at rest
        silently falls back to its intact predecessor.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return None
        for path in sorted(directory.glob(_CHECKPOINT_GLOB), reverse=True):
            try:
                record = pickle.loads(path.read_bytes())
            except Exception:
                continue
            if (
                isinstance(record, dict)
                and record.get("schema") == _CHECKPOINT_SCHEMA
                and isinstance(record.get("journal_seq"), int)
                and isinstance(record.get("engine"), bytes)
            ):
                return record
        return None


# ---------------------------------------------------------------------------
# JournaledService — the recoverable facade
# ---------------------------------------------------------------------------


class JournaledService:
    """A :class:`StreamingService` whose operations are durable.

    Same facade surface as the plain service (submit / drain /
    snapshot / metric exports), with every mutating op journaled
    before it is applied and a checkpoint written every
    ``checkpoint_every`` newly drained rounds.  Construct through
    :meth:`open`, which doubles as the ``replay()`` path: an empty
    directory starts fresh, a directory with prior state recovers to
    exactly the state the killed process would have reached had its
    last journaled op completed.
    """

    _OPS = ("worker", "task", "drain")

    def __init__(
        self,
        service: StreamingService,
        journal: OpJournal,
        writer: CheckpointWriter,
        ops_applied: int,
        checkpoint_every: int,
    ) -> None:
        self._service = service
        self._journal = journal
        self._writer = writer
        self._ops_applied = int(ops_applied)
        self._checkpoint_every = int(checkpoint_every)
        self._rounds_at_checkpoint = service.engine.rounds_run
        self._closed = False

    # -- construction / recovery -------------------------------------------

    @classmethod
    def open(
        cls,
        factory: Callable[[], StreamingService],
        directory: str | Path,
        *,
        checkpoint_every: int = 8,
        keep: int = 2,
        fsync: bool = True,
        faults=None,
    ) -> "JournaledService":
        """Open (or recover) a durable service rooted at ``directory``.

        ``factory`` builds the pristine service — it runs only when no
        checkpoint exists, and it must be deterministic (same
        assigner, quality model, config, seed every time) because the
        journal tail is replayed against whatever base state is
        loaded.  ``checkpoint_every`` counts *rounds drained* between
        snapshots, so checkpoint cost scales with round cadence, not
        submit volume.
        """
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        directory = Path(directory)
        journal_path = directory / "ops.journal"
        record = CheckpointWriter.load_latest(directory)
        if record is None:
            service = factory()
            applied_base = 0
        else:
            engine = StreamingEngine.restore_state(record["engine"])
            service = StreamingService.from_engine(
                engine, record.get("drained_assignments", 0)
            )
            applied_base = record["journal_seq"]
        ops = OpJournal.read_ops(journal_path)
        if applied_base > len(ops):
            raise RecoveryError(
                f"checkpoint covers {applied_base} ops but the journal "
                f"holds only {len(ops)} — journal and checkpoints are "
                "from different histories"
            )
        for op in ops[applied_base:]:
            cls._apply(service, op)
        journal = OpJournal(journal_path, fsync=fsync, faults=faults)
        writer = CheckpointWriter(directory, keep=keep, fsync=fsync, faults=faults)
        return cls(service, journal, writer, len(ops), checkpoint_every)

    @staticmethod
    def _apply(service: StreamingService, op: tuple):
        kind = op[0]
        if kind == "worker":
            return service.submit_worker(op[1], op[2])
        if kind == "task":
            return service.submit_task(op[1], op[2])
        if kind == "drain":
            return service.drain(op[1])
        raise RecoveryError(f"journal holds an unknown op kind {kind!r}")

    # -- the durable facade -------------------------------------------------

    @property
    def service(self) -> StreamingService:
        """The wrapped service (read-only surface; prefer the facade)."""
        return self._service

    @property
    def engine(self) -> StreamingEngine:
        return self._service.engine

    @property
    def ops_applied(self) -> int:
        """Ops journaled *and* applied by this process (recovery included)."""
        return self._ops_applied

    def _journaled(self, op: tuple):
        self._journal.append(op)
        result = self._apply(self._service, op)
        self._ops_applied += 1
        return result

    def submit_worker(self, worker, at: float | None = None) -> None:
        self._journaled(("worker", worker, at))

    def submit_task(self, task, at: float | None = None) -> None:
        self._journaled(("task", task, at))

    def drain(self, until: float | None = None) -> list[AssignmentRecord]:
        fresh = self._journaled(("drain", until))
        engine = self._service.engine
        if engine.rounds_run - self._rounds_at_checkpoint >= self._checkpoint_every:
            self.checkpoint()
        return fresh

    def snapshot_metrics(self):
        return self._service.snapshot_metrics()

    def metrics_json(self) -> dict:
        return self._service.metrics_json()

    def metrics_prometheus(self) -> str:
        return self._service.metrics_prometheus()

    def result(self):
        return self._service.result()

    def checkpoint(self) -> Path:
        """Snapshot now (also called automatically from :meth:`drain`)."""
        path = self._writer.write(
            self._service.engine,
            self._ops_applied,
            self._service.drained_assignments,
        )
        self._rounds_at_checkpoint = self._service.engine.rounds_run
        return path

    def close(self, checkpoint: bool = True) -> None:
        """Checkpoint (by default), close the journal, close the service."""
        if self._closed:
            return
        self._closed = True
        if checkpoint:
            self.checkpoint()
        self._journal.close()
        self._service.close()

    def __enter__(self) -> "JournaledService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# state_digest — the bit-identity witness
# ---------------------------------------------------------------------------

#: Attribute names excluded from the structural walk: wall-clock
#: measurements (legitimately different between a recovered and an
#: uninterrupted run) and the observability hub (whose histograms
#: record those same wall-clock reads).
_EXCLUDED_ATTRS = frozenset(
    {
        "_observer",
        "build_seconds",
        "price_seconds",
        "assign_seconds",
        "select_seconds",
        "finalize_seconds",
        "cpu_seconds",
        "last_finalize_seconds",
        "ipc_bytes_last_round",
    }
)

_PRIMITIVES = (bool, int, str, bytes, type(None))


def _canonical(obj, out: list[bytes], memo: set[int]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Deterministic across processes and across different mutation
    histories that reach the same logical state: floats are hex-coded
    (bit-exact), arrays carry dtype+shape+raw bytes, sets are sorted,
    dict/attribute orders are sorted by key — so two states digest
    equal iff their *values* are equal, regardless of hash-table
    internals or ``__dict__`` insertion order.
    """
    if isinstance(obj, _PRIMITIVES):
        out.append(repr(obj).encode())
        return
    if isinstance(obj, float):
        out.append(obj.hex().encode())
        return
    if isinstance(obj, np.ndarray):
        out.append(f"nd:{obj.dtype.str}:{obj.shape}".encode())
        out.append(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, np.generic):
        _canonical(obj.item(), out, memo)
        return
    key = id(obj)
    if key in memo:
        out.append(b"<cycle>")
        return
    memo.add(key)
    try:
        if isinstance(obj, (list, tuple, deque)):
            out.append(f"seq:{len(obj)}".encode())
            for item in obj:
                _canonical(item, out, memo)
        elif isinstance(obj, dict):
            out.append(f"map:{len(obj)}".encode())
            for k in sorted(obj, key=repr):
                out.append(repr(k).encode())
                _canonical(obj[k], out, memo)
        elif isinstance(obj, (set, frozenset)):
            out.append(f"set:{len(obj)}".encode())
            for item in sorted(obj, key=repr):
                out.append(repr(item).encode())
        elif dataclasses.is_dataclass(obj) or hasattr(obj, "__dict__") or hasattr(
            obj, "__slots__"
        ):
            state = {}
            if hasattr(obj, "__dict__"):
                state.update(vars(obj))
            for slot_owner in type(obj).__mro__:
                for name in getattr(slot_owner, "__slots__", ()):
                    if hasattr(obj, name):
                        state.setdefault(name, getattr(obj, name))
            out.append(f"obj:{type(obj).__name__}".encode())
            for name in sorted(state):
                if name in _EXCLUDED_ATTRS:
                    continue
                out.append(name.encode())
                _canonical(state[name], out, memo)
        else:
            out.append(repr(obj).encode())
    finally:
        memo.discard(key)


def _digest(*roots) -> str:
    chunks: list[bytes] = []
    for root in roots:
        _canonical(root, chunks, set())
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
        h.update(b"\x1f")
    return h.hexdigest()


def state_digest(engine: StreamingEngine) -> dict[str, str]:
    """Canonical digests of every recoverable engine component.

    The kill-and-replay differential test compares these between a
    recovered engine and an uninterrupted reference — per component,
    so a mismatch names the subsystem that diverged:

    - ``pool``: the per-tile delta builders' cached candidate CSRs
      plus the fused builder's entity-column mirror;
    - ``selection``: the persistent warm-select orders and carry;
    - ``predictors``: both grid predictors' count windows;
    - ``rng``: the engine's PCG64 state, JSON-canonicalized;
    - ``queue``: the pending event heap;
    - ``entities``: the live worker/task pools in list order;
    - ``log``: the full assignment audit trail plus running totals.

    Wall-clock measurements and the metrics/trace hub are excluded —
    they legitimately differ between runs that are otherwise
    bit-identical.
    """
    fused = engine._fused_builder
    pipelines = []
    if fused is not None:
        runner = fused._runner
        pipelines = list(getattr(runner, "_pipelines", []))
    rng_state = json.dumps(
        engine._rng.bit_generator.state, sort_keys=True, default=repr
    )
    return {
        "pool": _digest(
            [pipe.builder for pipe in pipelines],
            [pipe.workers for pipe in pipelines],
            [pipe.tasks for pipe in pipelines],
            None
            if fused is None
            else (
                fused._w_ids, fused._wx, fused._wy, fused._wvel, fused._warr,
                fused._w_owner, fused._t_ids, fused._tx, fused._ty, fused._tdl,
                fused._tarr, fused._t_cells, fused._prev_pos, fused._last_total,
                fused._trusted,
            ),
        ),
        "selection": _digest(engine._selection_state),
        "predictors": _digest(
            engine._worker_predictor,
            engine._task_predictor,
            engine._last_worker_prediction,
            engine._last_task_prediction,
        ),
        "rng": _digest(rng_state),
        "queue": _digest(engine._queue),
        "entities": _digest(
            engine._available_workers,
            engine._available_tasks,
            sorted(engine._available_worker_ids),
            sorted(engine._available_task_ids),
            engine._task_index,
        ),
        "log": _digest(
            engine._log,
            engine.total_quality,
            engine.total_cost,
            engine.rounds_run,
            engine.events_processed,
            engine._assignment_seq,
            engine._next_released_id,
        ),
    }
