"""Bridges between batch workloads and the event-driven engine.

Any :class:`~repro.workloads.base.Workload` — synthetic, check-in
based, or the streaming scenarios — can be replayed as an event
stream: each instance's arrivals become :class:`WorkerArrival` /
:class:`TaskArrival` events stamped at the instance time.  With the
default one-instance round interval this is the differential-testing
bridge (stream run == batch run); with a finer interval it turns any
existing workload into a micro-batch streaming experiment.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.base import Assigner
from repro.prediction.predictors import CountPredictor
from repro.simulation.metrics import SimulationResult
from repro.streaming.engine import StreamConfig, StreamingEngine
from repro.streaming.events import Event, TaskArrival, WorkerArrival
from repro.workloads.base import Workload


def workload_events(workload: Workload) -> Iterator[Event]:
    """The workload's arrivals as a time-ordered event stream."""
    for instance in range(workload.num_instances):
        stamp = float(instance)
        workers, tasks = workload.arrivals(instance)
        for worker in workers:
            yield WorkerArrival(stamp, worker)
        for task in tasks:
            yield TaskArrival(stamp, task)


def load_workload(engine: StreamingEngine, workload: Workload) -> int:
    """Enqueue a workload's full event stream; returns the event count."""
    count = 0
    for event in workload_events(workload):
        engine.submit(event)
        count += 1
    return count


def prepared_engine(
    workload: Workload,
    assigner: Assigner,
    config: StreamConfig | None = None,
    predictor: CountPredictor | None = None,
    seed: int = 0,
) -> tuple[StreamingEngine, int]:
    """An engine loaded with a workload's events, not yet advanced.

    Returns ``(engine, event_count)``.  The engine's end time is the
    workload's instance count, so with ``round_interval = 1.0`` the
    rounds coincide exactly with the batch engine's ``R`` instances.
    Callers that only need the result can use :func:`run_stream`; the
    CLI and the throughput bench use this form to time the advance and
    read the engine's counters.
    """
    engine = StreamingEngine(
        assigner,
        workload.quality_model,
        config=config,
        predictor=predictor,
        seed=seed,
        end_time=float(workload.num_instances),
    )
    return engine, load_workload(engine, workload)


def run_stream(
    workload: Workload,
    assigner: Assigner,
    config: StreamConfig | None = None,
    predictor: CountPredictor | None = None,
    seed: int = 0,
) -> SimulationResult:
    """Run a workload through the streaming engine, start to finish."""
    engine, _ = prepared_engine(
        workload, assigner, config=config, predictor=predictor, seed=seed
    )
    engine.advance_to(float(workload.num_instances))
    return engine.result()
