"""Shared-memory process backend for the fused round pipeline.

The legacy process backend pickled every shard payload — the full
candidate CSR, entity columns, the works — through a
``ProcessPoolExecutor`` every round, which is why its committed
numbers ran *below* serial (K4-process ≈ 0.88×).  This backend
replaces that exchange wholesale:

- **Persistent pre-pinned workers.** A fixed pool of forked processes
  is spawned once per engine; each owns a static subset of tiles and
  holds those tiles' :class:`~repro.streaming.pipeline.TilePipeline`
  state (entity lists + delta pool caches) across rounds.  Round
  messages shrink to churn deltas: the tile's slice of the index
  journal, arrival objects, and consistency bounds — O(churn), not
  O(state).
- **Array exchange over ``multiprocessing.shared_memory``.** The
  parent packs the round's predicted-entity columns into a
  shared-memory arena that workers map as NumPy views (no
  serialization); each worker packs its tiles' emission arrays into
  its own grow-by-doubling arena and replies with byte offsets.  The
  parent reads the arrays back as views and copies them out in one
  memcpy — nothing downstream may alias a buffer the worker will
  overwrite next round.  Pipe traffic is bookkept per byte and
  surfaced as ``ipc_bytes_per_round``.
- **Deterministic hygiene.** Python 3.11 registers a segment with the
  resource tracker on *attach* as well as create (bpo-39959), and the
  forked workers share the parent's tracker process — so the
  tracker's name set must see each segment unregistered exactly once,
  or it prints KeyError/leak noise at shutdown.  The registrations
  themselves are idempotent (the tracker keeps a set), and
  ``SharedMemory.unlink()`` performs the single matching unregister;
  :class:`SegmentRegistry` therefore makes the parent the sole
  unlinker — on replacement, on :meth:`ShmTileRunner.close`, or from
  a pid-guarded ``atexit`` hook if the engine is dropped without
  closing — and nobody unregisters manually.  A worker killed
  mid-round leaks nothing: its segments are still known to (and
  unlinked by) the parent, and no tracker ever warns.

This module is the process-backend leg of the incremental round
pipeline described in ``docs/architecture.md``; the inline/thread
legs and the refresh-retry protocol live in
:mod:`repro.streaming.pipeline`.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import time
from multiprocessing import get_context, resource_tracker
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.model.delta import (
    DeltaBuildStats,
    PartitionEmission,
    PredictedTaskColumns,
    PredictedWorkerColumns,
)
from repro.obs.metrics import monotonic
from repro.streaming.pipeline import (
    PipelineSpec,
    TileRoundMessage,
    TileRoundOutcome,
    TileRunnerBroken,
)

__all__ = ["SegmentRegistry", "ShmTileRunner"]

_ARENA_IDS = itertools.count()


class SegmentRegistry:
    """Parent-side ledger owning every shared-memory segment's unlink.

    ``adopt`` takes custody of a segment (created or attached);
    ``release`` closes and unlinks one by name; ``close`` sweeps the
    rest.  A pid guard keeps forked children from running the
    inherited ``atexit`` hook against the parent's segments.
    """

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._segments: dict[str, SharedMemory] = {}
        atexit.register(self.close)

    def adopt(self, segment: SharedMemory) -> None:
        self._segments[segment.name] = segment

    def release(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            pass  # a live view blocks the munmap, never the unlink
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if os.getpid() != self._pid:
            return
        for name in list(self._segments):
            self.release(name)


class _ShmArena:
    """A grow-by-doubling shared-memory scratch segment.

    One round's arrays are packed back to back after a single
    :meth:`begin` sizing call; growth allocates a fresh (larger)
    segment under a new name, so a peer still mapping the old one is
    never resized under its feet — the old name is unlinked by the
    registry (parent) or left to the parent's ledger (worker).
    """

    def __init__(self, prefix: str, registry: SegmentRegistry | None = None) -> None:
        self._prefix = prefix
        self._registry = registry
        self._shm: SharedMemory | None = None
        self._capacity = 0
        self._offset = 0
        self._serial = 0

    @property
    def name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    def begin(self, total: int) -> None:
        """Start one round's packing; guarantees ``total`` capacity."""
        if self._shm is None or self._capacity < total:
            capacity = max(4096, self._capacity)
            while capacity < total:
                capacity *= 2
            segment = SharedMemory(
                create=True,
                size=capacity,
                name=f"{self._prefix}-{self._serial}",
            )
            self._serial += 1
            if self._registry is not None:
                self._registry.adopt(segment)
            if self._shm is not None:
                old = self._shm
                try:
                    old.close()
                except BufferError:
                    pass
                if self._registry is not None:
                    self._registry.release(old.name)
            self._shm = segment
            self._capacity = capacity
        self._offset = 0

    def put(self, array: np.ndarray) -> tuple[int, int, str]:
        """Copy one array in; returns ``(offset, count, dtype)``."""
        array = np.ascontiguousarray(array)
        offset = self._offset
        if array.nbytes:
            view = np.frombuffer(
                self._shm.buf, dtype=array.dtype, count=array.size, offset=offset
            )
            view[:] = array
        self._offset = offset + array.nbytes
        return (offset, int(array.size), array.dtype.str)

    def close(self) -> None:
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:
            pass
        if self._registry is not None:
            self._registry.release(self._shm.name)
        self._shm = None
        self._capacity = 0


def _pack_arrays(arena: _ShmArena, arrays: list) -> list:
    total = sum(a.nbytes for a in arrays if a is not None)
    arena.begin(total)
    return [None if a is None else arena.put(a) for a in arrays]


def _take(segment: SharedMemory | None, desc, copy: bool):
    """One array back out of a segment (``copy`` detaches it)."""
    if desc is None:
        return None
    offset, count, dtype = desc
    if count == 0:
        return np.empty(0, dtype=np.dtype(dtype))
    view = np.frombuffer(
        segment.buf, dtype=np.dtype(dtype), count=count, offset=offset
    )
    return np.array(view) if copy else view


#: Flat packing order of one emission's arrays.
_EMISSION_FIELDS = (
    "cc_rows", "cc_cols", "cc_dist", "cc_quality", "prev_origin",
)


def _emission_to_arrays(emission: PartitionEmission) -> list:
    arrays = [getattr(emission, field) for field in _EMISSION_FIELDS]
    for pair in (emission.pw_ct, emission.cw_pt, emission.pw_pt):
        arrays.extend(pair)
    return arrays


def _emission_from_arrays(arrays: list) -> PartitionEmission:
    emission = PartitionEmission()
    for field, array in zip(_EMISSION_FIELDS, arrays[:5]):
        setattr(emission, field, array)
    emission.pw_ct = (arrays[5], arrays[6])
    emission.cw_pt = (arrays[7], arrays[8])
    emission.pw_pt = (arrays[9], arrays[10])
    return emission


#: Packing order of the predicted-entity column arrays.
def _columns_to_arrays(pw: PredictedWorkerColumns | None,
                       pt: PredictedTaskColumns | None) -> list:
    arrays: list = []
    if pw is not None:
        arrays += [pw.xs, pw.ys, pw.vel, pw.arr, *pw.intervals, pw.reach]
    if pt is not None:
        arrays += [pt.xs, pt.ys, pt.deadline, pt.arr, *pt.intervals, pt.reach]
    return arrays


def _unpack_columns(segment: SharedMemory | None, header: dict):
    """Worker-side: rebuild the packed predicted columns as views."""
    descs = header["descs"]
    at = 0

    def grab(count):
        nonlocal at
        arrays = [_take(segment, d, copy=False) for d in descs[at:at + count]]
        at += count
        return arrays

    pw = pt = None
    if header["pw"]:
        xs, ys, vel, arr, ax_lo, ax_hi, ay_lo, ay_hi, reach = grab(9)
        pw = PredictedWorkerColumns(
            xs=xs, ys=ys, vel=vel, arr=arr,
            intervals=(ax_lo, ax_hi, ay_lo, ay_hi), reach=reach,
        )
    if header["pt"]:
        xs, ys, deadline, arr, ax_lo, ax_hi, ay_lo, ay_hi, reach = grab(9)
        deadline_max, max_reach = header["pt_scalars"]
        pt = PredictedTaskColumns(
            xs=xs, ys=ys, deadline=deadline, arr=arr,
            intervals=(ax_lo, ax_hi, ay_lo, ay_hi), reach=reach,
            deadline_max=deadline_max, max_reach=max_reach,
        )
    return pw, pt


def _worker_main(conn, spec: PipelineSpec, tiles: list[int]) -> None:
    """A pinned worker: holds its tiles' pipelines for the stream's
    lifetime, answering one churn-delta message per round."""
    pipelines = {tile: spec.make(tile) for tile in tiles}
    arena = _ShmArena(prefix=f"repro-w{os.getpid()}-{next(_ARENA_IDS)}")
    attached: dict[str, SharedMemory] = {}

    def attach(name: str) -> SharedMemory:
        segment = attached.get(name)
        if segment is None:
            for old in attached.values():  # parent replaced its arena
                old.close()
            attached.clear()
            segment = SharedMemory(name=name)
            attached[name] = segment
        return segment

    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                message = pickle.loads(data)
            except Exception:
                # An undecodable frame (a garbled pipe, or injected
                # corruption) leaves nothing to act on: exit quietly
                # and let the parent's supervisor respawn this slot.
                break
            if message.get("stop"):
                break
            fault = message.get("fault")
            if fault is not None:
                # Deterministic fault injection (repro.faults): the
                # parent rides a one-shot directive inside the round
                # message, so the fault lands at an exact round on an
                # exact worker — and a respawned worker, primed with a
                # directive-free refresh, can never re-trip it.
                if fault["kind"] == "kill":
                    os._exit(1)
                if fault["kind"] == "hang":
                    time.sleep(fault["seconds"])
            pw = pt = None
            columns = message["columns"]
            if columns is not None:
                segment = attach(columns["segment"]) if columns["segment"] else None
                pw, pt = _unpack_columns(segment, columns)
            outcomes = []
            for tile_message in message["messages"]:
                outcomes.append(
                    pipelines[tile_message.tile].run_round(
                        tile_message, message["now"], pw, pt
                    )
                )
            all_arrays: list = []
            for outcome in outcomes:
                if outcome is not None:
                    all_arrays.extend(_emission_to_arrays(outcome.emission))
            descs = iter(_pack_arrays(arena, all_arrays))
            entries = []
            for outcome in outcomes:
                if outcome is None:
                    entries.append(None)
                    continue
                entries.append({
                    "tile": outcome.tile,
                    "incremental": outcome.incremental,
                    "build_seconds": outcome.emission.build_seconds,
                    "delta_stats": outcome.delta_stats,
                    "sparse_stats": outcome.sparse_stats,
                    "arrays": [next(descs) for _ in range(11)],
                })
            conn.send_bytes(
                pickle.dumps({"segment": arena.name, "outcomes": entries})
            )
    finally:
        conn.close()


class ShmTileRunner:
    """The process backend: persistent forked workers + shm arenas.

    Implements the same runner interface as
    :class:`~repro.streaming.pipeline.InlineTileRunner`; construct via
    the engine's ``runner_factory`` hook.  Tiles are assigned to
    workers statically (round robin), so a tile's pipeline state lives
    in one process for the whole stream.

    **Supervision.**  Replies are awaited with a per-round deadline
    (``round_deadline_s``; poll-then-recv, never a blocking read), so
    a dead, hung or silenced worker is *detected* instead of wedging
    the stream.  A failed worker is killed and respawned from the
    stored :class:`~repro.streaming.pipeline.PipelineSpec` under
    capped exponential backoff; its tiles report ``None`` outcomes,
    which routes them through the builder's wholesale-refresh retry —
    the respawned worker is cold-primed on the always-correct slow
    path, so the round completes bit-identically.  Once
    ``max_respawns`` is exhausted the runner settles its surviving
    workers and raises :class:`~repro.streaming.pipeline.
    TileRunnerBroken`, which the builder answers by degrading to the
    inline serial path.

    ``faults`` arms a :class:`repro.faults.FaultInjector` whose
    shard-domain faults (kill/hang directives ride inside the round
    message; drop/garble act on the parent's send) fire one-shot at
    deterministic (worker, round) coordinates; ``None`` costs nothing.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        num_tiles: int,
        max_workers: int | None = None,
        *,
        round_deadline_s: float | None = 30.0,
        max_respawns: int = 3,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_max_s: float = 1.0,
        faults=None,
    ) -> None:
        self._ctx = get_context("fork")
        # Start the resource tracker *before* forking: children then
        # inherit its pipe and the whole family shares one tracker
        # (and one name set).  Left lazy, each worker would spawn its
        # own tracker on first attach, and those trackers — never
        # seeing the parent's unlinks — would warn about (and re-free)
        # segments at worker exit.
        resource_tracker.ensure_running()
        count = max(1, min(max_workers or num_tiles, num_tiles))
        self._spec = spec
        self._registry = SegmentRegistry()
        self._arena = _ShmArena(
            prefix=f"repro-p{os.getpid()}-{next(_ARENA_IDS)}",
            registry=self._registry,
        )
        self._tiles_by_worker = [
            list(range(num_tiles))[i::count] for i in range(count)
        ]
        self._tile_to_worker = {
            tile: i
            for i, tiles in enumerate(self._tiles_by_worker)
            for tile in tiles
        }
        self._conns = [None] * count
        self._procs = [None] * count
        for i in range(count):
            self._spawn(i)
        self._worker_segments: dict[int, SharedMemory] = {}
        self._latest_stats = [DeltaBuildStats() for _ in range(num_tiles)]
        #: Cumulative pipe bytes both ways (the shm arrays are not
        #: counted — they are exchanged, not copied through the pipe).
        #: Only *delivered* payloads count: a send that fails, or a
        #: reply never received, books nothing.
        self.ipc_bytes_total = 0
        self._closed = False
        self._round = 0
        self._faults = faults
        self._deadline = round_deadline_s
        self._max_respawns = int(max_respawns)
        self._backoff = float(respawn_backoff_s)
        self._backoff_max = float(respawn_backoff_max_s)
        #: Supervision events since the last drain (``(kind, detail)``);
        #: the builder forwards them to the observer each round.
        self.events: list[tuple[str, dict]] = []
        self.respawns_total = 0
        self.respawn_seconds_total = 0.0

    # -- the runner interface ----------------------------------------------

    def run(self, messages, now, predicted_workers, predicted_tasks):
        if self._closed:
            raise RuntimeError("shm tile runner is closed")
        self._round += 1
        round_index = self._round
        #: Tiles whose ``None`` outcome this call means "worker failed,
        #: fresh worker needs a re-prime" — distinguishing them from a
        #: pipeline genuinely rejecting a payload.
        self.last_failed_tiles: set[int] = set()
        columns = self._pack_columns(predicted_workers, predicted_tasks)
        groups: dict[int, list[TileRoundMessage]] = {}
        for message in messages:
            groups.setdefault(self._tile_to_worker[message.tile], []).append(message)
        failed: dict[int, str] = {}
        for worker, group in groups.items():
            body = {"now": now, "columns": columns, "messages": group}
            if self._faults is not None:
                directive = self._faults.shard_directive(worker, round_index)
                if directive is not None:
                    body["fault"] = directive
            payload = pickle.dumps(body)
            if self._faults is not None:
                action = self._faults.pipe_fault(worker, round_index)
                if action == "drop":
                    # Never sent: the worker stays silently healthy and
                    # only the recv deadline can tell — the detection
                    # path a lost message exercises in production.
                    continue
                if action == "garble":
                    payload = b"\xde\xad" + payload[:32]
            try:
                self._conns[worker].send_bytes(payload)
            except (BrokenPipeError, OSError):
                failed[worker] = "worker_death"
                continue
            self.ipc_bytes_total += len(payload)
        outcome_by_tile: dict[int, TileRoundOutcome | None] = {}
        for worker, group in groups.items():
            if worker in failed:
                continue
            try:
                if self._deadline is not None and not self._conns[worker].poll(
                    self._deadline
                ):
                    failed[worker] = "deadline_timeout"
                    continue
                data = self._conns[worker].recv_bytes()
            except (EOFError, OSError):
                failed[worker] = "worker_death"
                continue
            self.ipc_bytes_total += len(data)
            reply = pickle.loads(data)
            segment = self._worker_segment(worker, reply["segment"])
            for tile_message, entry in zip(group, reply["outcomes"]):
                if entry is None:
                    outcome_by_tile[tile_message.tile] = None
                    continue
                arrays = [
                    _take(segment, desc, copy=True) for desc in entry["arrays"]
                ]
                outcome = TileRoundOutcome(
                    tile=entry["tile"],
                    emission=_emission_from_arrays(arrays),
                    delta_stats=entry["delta_stats"],
                    sparse_stats=entry["sparse_stats"],
                    incremental=entry["incremental"],
                )
                outcome.emission.incremental = entry["incremental"]
                outcome.emission.build_seconds = entry["build_seconds"]
                self._latest_stats[outcome.tile] = outcome.delta_stats
                outcome_by_tile[outcome.tile] = outcome
        # Surviving workers are fully settled (sent + received) by the
        # time any failure is acted on, so a respawn — or a
        # crash-loop abort — always starts from a known state.
        for worker, cause in failed.items():
            self.events.append(
                ("worker_death" if cause == "worker_death" else "deadline_timeout",
                 {"worker": worker, "round": round_index}),
            )
            self._respawn(worker)
            for tile_message in groups[worker]:
                outcome_by_tile[tile_message.tile] = None
                self.last_failed_tiles.add(tile_message.tile)
        return [outcome_by_tile.get(message.tile) for message in messages]

    def delta_stats_by_tile(self) -> list[DeltaBuildStats]:
        return list(self._latest_stats)

    def close(self) -> None:
        """Stop the workers and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        stop = pickle.dumps({"stop": True})
        for conn in self._conns:
            try:
                conn.send_bytes(stop)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                # SIGKILL, not SIGTERM: a SIGSTOPped worker queues
                # SIGTERM until continued, but nothing stops SIGKILL.
                proc.kill()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._arena.close()
        self._registry.close()
        atexit.unregister(self._registry.close)

    # -- internals -----------------------------------------------------------

    def _spawn(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._spec, self._tiles_by_worker[worker]),
            daemon=True,
            name=f"repro-shard-{worker}",
        )
        proc.start()
        child_conn.close()
        self._conns[worker] = parent_conn
        self._procs[worker] = proc

    def _respawn(self, worker: int) -> None:
        """Replace a failed worker, budgeted and backed off.

        The dead/hung process is SIGKILLed (works on stopped processes
        too), its pipe and reply segment reclaimed, and a fresh worker
        forked over the same tile set.  The fresh worker's pipelines
        are cold; the caller reports its tiles as ``None`` so the
        builder's refresh retry re-primes them this same round.
        Exhausting ``max_respawns`` raises
        :class:`~repro.streaming.pipeline.TileRunnerBroken` instead.
        """
        if self.respawns_total >= self._max_respawns:
            raise TileRunnerBroken(
                f"shard worker {worker} failed after {self.respawns_total} "
                f"respawns (budget {self._max_respawns}); degrading to the "
                "serial path"
            )
        started = monotonic()
        self.respawns_total += 1
        proc = self._procs[worker]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        segment = self._worker_segments.pop(worker, None)
        if segment is not None:
            self._registry.release(segment.name)
        delay = min(
            self._backoff * (2.0 ** (self.respawns_total - 1)), self._backoff_max
        )
        if delay > 0.0:
            self.events.append(
                ("backoff_wait", {"worker": worker, "seconds": delay})
            )
            time.sleep(delay)
        self._spawn(worker)
        elapsed = monotonic() - started
        self.respawn_seconds_total += elapsed
        self.events.append(
            ("respawn", {"worker": worker, "seconds": elapsed})
        )

    def _pack_columns(self, pw, pt):
        if pw is None and pt is None:
            return None
        descs = _pack_arrays(self._arena, _columns_to_arrays(pw, pt))
        return {
            "segment": self._arena.name,
            "descs": descs,
            "pw": pw is not None,
            "pt": pt is not None,
            "pt_scalars": (pt.deadline_max, pt.max_reach) if pt is not None else None,
        }

    def _worker_segment(self, worker: int, name: str | None):
        if name is None:
            return None
        current = self._worker_segments.get(worker)
        if current is not None and current.name == name:
            return current
        segment = SharedMemory(name=name)
        self._registry.adopt(segment)
        if current is not None:
            self._registry.release(current.name)
        self._worker_segments[worker] = segment
        return segment
