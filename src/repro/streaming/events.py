"""Event vocabulary and priority queue of the streaming engine.

The streaming layer models the world as a continuous-time stream of
entity lifecycle events instead of pre-batched time instances:

- :class:`WorkerArrival` / :class:`TaskArrival` — an entity joins;
- :class:`TaskExpiry` — a task's deadline passes unassigned;
- :class:`WorkerRelease` — a previously assigned worker finishes
  traveling and rejoins the pool at the task's location.

Events at equal timestamps are ordered by a *phase* so the engine's
micro-batch rounds see exactly the sets the batch framework would:
arrivals and releases stamped at a round boundary are visible to that
round, while an expiry stamped at the boundary removes the task only
afterwards (the batch engine keeps a task whose deadline equals the
current instance in the pool — it simply has no valid pairs left).
Ties beyond the phase fall back to a submission sequence number, so
ordering is total and deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Union

from repro.geo.point import Point
from repro.model.entities import Task, Worker

#: Same-timestamp processing order (smaller first).
PHASE_ARRIVAL = 0
PHASE_RELEASE = 1
PHASE_EXPIRY = 2


@dataclass(frozen=True, slots=True)
class WorkerArrival:
    """A worker joins the available pool at ``time``."""

    time: float
    worker: Worker

    phase = PHASE_ARRIVAL


@dataclass(frozen=True, slots=True)
class TaskArrival:
    """A task is posted at ``time``."""

    time: float
    task: Task

    phase = PHASE_ARRIVAL


@dataclass(frozen=True, slots=True)
class TaskExpiry:
    """Task ``task_id`` reaches its deadline at ``time``."""

    time: float
    task_id: int

    phase = PHASE_EXPIRY


@dataclass(frozen=True, slots=True)
class WorkerRelease:
    """An assigned worker finishes traveling at ``time``.

    ``assignment_seq`` is the global order in which the assignment was
    booked; the engine re-materializes released workers in that order
    (not release-time order), matching the batch engine's busy-list
    iteration so released-worker ids — and therefore their hashed
    quality scores — line up exactly.
    """

    time: float
    location: Point
    velocity: float
    assignment_seq: int

    phase = PHASE_RELEASE


Event = Union[WorkerArrival, TaskArrival, TaskExpiry, WorkerRelease]


class EventQueue:
    """Priority queue over ``(time, phase, seq)`` with stable ties."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.phase, self._seq, event))
        self._seq += 1

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def latest_time(self, max_phase: int | None = None) -> float | None:
        """Largest queued timestamp, optionally phase-bounded (O(n)).

        ``max_phase=PHASE_RELEASE`` ignores expiry events — the engine
        uses that to avoid fast-forwarding to a far-future deadline
        when deciding how far a no-arg drain must advance.
        """
        times = [
            entry[0]
            for entry in self._heap
            if max_phase is None or entry[1] <= max_phase
        ]
        return max(times) if times else None

    def pop_due(self, time: float, max_phase: int = PHASE_RELEASE):
        """Yield events up to ``time``, bounded by ``max_phase`` at the edge.

        Pops every event strictly before ``time`` and, at exactly
        ``time``, those whose phase is ``<= max_phase`` — the engine
        calls this with ``PHASE_RELEASE`` before a round so boundary
        expiries stay queued until after the round has run.
        """
        while self._heap:
            event_time, phase, _, event = self._heap[0]
            if event_time > time or (event_time == time and phase > max_phase):
                break
            heapq.heappop(self._heap)
            yield event
