"""Service facade over the streaming engine.

:class:`StreamingService` is the online-serving shape of the MQA
framework: callers submit workers and tasks as they appear, ``drain``
advances the micro-batch rounds and hands back the newly materialized
assignments, and ``snapshot_metrics`` exposes the running totals that
the batch experiments read from a :class:`SimulationResult`.  The
grid predictors keep forecasting arrivals between rounds, so the
service can also answer "how much demand is expected near here"
(:meth:`expected_arrivals_near`) from the same state that prices
predicted candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import Assigner
from repro.geo.point import Point
from repro.model.entities import Task, Worker
from repro.model.quality import QualityModel
from repro.obs.export import phase_percentiles, registry_snapshot, to_prometheus_text
from repro.prediction.predictors import CountPredictor
from repro.simulation.metrics import AssignmentRecord, SimulationResult
from repro.streaming.engine import StreamConfig, StreamingEngine


@dataclass(frozen=True)
class StreamSnapshot:
    """Point-in-time view of a running service.

    Attributes:
        clock: timestamp of the last executed round (``None`` before
            the first).
        rounds_run / events_processed: engine progress counters.
        available_workers / available_tasks: pool sizes right now.
        assignments / total_quality / total_cost: running totals over
            every materialized assignment.
        candidate_pairs_examined: pairs the sparse builder actually
            touched (the output-sensitive work measure).
        dense_pairs_equivalent: pairs the dense builder would have
            materialized for the same rounds.
        phase_latencies: per-phase latency percentiles from the
            engine's metrics registry — ``{phase: {p50, p95, p99,
            mean, count}}`` in milliseconds for the round/build/price/
            select/finalize phases.  Empty when ``enable_metrics`` is
            off or no round has run.
    """

    clock: float | None
    rounds_run: int
    events_processed: int
    available_workers: int
    available_tasks: int
    assignments: int
    total_quality: float
    total_cost: float
    candidate_pairs_examined: int
    dense_pairs_equivalent: int
    phase_latencies: dict[str, dict[str, float]] = field(default_factory=dict)


class StreamingService:
    """Submit/drain interface around :class:`StreamingEngine`."""

    def __init__(
        self,
        assigner: Assigner,
        quality_model: QualityModel,
        config: StreamConfig | None = None,
        predictor: CountPredictor | None = None,
        seed: int = 0,
    ) -> None:
        self._engine = StreamingEngine(
            assigner, quality_model, config=config, predictor=predictor, seed=seed
        )
        self._drained_assignments = 0
        self._closed = False

    @classmethod
    def from_engine(
        cls, engine: StreamingEngine, drained_assignments: int = 0
    ) -> "StreamingService":
        """Wrap an existing engine (the recovery layer's constructor).

        ``drained_assignments`` positions the drain cursor so a
        restored service does not re-deliver assignments the killed
        process already handed out.
        """
        service = cls.__new__(cls)
        service._engine = engine
        service._drained_assignments = int(drained_assignments)
        service._closed = False
        return service

    @property
    def engine(self) -> StreamingEngine:
        """The underlying engine (for inspection; prefer the facade)."""
        return self._engine

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; mutating calls then raise."""
        return self._closed

    @property
    def drained_assignments(self) -> int:
        """Position of the drain cursor (assignments already handed out)."""
        return self._drained_assignments

    def close(self) -> None:
        """Release the engine's resources; idempotent.

        Further :meth:`submit_worker` / :meth:`submit_task` /
        :meth:`drain` calls raise ``RuntimeError``; the read-only
        surface (:meth:`snapshot_metrics`, :meth:`result`, metric
        exports) keeps working so a supervisor can still inspect a
        closed tenant.
        """
        if self._closed:
            return
        self._closed = True
        self._engine.close()

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self, op: str) -> None:
        if self._closed:
            raise RuntimeError(f"service is closed; cannot {op}")

    def submit_worker(self, worker: Worker, at: float | None = None) -> None:
        """Register a worker arrival (defaults to ``worker.arrival``)."""
        self._check_open("submit_worker")
        self._engine.submit_worker(worker, at)

    def submit_task(self, task: Task, at: float | None = None) -> None:
        """Post a task (defaults to ``task.arrival``)."""
        self._check_open("submit_task")
        self._engine.submit_task(task, at)

    def drain(self, until: float | None = None) -> list[AssignmentRecord]:
        """Advance rounds and return the assignments they materialized.

        Args:
            until: advance every round due at or before this time.
                When omitted, advance far enough that every queued
                arrival has been seen by at least one round.
        """
        self._check_open("drain")
        if until is None:
            self._engine.drain_pending()
        else:
            self._engine.advance_to(until)
        fresh = self._engine.assignments_since(self._drained_assignments)
        self._drained_assignments += len(fresh)
        return fresh

    def snapshot_metrics(self) -> StreamSnapshot:
        """Running totals without advancing time (O(1): the engine
        maintains the aggregates; no history is copied)."""
        engine = self._engine
        return StreamSnapshot(
            clock=engine.clock,
            rounds_run=engine.rounds_run,
            events_processed=engine.events_processed,
            available_workers=engine.num_available_workers,
            available_tasks=engine.num_available_tasks,
            assignments=engine.num_assignments,
            total_quality=engine.total_quality,
            total_cost=engine.total_cost,
            candidate_pairs_examined=engine.build_stats.candidates,
            dense_pairs_equivalent=engine.build_stats.dense_equivalent,
            phase_latencies=phase_percentiles(engine.metrics_registry),
        )

    def metrics_json(self) -> dict:
        """The engine's full metrics registry as a JSON-ready dict
        (``repro.obs.metrics/v1`` schema; empty instrument lists when
        ``enable_metrics`` is off)."""
        return registry_snapshot(self._engine.metrics_registry)

    def metrics_prometheus(self) -> str:
        """The engine's metrics registry in the Prometheus text
        exposition format (scrape-ready)."""
        return to_prometheus_text(self._engine.metrics_registry)

    def result(self) -> SimulationResult:
        """Full per-round metrics (the batch-compatible view)."""
        return self._engine.result()

    def expected_arrivals_near(
        self, point: Point, radius: float
    ) -> tuple[float, float]:
        """Predicted next-round (worker, task) arrivals near ``point``.

        Sums the grid predictors' per-cell forecasts over the cells
        within ``radius`` (``GridIndex.cells_within_radius``); returns
        ``(0.0, 0.0)`` before any round has observed arrivals.
        """
        workers = self._engine.worker_predictor
        tasks = self._engine.task_predictor
        if not workers.is_ready or not tasks.is_ready:
            return (0.0, 0.0)
        return (
            workers.predicted_count_near(point, radius),
            tasks.predicted_count_near(point, radius),
        )
