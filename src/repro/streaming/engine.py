"""Continuous-time streaming assignment engine.

Where :class:`~repro.simulation.engine.SimulationEngine` batches the
world into discrete time instances, this engine consumes an *event
stream* (arrivals, expiries, worker releases) and runs assignment
rounds on a configurable micro-batch cadence: events are applied in
timestamp order between rounds, and each round prices and assigns only
the entities alive at that moment, generating candidate pairs through
the sparse, spatial-index-backed builder.

Equivalence contract: with ``round_interval = 1.0`` and a workload
adapter stamping arrivals at integer instances, the engine reproduces
the batch framework's :class:`~repro.simulation.metrics.
SimulationResult` *exactly* — same assignments, same quality/cost
accounting, same prediction errors (``cpu_seconds`` is wall-clock and
necessarily differs).  Everything order- or RNG-sensitive (pool
ordering, released-worker id allocation, predictor draws) mirrors the
batch loop; the differential suite in
``tests/test_streaming_equivalence.py`` enforces the contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Assigner
from repro.core.triplet_select import SelectionState
from repro.geo.grid import GridIndex
from repro.geo.point import euclidean_distance
from repro.geo.spatial_index import SpatialIndex
from repro.model.delta import ChurnRecord, DeltaPoolBuilder
from repro.model.entities import Task, Worker
from repro.model.instance import build_problem
from repro.model.quality import QualityModel
from repro.model.sparse import SparseBuildStats, build_problem_sparse
from repro.obs.instrument import StreamObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.prediction.accuracy import average_relative_error
from repro.prediction.grid_predictor import GridPredictor
from repro.prediction.predictors import CountPredictor
from repro.simulation.engine import (
    EngineConfig,
    _PREDICTED_ID_BASE,
    predict_entities,
)
from repro.simulation.metrics import (
    AssignmentRecord,
    InstanceMetrics,
    SimulationResult,
)
from repro.streaming.events import (
    PHASE_RELEASE,
    Event,
    EventQueue,
    TaskArrival,
    TaskExpiry,
    WorkerArrival,
    WorkerRelease,
)

_RELEASED_ID_BASE = _PREDICTED_ID_BASE * 2


@dataclass(frozen=True)
class StreamConfig:
    """Streaming engine knobs.

    The assignment-policy fields mirror :class:`~repro.simulation.
    engine.EngineConfig`; the streaming-specific ones are:

    Attributes:
        round_interval: time between micro-batch assignment rounds.
            ``1.0`` aligns rounds with the batch engine's instances.
        budget: reward budget ``B`` granted per round.
        use_sparse_builder: generate candidates through the spatial
            index (``build_problem_sparse``) instead of the dense
            matrix builder.  Both produce identical pools; the sparse
            path is output-sensitive.
        index_gamma: grid resolution of the maintained task index.
        use_delta_builder: maintain the current×current candidate pool
            incrementally across rounds (:class:`~repro.model.delta.
            DeltaPoolBuilder`) instead of rebuilding it every round.
            Emits bit-identical pools; only the work per round changes.
            Requires the sparse builder.
        delta_slack: motion slack handed to the delta builder.  The
            engine's own entities never move, so ``0.0`` (exact joins)
            is right here; embedders that relocate tasks through the
            index can budget ``expected per-round displacement x
            horizon rounds``.
        delta_rebuild_ratio: churn fraction above which the delta
            builder re-primes instead of repairing (see
            ``DeltaPoolBuilder.rebuild_churn_ratio``).
        use_warm_select: persist selection state across rounds
            (:class:`~repro.core.triplet_select.SelectionState`) so the
            assign phase repairs its sorted orders from the round's
            churn instead of rebuilding them.  Selections are
            bit-identical to cold solves; only the work per round
            changes.  Works with every builder — the delta builder
            supplies a trusted row-origin map through the shared
            :class:`~repro.model.delta.ChurnRecord`, other builders
            fall back to self-diffing pair identities.
        enable_metrics: record per-round phase histograms, counters
            and gauges into the engine's :class:`~repro.obs.metrics.
            MetricsRegistry`.  Observability never touches data,
            ordering or RNG — results are bit-identical either way
            (differentially tested); off hands out null instruments.
        enable_tracing: record per-round spans and cache instants into
            the engine's :class:`~repro.obs.trace.TraceRecorder`,
            exportable as Chrome trace-event JSON.  Same bit-identical
            contract; off by default because traces grow with rounds.
    """

    round_interval: float = 1.0
    budget: float = 300.0
    unit_cost: float = 10.0
    use_prediction: bool = True
    grid_gamma: int = 10
    window: int = 3
    discount_by_existence: bool = True
    reservation_filter: bool = True
    include_future_future_pairs: bool = True
    default_deadline_offset: float = 1.5
    default_velocity: float = 0.25
    use_sparse_builder: bool = True
    index_gamma: int = 16
    use_delta_builder: bool = True
    delta_slack: float = 0.0
    delta_rebuild_ratio: float = 0.5
    use_warm_select: bool = True
    enable_metrics: bool = True
    enable_tracing: bool = False

    def __post_init__(self) -> None:
        if self.round_interval <= 0.0:
            raise ValueError("round_interval must be positive")
        if self.budget < 0.0:
            raise ValueError("budget must be non-negative")
        if self.unit_cost < 0.0:
            raise ValueError("unit cost must be non-negative")
        if self.grid_gamma < 1:
            raise ValueError("grid_gamma must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.index_gamma < 1:
            raise ValueError("index_gamma must be >= 1")
        if self.delta_slack < 0.0:
            raise ValueError("delta_slack must be non-negative")
        if not 0.0 < self.delta_rebuild_ratio <= 1.0:
            raise ValueError("delta_rebuild_ratio must be in (0, 1]")

    @classmethod
    def from_engine_config(
        cls,
        config: EngineConfig,
        round_interval: float = 1.0,
        use_sparse_builder: bool = True,
        index_gamma: int = 16,
        use_delta_builder: bool = True,
        use_warm_select: bool = True,
    ) -> "StreamConfig":
        """Lift a batch :class:`EngineConfig` into streaming form."""
        if config.oracle_prediction:
            raise ValueError(
                "oracle prediction needs workload look-ahead; the streaming "
                "engine has no future to peek at"
            )
        return cls(
            round_interval=round_interval,
            budget=config.budget,
            unit_cost=config.unit_cost,
            use_prediction=config.use_prediction,
            grid_gamma=config.grid_gamma,
            window=config.window,
            discount_by_existence=config.discount_by_existence,
            reservation_filter=config.reservation_filter,
            include_future_future_pairs=config.include_future_future_pairs,
            default_deadline_offset=config.default_deadline_offset,
            default_velocity=config.default_velocity,
            use_sparse_builder=use_sparse_builder,
            index_gamma=index_gamma,
            use_delta_builder=use_delta_builder,
            use_warm_select=use_warm_select,
        )


class StreamingEngine:
    """Event-driven MQA assignment over a continuous timeline.

    Feed events with :meth:`submit` (or the helpers in
    :mod:`repro.streaming.adapters`), then :meth:`advance_to` a
    timestamp: every due micro-batch round up to it is executed.  The
    engine never looks at future events — a round sees exactly the
    entities whose events were stamped at or before it.
    """

    def __init__(
        self,
        assigner: Assigner,
        quality_model: QualityModel,
        config: StreamConfig | None = None,
        predictor: CountPredictor | None = None,
        seed: int = 0,
        end_time: float | None = None,
    ) -> None:
        self._assigner = assigner
        self._quality_model = quality_model
        self._config = config if config is not None else StreamConfig()
        self._end_time = end_time
        self._rng = np.random.default_rng(seed)

        grid = GridIndex(self._config.grid_gamma)
        self._worker_predictor = GridPredictor(grid, self._config.window, predictor)
        self._task_predictor = GridPredictor(grid, self._config.window, predictor)

        self._queue = EventQueue()
        self._available_workers: list[Worker] = []
        self._available_worker_ids: set[int] = set()
        self._available_tasks: list[Task] = []
        self._available_task_ids: set[int] = set()
        self._total_quality = 0.0
        self._total_cost = 0.0
        self._task_index = SpatialIndex(GridIndex(self._config.index_gamma))
        self._release_buffer: list[WorkerRelease] = []
        self._joined_workers: list[Worker] = []
        self._new_tasks: list[Task] = []

        self._next_released_id = _RELEASED_ID_BASE
        self._assignment_seq = 0
        self._next_round_index = 0
        self._last_worker_prediction: np.ndarray | None = None
        self._last_task_prediction: np.ndarray | None = None

        self._metrics: list[InstanceMetrics] = []
        self._log: list[AssignmentRecord] = []
        self.events_processed = 0
        self.build_stats = SparseBuildStats()
        # Created lazily on the first delta-path build so subclasses
        # that override _build_problem never pay the subscription.
        # The delta path runs through the fused round pipeline as its
        # K=1 case (one tile, inline runner); the standalone
        # DeltaPoolBuilder attribute remains for API compatibility but
        # the engine no longer populates it.
        self._delta_builder: DeltaPoolBuilder | None = None
        self._fused_builder = None
        # Engine-side churn journal handed to the delta builder as
        # trusted hints: this round's worker arrivals (append order)
        # and the ids assigned away since the previous build.  Only
        # journaled while a delta-path build will consume it —
        # subclasses that override _build_problem opt out so the list
        # cannot grow unboundedly in a long-lived stream.
        self._round_worker_arrivals: list[Worker] = []
        self._removed_worker_ids: list[int] = []
        self._journal_worker_churn = (
            self._config.use_sparse_builder and self._config.use_delta_builder
        )
        # Persistent warm-start selection layer (None when disabled).
        self._selection_state: SelectionState | None = (
            self._make_selection_state() if self._config.use_warm_select else None
        )
        # Observability hub: the round loop always times its phases
        # through the observer's RoundTimer (one clock, one set of
        # measurements feeding both InstanceMetrics and the registry);
        # recording is gated by the config flags.
        self._observer = StreamObserver(
            MetricsRegistry(self._config.enable_metrics),
            TraceRecorder(self._config.enable_tracing),
        )

    def _make_selection_state(self) -> SelectionState:
        """Build the persistent selection state (subclass hook).

        The sharded engine overrides this to key one state per spatial
        tile; everything else about the round loop stays shared.
        """
        return SelectionState(repair_ratio=self._config.delta_rebuild_ratio)

    # -- state inspection ---------------------------------------------------

    @property
    def config(self) -> StreamConfig:
        return self._config

    @property
    def worker_predictor(self) -> GridPredictor:
        return self._worker_predictor

    @property
    def task_predictor(self) -> GridPredictor:
        return self._task_predictor

    @property
    def delta_stats(self):
        """Counters of the incremental pool maintenance (``None``
        before the first delta-path round, or when disabled).

        On the fused pipeline this is the per-tile aggregate —
        ``rounds`` counts tile-rounds, so the incremental rate reads
        as a per-tile average for any K."""
        if self._fused_builder is not None:
            return self._fused_builder.delta_stats
        if self._delta_builder is None:
            return None
        return self._delta_builder.delta_stats

    @property
    def select_stats(self):
        """Counters of the persistent selection layer (``None`` when
        warm selection is disabled)."""
        if self._selection_state is None:
            return None
        return self._selection_state.stats

    @property
    def observer(self) -> StreamObserver:
        """The engine's observability hub (always present; recording
        is gated by ``enable_metrics``/``enable_tracing``)."""
        return self._observer

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The engine's metrics registry (null instruments when
        ``enable_metrics`` is off)."""
        return self._observer.metrics

    @property
    def trace_recorder(self) -> TraceRecorder:
        """The engine's trace recorder (drops events when
        ``enable_tracing`` is off)."""
        return self._observer.trace

    @property
    def clock(self) -> float | None:
        """Timestamp of the last executed round (``None`` before any)."""
        if self._next_round_index == 0:
            return None
        return (self._next_round_index - 1) * self._config.round_interval

    @property
    def rounds_run(self) -> int:
        return self._next_round_index

    @property
    def num_available_workers(self) -> int:
        return len(self._available_workers)

    @property
    def num_available_tasks(self) -> int:
        return len(self._available_tasks)

    @property
    def num_pending_events(self) -> int:
        return len(self._queue)

    def result(self) -> SimulationResult:
        """Metrics and audit trail of every round executed so far."""
        return SimulationResult(
            instances=list(self._metrics), assignments=list(self._log)
        )

    @property
    def num_assignments(self) -> int:
        return len(self._log)

    @property
    def total_quality(self) -> float:
        """Running realized quality (O(1); no history copy)."""
        return self._total_quality

    @property
    def total_cost(self) -> float:
        """Running realized cost (O(1); no history copy)."""
        return self._total_cost

    def assignments_since(self, start: int) -> list[AssignmentRecord]:
        """Audit-trail records from position ``start`` on (a copy).

        Lets a long-lived service hand out only the fresh tail instead
        of re-materializing the whole history every drain.
        """
        return self._log[start:]

    # -- lifecycle / durability ---------------------------------------------

    def close(self) -> None:
        """Release build-path resources (idempotent).

        The serial engine's fused builder runs inline, so this is
        cheap — it exists so every engine in the family shares one
        lifecycle surface (the sharded engine's process backend *must*
        be closed to stop its pinned workers).
        """
        if self._fused_builder is not None:
            self._fused_builder.close()

    def __enter__(self) -> "StreamingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def export_state(self) -> bytes:
        """The engine's full round state as one opaque durable blob.

        This is the journal-export hook the recovery layer
        (:mod:`repro.streaming.recovery`) checkpoints: the candidate
        pool caches, persistent selection state, predictor windows,
        RNG state, event queue and audit log all travel in the blob,
        so :meth:`restore_state` + a replay of the operations issued
        after the export reaches bit-identical state to an engine
        that never stopped (the kill-and-replay differential suite
        proves it).  Only in-process engines are exportable — a
        process-backed sharded engine holds pinned workers and shared
        memory that cannot be serialized.
        """
        import pickle

        from repro.streaming.pipeline import InlineTileRunner

        runner = getattr(self._fused_builder, "_runner", None)
        if runner is not None and not isinstance(runner, InlineTileRunner):
            raise ValueError(
                "only engines with in-process build backends are "
                f"exportable; this engine runs {type(runner).__name__}"
            )
        return pickle.dumps(self)

    @classmethod
    def restore_state(cls, blob: bytes) -> "StreamingEngine":
        """Rebuild an engine from an :meth:`export_state` blob."""
        import pickle

        engine = pickle.loads(blob)
        if not isinstance(engine, StreamingEngine):
            raise ValueError(
                f"blob does not contain a streaming engine "
                f"(got {type(engine).__name__})"
            )
        return engine

    # -- event intake -------------------------------------------------------

    def submit(self, event: Event) -> None:
        """Enqueue one event.

        Events stamped before the engine's clock are not an error —
        they simply become visible at the next round, the streaming
        analogue of a late-arriving record.
        """
        self._queue.push(event)

    def submit_worker(self, worker: Worker, at: float | None = None) -> None:
        """Enqueue a worker arrival (defaults to the worker's arrival time)."""
        if worker.predicted:
            raise ValueError(f"worker {worker.id}: cannot submit a predicted entity")
        self._queue.push(WorkerArrival(worker.arrival if at is None else at, worker))

    def submit_task(self, task: Task, at: float | None = None) -> None:
        """Enqueue a task arrival (defaults to the task's arrival time)."""
        if task.predicted:
            raise ValueError(f"task {task.id}: cannot submit a predicted entity")
        self._queue.push(TaskArrival(task.arrival if at is None else at, task))

    # -- time advancement ---------------------------------------------------

    def advance_to(self, until: float) -> None:
        """Run every micro-batch round scheduled at or before ``until``.

        Rounds fire at multiples of ``round_interval``; when the engine
        was built with an ``end_time`` (workload mode), rounds at or
        past it never run — matching the batch loop's ``R`` instances.
        """
        while True:
            round_time = self._next_round_index * self._config.round_interval
            if round_time > until:
                break
            if self._end_time is not None and round_time >= self._end_time:
                break
            self._run_round(round_time, self._next_round_index)
            self._next_round_index += 1

    def drain_pending(self) -> None:
        """Advance so every queued arrival/release has seen a round.

        Expiry events are deliberately ignored when picking the target
        time: a far-future deadline on an unassignable task must not
        fast-forward the clock through dozens of empty rounds.
        """
        latest = self._queue.latest_time(max_phase=PHASE_RELEASE)
        if latest is None:
            return
        interval = self._config.round_interval
        # At least the next round, even when every queued event is
        # late-stamped (before the clock) — submit() promises late
        # events become visible at the next round.
        rounds_needed = max(
            int(np.ceil(latest / interval)), self._next_round_index
        )
        self.advance_to(rounds_needed * interval)

    # -- the round ----------------------------------------------------------

    def _apply_due_events(self, now: float) -> None:
        expired: set[int] = set()
        for event in self._queue.pop_due(now):
            self.events_processed += 1
            if isinstance(event, WorkerArrival):
                worker = event.worker
                if worker.id in self._available_worker_ids:
                    raise ValueError(
                        f"worker {worker.id} is already in the pool; live "
                        "entity ids must be unique"
                    )
                self._available_worker_ids.add(worker.id)
                self._available_workers.append(worker)
                self._joined_workers.append(worker)
            elif isinstance(event, TaskArrival):
                task = event.task
                if task.id in self._available_task_ids:
                    raise ValueError(
                        f"task {task.id} is already pending; live entity "
                        "ids must be unique"
                    )
                self._available_task_ids.add(task.id)
                self._available_tasks.append(task)
                self._task_index.insert(task.id, task.location)
                self._queue.push(TaskExpiry(task.deadline, task.id))
                self._new_tasks.append(task)
            elif isinstance(event, WorkerRelease):
                self._release_buffer.append(event)
            elif isinstance(event, TaskExpiry):
                # Expiries for tasks already assigned (or dropped) are
                # stale — deadlines only matter while still available.
                if event.task_id in self._available_task_ids:
                    expired.add(event.task_id)
                    self._available_task_ids.discard(event.task_id)
                    self._task_index.remove(event.task_id)
        if expired:
            # One filtering pass per round, not one per expiry: a burst
            # round can expire hundreds of tasks at once.
            self._available_tasks = [
                t for t in self._available_tasks if t.id not in expired
            ]

    def _flush_releases(self, now: float) -> None:
        """Re-materialize released workers in assignment order.

        The batch engine iterates its busy list in append (assignment)
        order when releasing, so released ids — which seed the hashed
        quality scores — must be allocated in that order here too, not
        in release-time order.
        """
        if not self._release_buffer:
            return
        self._release_buffer.sort(key=lambda event: event.assignment_seq)
        for event in self._release_buffer:
            worker = Worker(
                id=self._next_released_id,
                location=event.location,
                velocity=event.velocity,
                arrival=now,
            )
            self._next_released_id += 1
            self._available_worker_ids.add(worker.id)
            self._available_workers.append(worker)
            self._joined_workers.append(worker)
        self._release_buffer.clear()

    def _build_problem(
        self,
        now: float,
        predicted_workers: list[Worker],
        predicted_tasks: list[Task],
        churn: ChurnRecord | None = None,
    ):
        """Assemble the round's candidate-pair problem.

        The single extension point of the round loop: subclasses that
        generate candidates differently — notably the sharded engine,
        which fans the build out over spatial shards — override this
        and nothing else, so event handling, prediction RNG draws and
        selection stay byte-for-byte shared with the serial engine.

        ``churn`` is the round's shared :class:`ChurnRecord`: the
        engine stamps its worker-churn journal on it beforehand, and a
        builder that can prove row provenance (the delta builder)
        annotates ``row_origin`` in place so the selection layer can
        repair from a trusted origin map.  Builders that cannot simply
        leave it unannotated — warm selection then self-diffs.
        """
        config = self._config
        if config.use_sparse_builder and config.use_delta_builder:
            # The serial engine is literally the K=1 case of the fused
            # sharded pipeline: one tile whose zone is the whole grid,
            # run inline — same persistent delta pool, same reconcile
            # pass, same origin-annotated churn for warm selection.
            if self._fused_builder is None:
                from repro.geo.tiles import TileGrid
                from repro.streaming.pipeline import FusedRoundBuilder

                self._fused_builder = FusedRoundBuilder(
                    self._quality_model,
                    config.unit_cost,
                    TileGrid(1, 1),
                    self._task_index,
                    discount_by_existence=config.discount_by_existence,
                    reservation_filter=config.reservation_filter,
                    include_future_future_pairs=config.include_future_future_pairs,
                    index_gamma=config.index_gamma,
                    slack=config.delta_slack,
                    rebuild_churn_ratio=config.delta_rebuild_ratio,
                    stats=self.build_stats,
                )
            problem = self._fused_builder.build_round(
                self._available_workers,
                self._available_tasks,
                predicted_workers,
                predicted_tasks,
                now,
                churn=churn,
            )
            self._removed_worker_ids = []
            return problem
        if config.use_sparse_builder:
            return build_problem_sparse(
                self._available_workers,
                self._available_tasks,
                predicted_workers,
                predicted_tasks,
                self._quality_model,
                config.unit_cost,
                now,
                discount_by_existence=config.discount_by_existence,
                reservation_filter=config.reservation_filter,
                include_future_future_pairs=config.include_future_future_pairs,
                task_index=self._task_index if self._available_tasks else None,
                index_gamma=config.index_gamma,
                stats=self.build_stats,
            )
        return build_problem(
            self._available_workers,
            self._available_tasks,
            predicted_workers,
            predicted_tasks,
            self._quality_model,
            config.unit_cost,
            now,
            discount_by_existence=config.discount_by_existence,
            reservation_filter=config.reservation_filter,
            include_future_future_pairs=config.include_future_future_pairs,
        )

    def _run_round(self, now: float, round_index: int) -> None:
        config = self._config
        timer = self._observer.begin_round(round_index, now)

        self._apply_due_events(now)
        self._flush_releases(now)

        # Prediction bookkeeping: score the previous round's forecast
        # against what actually joined, observe, forecast the next.
        grid = self._worker_predictor.grid
        actual_worker_counts = grid.count_points(
            [w.location for w in self._joined_workers]
        )
        actual_task_counts = grid.count_points([t.location for t in self._new_tasks])
        worker_error = (
            average_relative_error(self._last_worker_prediction, actual_worker_counts)
            if self._last_worker_prediction is not None
            else None
        )
        task_error = (
            average_relative_error(self._last_task_prediction, actual_task_counts)
            if self._last_task_prediction is not None
            else None
        )
        self._worker_predictor.observe_counts(actual_worker_counts)
        self._task_predictor.observe_counts(actual_task_counts)
        if self._journal_worker_churn:
            self._round_worker_arrivals = list(self._joined_workers)
        self._joined_workers.clear()
        self._new_tasks.clear()

        # Last-round cutoff, audited against the batch engine: the
        # batch loop predicts iff ``instance + 1 < num_instances``;
        # with ``end_time = num_instances`` and instance-aligned
        # rounds, ``now + round_interval < end_time`` is the same
        # strict comparison, so the final round skips prediction in
        # both engines and no earlier round drops it.  A prediction at
        # ``now + round_interval == end_time`` would target arrivals no
        # later round could ever assign (rounds at or past ``end_time``
        # never run — see advance_to), so the strict ``<`` is correct
        # for non-aligned intervals too.  Locked by
        # TestLastRoundPredictionCutoff in the differential suite.
        predicting = config.use_prediction and (
            self._end_time is None
            or now + config.round_interval < self._end_time
        )
        predicted_workers: list[Worker] = []
        predicted_tasks: list[Task] = []
        if predicting:
            predicted_workers, predicted_tasks = predict_entities(
                self._rng,
                now,
                self._available_workers,
                self._available_tasks,
                self._worker_predictor,
                self._task_predictor,
                default_velocity=config.default_velocity,
                default_deadline_offset=config.default_deadline_offset,
                step=config.round_interval,
            )
            self._last_worker_prediction = self._worker_predictor.predict_counts()[0]
            self._last_task_prediction = self._task_predictor.predict_counts()[0]
        else:
            self._last_worker_prediction = None
            self._last_task_prediction = None

        num_workers = len(self._available_workers)
        num_tasks = len(self._available_tasks)

        # The round's shared churn record: engine-journaled worker
        # churn in, builder-proved row provenance out (annotated in
        # place by the delta builder inside _build_problem).
        churn = ChurnRecord(
            worker_arrivals=(
                self._round_worker_arrivals if self._journal_worker_churn else None
            ),
            worker_removed_ids=(
                self._removed_worker_ids if self._journal_worker_churn else None
            ),
        )
        timer.phase_start("build")
        problem = self._build_problem(now, predicted_workers, predicted_tasks, churn)
        build_seconds = timer.phase_end("build")
        budget_future = (
            config.budget if predicted_workers or predicted_tasks else 0.0
        )
        if self._selection_state is not None:
            self._assigner.begin_round(problem, churn, self._selection_state)
        self._assigner.last_finalize_seconds = 0.0
        timer.phase_start("assign")
        result = self._assigner.assign(
            problem, config.budget, budget_future, self._rng
        )
        assign_seconds = timer.phase_end("assign")
        finalize_seconds = min(self._assigner.last_finalize_seconds, assign_seconds)
        select_seconds = assign_seconds - finalize_seconds
        timer.record("select", select_seconds, start=timer.start_of("assign"))
        timer.record(
            "finalize", finalize_seconds, start=timer.start_of("assign") + select_seconds
        )
        elapsed = timer.finish()

        assigned_worker_ids = {p.worker.id for p in result.pairs}
        assigned_task_ids = {p.task.id for p in result.pairs}
        for pair in result.pairs:
            travel = euclidean_distance(pair.worker.location, pair.task.location)
            travel_time = travel / pair.worker.velocity
            release_time = now + travel_time
            self._queue.push(
                WorkerRelease(
                    time=release_time,
                    location=pair.task.location,
                    velocity=pair.worker.velocity,
                    assignment_seq=self._assignment_seq,
                )
            )
            self._assignment_seq += 1
            self._log.append(
                AssignmentRecord(
                    instance=round_index,
                    worker_id=pair.worker.id,
                    task_id=pair.task.id,
                    quality=pair.quality.mean,
                    cost=pair.cost.mean,
                    travel_time=travel_time,
                    release_time=release_time,
                )
            )

        if assigned_worker_ids:
            self._available_workers = [
                w for w in self._available_workers if w.id not in assigned_worker_ids
            ]
            self._available_worker_ids -= assigned_worker_ids
            if self._journal_worker_churn:
                self._removed_worker_ids.extend(assigned_worker_ids)
        if assigned_task_ids:
            self._available_tasks = [
                t for t in self._available_tasks if t.id not in assigned_task_ids
            ]
            for task_id in assigned_task_ids:
                self._available_task_ids.discard(task_id)
                self._task_index.remove(task_id)

        self._total_quality += result.total_quality
        self._total_cost += result.total_cost
        self._metrics.append(
            InstanceMetrics(
                instance=round_index,
                quality=result.total_quality,
                cost=result.total_cost,
                assigned=result.num_assigned,
                num_workers=num_workers,
                num_tasks=num_tasks,
                num_predicted_workers=len(predicted_workers),
                num_predicted_tasks=len(predicted_tasks),
                num_pairs=problem.num_pairs,
                cpu_seconds=elapsed,
                worker_prediction_error=worker_error,
                task_prediction_error=task_error,
                build_seconds=build_seconds,
                assign_seconds=assign_seconds,
                select_seconds=select_seconds,
                finalize_seconds=finalize_seconds,
            )
        )
        delta_stats = self.delta_stats
        self._observer.end_round(
            timer,
            events_processed=self.events_processed,
            num_workers=num_workers,
            num_tasks=num_tasks,
            num_pairs=problem.num_pairs,
            assigned=result.num_assigned,
            build_stats=self.build_stats,
            delta_stats=delta_stats,
            select_stats=self.select_stats,
            warm_stats=getattr(self._assigner, "warm_stats", None),
            cached_pairs=(
                delta_stats.pairs_cached if delta_stats is not None else None
            ),
        )
