"""Async multi-tenant serving layer over the streaming service.

The paper's online MQA setting is a long-lived service absorbing
worker/task arrivals continuously; :class:`StreamServer` is that
front-end.  Each *tenant* (a city region) owns an independent
:class:`~repro.streaming.service.StreamingService` — its own engine,
pools, predictors and seed — and the server multiplexes all of them
over a bounded pool of execution slots:

- **Per-tenant submit queue + pump.**  Every tenant has one bounded
  ``asyncio.Queue`` drained by one pump task, so operations execute in
  submission order *per tenant* — preserving the engine's determinism
  guarantee tenant by tenant — while different tenants' rounds run
  concurrently in worker threads (the engine is NumPy-bound and
  releases the GIL in its hot loops).
- **Admission control.**  A full queue or an exhausted rate-limit
  token bucket rejects the call *immediately* with a typed
  :class:`AdmissionError` (``reason`` ∈ ``queue_full`` /
  ``rate_limited`` / ``unknown_tenant`` / ``closed``) instead of
  letting an overloaded tenant grow unbounded backlog or starve its
  neighbours.
- **SLO metrics.**  The server keeps its own
  :class:`~repro.obs.metrics.MetricsRegistry` with tenant-labeled
  instruments — admissions, typed rejections, queue depth, admission
  wait (enqueue → execution start) — and after every drain republishes
  each tenant's engine-side phase percentiles as
  ``tenant_phase_latency_ms{tenant=,phase=,quantile=}`` gauges, so one
  Prometheus scrape (:meth:`StreamServer.metrics_prometheus`) covers
  the whole fleet.
- **Durability (opt-in).**  A tenant configured with a
  ``recovery_dir`` is wrapped in :class:`~repro.streaming.recovery.
  JournaledService`: ops are write-ahead journaled and the engine is
  checkpointed, so a killed server process replays back to bit-identical
  state via :meth:`~repro.streaming.recovery.JournaledService.open`.

The event-loop side never touches an engine: pumps hand the actual
work to ``asyncio.to_thread`` and deliver results through futures, so
submits stay responsive while rounds run.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.obs.export import registry_snapshot, to_prometheus_text
from repro.obs.metrics import MetricsRegistry, monotonic
from repro.simulation.metrics import AssignmentRecord
from repro.streaming.recovery import JournaledService
from repro.streaming.service import StreamingService, StreamSnapshot

__all__ = [
    "AdmissionError",
    "ServerConfig",
    "StreamServer",
    "TenantSpec",
]

#: The closed set of typed rejection reasons.
ADMISSION_REASONS = (
    "queue_full", "rate_limited", "unknown_tenant", "closed", "timeout",
)


class AdmissionError(Exception):
    """A request the server refused to enqueue or execute, and why.

    Attributes:
        tenant: the tenant the request addressed.
        reason: one of :data:`ADMISSION_REASONS` — ``queue_full``
            (bounded submit queue at capacity: shed load or drain),
            ``rate_limited`` (token bucket empty: slow down),
            ``unknown_tenant`` (no such tenant registered),
            ``closed`` (server or tenant already shut down), or
            ``timeout`` (an op overran ``ServerConfig.op_timeout_s``;
            the tenant is wedged and further requests fail fast so it
            cannot hold a worker slot hostage).
    """

    def __init__(self, tenant: str, reason: str) -> None:
        if reason not in ADMISSION_REASONS:
            raise ValueError(f"unknown admission reason {reason!r}")
        super().__init__(f"tenant {tenant!r}: admission rejected ({reason})")
        self.tenant = tenant
        self.reason = reason


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant admission and durability policy.

    Attributes:
        name: unique tenant key (also the metrics label value).
        max_queue_depth: bound on queued-but-unexecuted operations;
            the queue_full rejection threshold.
        rate_limit: sustained operations/second admitted, enforced by
            a token bucket; ``None`` disables rate limiting.
        burst: bucket capacity — how far above the sustained rate a
            short burst may go (ignored when ``rate_limit`` is None).
        recovery_dir: when set, the tenant's service is wrapped in a
            :class:`~repro.streaming.recovery.JournaledService` rooted
            here (write-ahead journal + periodic checkpoints).
    """

    name: str
    max_queue_depth: int = 64
    rate_limit: float | None = None
    burst: int = 8
    recovery_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {self.rate_limit}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


@dataclass(frozen=True)
class ServerConfig:
    """Server-wide knobs.

    Attributes:
        num_workers: engine operations executing concurrently across
            all tenants (the thread-pool slot count).
        checkpoint_every: rounds between checkpoints for tenants that
            opted into recovery.
        op_timeout_s: per-operation execution deadline enforced by the
            pump; an op overrunning it resolves its future with a
            typed ``timeout`` :class:`AdmissionError`, releases the
            worker slot, and wedges the tenant (the runaway thread may
            still hold the engine, so further ops on that tenant fail
            fast rather than queue behind it).  ``None`` disables.
        faults: an armed :class:`repro.faults.FaultInjector` whose
            ``delay op`` faults stall chosen ops inside their worker
            thread — the deterministic way to exercise the timeout
            path; ``None`` injects nothing.
    """

    num_workers: int = 2
    checkpoint_every: int = 8
    op_timeout_s: float | None = None
    faults: object | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.op_timeout_s is not None and self.op_timeout_s <= 0:
            raise ValueError(
                f"op_timeout_s must be positive or None, got {self.op_timeout_s}"
            )


def _stalled(op: Callable, seconds: float) -> Callable:
    """Wrap an op to sleep inside its worker thread first (the
    ``delay op`` fault: deterministic wedged-tenant simulation)."""

    def call(service):
        time.sleep(seconds)
        return op(service)

    return call


class _TokenBucket:
    """Classic token bucket on the repo's sanctioned monotonic clock."""

    __slots__ = ("_rate", "_capacity", "_tokens", "_last")

    def __init__(self, rate: float, capacity: int) -> None:
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._tokens = float(capacity)
        self._last = monotonic()

    def try_take(self) -> bool:
        now = monotonic()
        self._tokens = min(
            self._capacity, self._tokens + (now - self._last) * self._rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class _Tenant:
    """Server-side state for one tenant: service, queue, pump, bucket."""

    def __init__(
        self, spec: TenantSpec, service: StreamingService | JournaledService
    ) -> None:
        self.spec = spec
        self.service = service
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=spec.max_queue_depth)
        self.bucket = (
            _TokenBucket(spec.rate_limit, spec.burst) if spec.rate_limit else None
        )
        self.pump: asyncio.Task | None = None
        self.closed = False
        #: Set when an op overran the server's op deadline: the
        #: runaway thread may still hold the engine, so the tenant
        #: fails fast until the process is restarted or recovered.
        self.wedged = False
        self.ops_executed = 0


class StreamServer:
    """Asyncio front-end multiplexing tenant engines over worker slots.

    Lifecycle: construct, ``await start()`` (or ``async with``),
    :meth:`add_tenant` any time while running, ``await close()``.
    All request methods are coroutines and must run on the loop that
    started the server.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tenants: dict[str, _Tenant] = {}
        self._slots: asyncio.Semaphore | None = None
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "StreamServer":
        if self._started:
            raise RuntimeError("server already started")
        self._slots = asyncio.Semaphore(self.config.num_workers)
        self._started = True
        return self

    async def close(self) -> None:
        """Drain every queue, stop the pumps, close every tenant service.

        Queued operations finish executing (their futures resolve);
        operations submitted after close are rejected with
        ``reason='closed'``.  Idempotent.
        """
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        for tenant in self._tenants.values():
            tenant.closed = True
        for tenant in self._tenants.values():
            await tenant.queue.join()
            if tenant.pump is not None:
                tenant.pump.cancel()
                try:
                    await tenant.pump
                except asyncio.CancelledError:
                    pass
        for tenant in self._tenants.values():
            await asyncio.to_thread(tenant.service.close)

    async def __aenter__(self) -> "StreamServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- tenant management --------------------------------------------------

    def add_tenant(
        self, spec: TenantSpec, factory: Callable[[], StreamingService]
    ) -> None:
        """Register a tenant and start its pump.

        ``factory`` builds the tenant's pristine service.  With a
        ``recovery_dir`` in the spec it must be deterministic (the
        recovery layer replays the journal against its output) and it
        only runs when no checkpoint exists yet.
        """
        if not self._started or self._closed:
            raise RuntimeError("add_tenant requires a started, open server")
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        if spec.recovery_dir is not None:
            service: StreamingService | JournaledService = JournaledService.open(
                factory,
                spec.recovery_dir,
                checkpoint_every=self.config.checkpoint_every,
            )
        else:
            service = factory()
        tenant = _Tenant(spec, service)
        tenant.pump = asyncio.get_running_loop().create_task(
            self._pump(tenant), name=f"pump:{spec.name}"
        )
        self._tenants[spec.name] = tenant

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def service(self, name: str) -> StreamingService | JournaledService:
        """The tenant's service, for read-only inspection."""
        return self._require(name).service

    # -- admission + execution ----------------------------------------------

    def _require(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            self._reject(name, "unknown_tenant")
        return tenant

    def _admit(self, name: str) -> _Tenant:
        tenant = self._require(name)
        labels = {"tenant": name}
        if self._closed or tenant.closed:
            self._reject(name, "closed")
        if tenant.wedged:
            self._reject(name, "timeout")
        if tenant.bucket is not None and not tenant.bucket.try_take():
            self._reject(name, "rate_limited")
        if tenant.queue.full():
            self._reject(name, "queue_full")
        self.registry.counter("server_admitted_total", labels).inc()
        return tenant

    def _reject(self, name: str, reason: str) -> None:
        self.registry.counter(
            "server_rejected_total", {"tenant": name, "reason": reason}
        ).inc()
        raise AdmissionError(name, reason)

    async def _enqueue(self, name: str, op: Callable[[StreamingService], object]):
        tenant = self._admit(name)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        tenant.queue.put_nowait((op, future, monotonic()))
        self.registry.gauge("server_queue_depth", {"tenant": name}).set(
            tenant.queue.qsize()
        )
        return await future

    async def _pump(self, tenant: _Tenant) -> None:
        name = tenant.spec.name
        depth = self.registry.gauge("server_queue_depth", {"tenant": name})
        wait = self.registry.histogram(
            "server_admission_wait_seconds", {"tenant": name}
        )
        while True:
            op, future, enqueued = await tenant.queue.get()
            try:
                if tenant.wedged:
                    # The runaway thread may still hold the engine —
                    # running more ops against it is not safe.  Fail
                    # queued backlog fast instead of blocking close().
                    if not future.cancelled():
                        future.set_exception(AdmissionError(name, "timeout"))
                    continue
                assert self._slots is not None
                async with self._slots:
                    wait.observe(monotonic() - enqueued)
                    tenant.ops_executed += 1
                    call = op
                    if self.config.faults is not None:
                        delay = self.config.faults.delay_op(
                            tenant.ops_executed, name
                        )
                        if delay is not None:
                            call = _stalled(op, delay)
                    try:
                        work = asyncio.to_thread(call, tenant.service)
                        if self.config.op_timeout_s is not None:
                            result = await asyncio.wait_for(
                                work, self.config.op_timeout_s
                            )
                        else:
                            result = await work
                    except (asyncio.TimeoutError, TimeoutError):
                        # Deadline overrun: free the slot (leaving this
                        # block releases the semaphore), wedge the
                        # tenant, surface a typed op error.  The thread
                        # itself cannot be killed; wedging keeps it
                        # from being joined by more work.
                        tenant.wedged = True
                        self.registry.counter(
                            "server_op_timeouts_total", {"tenant": name}
                        ).inc()
                        if not future.cancelled():
                            future.set_exception(AdmissionError(name, "timeout"))
                    except BaseException as exc:
                        if not future.cancelled():
                            future.set_exception(exc)
                    else:
                        if not future.cancelled():
                            future.set_result(result)
            finally:
                tenant.queue.task_done()
                depth.set(tenant.queue.qsize())

    # -- the tenant-facing facade -------------------------------------------

    async def submit_worker(self, tenant: str, worker, at: float | None = None) -> None:
        await self._enqueue(tenant, lambda svc: svc.submit_worker(worker, at))

    async def submit_task(self, tenant: str, task, at: float | None = None) -> None:
        await self._enqueue(tenant, lambda svc: svc.submit_task(task, at))

    async def drain(
        self, tenant: str, until: float | None = None
    ) -> list[AssignmentRecord]:
        fresh = await self._enqueue(tenant, lambda svc: svc.drain(until))
        self._publish_slo(tenant)
        return fresh

    async def snapshot(self, tenant: str) -> StreamSnapshot:
        """Point-in-time metrics view; read-only, bypasses admission."""
        service = self._require(tenant).service
        return await asyncio.to_thread(service.snapshot_metrics)

    # -- fleet metrics -------------------------------------------------------

    def _publish_slo(self, name: str) -> None:
        """Republish the tenant's engine-phase percentiles as gauges.

        The engine's own registry is per tenant; lifting the p50/p95/
        p99 per phase into tenant-labeled gauges on the *server*
        registry gives one scrape endpoint for the whole fleet.
        """
        tenant = self._tenants.get(name)
        if tenant is None:
            return
        phases = tenant.service.snapshot_metrics().phase_latencies
        for phase, stats in phases.items():
            for quantile in ("p50", "p95", "p99"):
                self.registry.gauge(
                    "tenant_phase_latency_ms",
                    {"tenant": name, "phase": phase, "quantile": quantile},
                ).set(stats[quantile])

    def metrics_prometheus(self) -> str:
        """The server registry (admission + SLO gauges), scrape-ready."""
        return to_prometheus_text(self.registry)

    def metrics_json(self) -> dict:
        return registry_snapshot(self.registry)
