"""repro — Prediction-Based Task Assignment in Spatial Crowdsourcing.

A full reproduction of the MQA system (Cheng, Lian, Chen, Shahabi,
ICDE 2017): grid-based worker/task prediction, uncertainty-aware
candidate pairs, and the GREEDY / Divide-and-Conquer assignment
heuristics, plus the workloads, simulation framework and experiment
harness needed to regenerate every figure of the paper's evaluation.

Quickstart::

    from repro import (
        SyntheticWorkload, WorkloadParams, SimulationEngine,
        EngineConfig, MQAGreedy,
    )

    workload = SyntheticWorkload(WorkloadParams(num_workers=600,
                                                num_tasks=600,
                                                num_instances=10), seed=7)
    engine = SimulationEngine(workload, MQAGreedy(),
                              EngineConfig(budget=100.0))
    result = engine.run()
    print(result.total_quality, result.average_cpu_seconds)
"""

from repro.core import (
    Assigner,
    AssignmentResult,
    MQAGreedy,
    GreedyConfig,
    ReferenceGreedy,
    MQADivideConquer,
    DivideConquerConfig,
    RandomAssigner,
    HungarianAssigner,
    exact_assignment,
)
from repro.geo import Point, Box, GridIndex, SpatialIndex
from repro.model import (
    Worker,
    Task,
    CandidatePair,
    ProblemInstance,
    build_problem,
    build_problem_sparse,
)
from repro.obs import MetricsRegistry, TraceRecorder
from repro.prediction import GridPredictor, make_predictor
from repro.simulation import SimulationEngine, EngineConfig, SimulationResult
from repro.streaming import (
    StreamConfig,
    StreamingEngine,
    StreamingService,
    run_stream,
)
from repro.uncertainty import UncertainValue
from repro.workloads import (
    Workload,
    WorkloadParams,
    SyntheticWorkload,
    RealWorkload,
    HashQualityModel,
    generate_checkins,
    CheckinGeneratorConfig,
    BurstyWorkload,
    DriftingHotspotWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "Assigner",
    "AssignmentResult",
    "MQAGreedy",
    "GreedyConfig",
    "ReferenceGreedy",
    "MQADivideConquer",
    "DivideConquerConfig",
    "RandomAssigner",
    "HungarianAssigner",
    "exact_assignment",
    "Point",
    "Box",
    "GridIndex",
    "SpatialIndex",
    "Worker",
    "Task",
    "CandidatePair",
    "ProblemInstance",
    "build_problem",
    "build_problem_sparse",
    "MetricsRegistry",
    "TraceRecorder",
    "GridPredictor",
    "make_predictor",
    "SimulationEngine",
    "EngineConfig",
    "SimulationResult",
    "StreamConfig",
    "StreamingEngine",
    "StreamingService",
    "run_stream",
    "UncertainValue",
    "Workload",
    "WorkloadParams",
    "SyntheticWorkload",
    "RealWorkload",
    "HashQualityModel",
    "generate_checkins",
    "CheckinGeneratorConfig",
    "BurstyWorkload",
    "DriftingHotspotWorkload",
    "__version__",
]
