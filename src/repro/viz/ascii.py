"""ASCII/Unicode rendering of spatial densities and series.

``density_map`` turns a point set into a shaded grid (darker = denser),
``sparkline`` turns a numeric series into a one-line bar chart, and
``side_by_side`` pastes multi-line blocks horizontally (e.g. worker vs
task densities).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geo.grid import GridIndex
from repro.geo.point import Point

# Light-to-dark shade ramp for density cells.
_SHADES = " .:-=+*#%@"

# Eight-level unicode bars for sparklines.
_BARS = "▁▂▃▄▅▆▇█"


def render_counts(counts: np.ndarray, gamma: int) -> str:
    """Render a per-cell count vector (row-major, ``gamma^2`` cells).

    Row 0 of the grid is the *bottom* of the unit square, so the text
    is emitted top row first to match the usual map orientation.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.shape != (gamma * gamma,):
        raise ValueError(
            f"expected {gamma * gamma} cells for gamma={gamma}, got {counts.shape}"
        )
    peak = counts.max()
    lines = []
    for row in range(gamma - 1, -1, -1):
        chars = []
        for col in range(gamma):
            value = counts[row * gamma + col]
            if peak <= 0.0:
                level = 0
            else:
                level = int(round(value / peak * (len(_SHADES) - 1)))
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def density_map(points: Iterable[Point], resolution: int = 16) -> str:
    """Shaded density map of a point set on a ``resolution^2`` grid."""
    grid = GridIndex(resolution)
    counts = grid.count_points(list(points))
    return render_counts(counts, resolution)


def sparkline(values: Sequence[float]) -> str:
    """One-line bar chart of a numeric series (empty string for none)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _BARS[0] * len(values)
    span = high - low
    return "".join(
        _BARS[int(round((v - low) / span * (len(_BARS) - 1)))] for v in values
    )


def side_by_side(blocks: Sequence[str], gap: int = 3, titles: Sequence[str] | None = None) -> str:
    """Paste multi-line text blocks horizontally.

    Blocks of different heights are bottom-padded; ``titles`` (when
    given) are centered above each block.
    """
    if not blocks:
        return ""
    if titles is not None and len(titles) != len(blocks):
        raise ValueError("one title per block required")
    split = [block.splitlines() for block in blocks]
    widths = [max((len(line) for line in lines), default=0) for lines in split]
    height = max(len(lines) for lines in split)
    padded = [
        [line.ljust(width) for line in lines] + [" " * width] * (height - len(lines))
        for lines, width in zip(split, widths)
    ]
    spacer = " " * gap
    out_lines = []
    if titles is not None:
        out_lines.append(
            spacer.join(title.center(width) for title, width in zip(titles, widths))
        )
    for row in range(height):
        out_lines.append(spacer.join(column[row] for column in padded))
    return "\n".join(line.rstrip() for line in out_lines)
