"""Terminal visualization: density maps and sparklines.

Dependency-free ASCII/Unicode rendering for quick inspection of
spatial workloads and experiment series — useful in examples, notebook
sessions, and debugging without a plotting stack.
"""

from repro.viz.ascii import density_map, render_counts, side_by_side, sparkline

__all__ = ["density_map", "render_counts", "side_by_side", "sparkline"]
