"""Plain-text and CSV rendering of figure results.

The bench harness prints, for every figure, the same rows the paper
plots: one block for the quality series and one for the runtime series
(Fig. 10 reports prediction error instead of quality).
"""

from __future__ import annotations

import io
import json

from repro.experiments.runner import FigureResult, SeriesPoint


def _render_block(result: FigureResult, measure: str, header: str) -> str:
    out = io.StringIO()
    label_width = max(len(a) for a in result.algorithms) + 2
    column_width = max(max(len(x) for x in result.x_labels) + 2, 10)

    out.write(f"{header}\n")
    out.write(" " * label_width)
    for x in result.x_labels:
        out.write(f"{x:>{column_width}}")
    out.write("\n")
    for algorithm in result.algorithms:
        out.write(f"{algorithm:<{label_width}}")
        for value in result.series(algorithm, measure):
            if value != value:  # NaN
                out.write(f"{'-':>{column_width}}")
            elif measure == "cpu_seconds":
                out.write(f"{value:>{column_width}.4f}")
            else:
                out.write(f"{value:>{column_width}.2f}")
        out.write("\n")
    return out.getvalue()


def format_figure(result: FigureResult) -> str:
    """Human-readable report: quality block plus runtime block."""
    out = io.StringIO()
    out.write(f"== {result.figure_id}: {result.title} ==\n")
    out.write(f"x axis: {result.x_name}\n\n")
    quality_header = (
        "Average relative error (%)"
        if result.figure_id == "fig10"
        else "Overall quality score"
    )
    out.write(_render_block(result, "quality", quality_header))
    out.write("\n")
    out.write(_render_block(result, "cpu_seconds", "Running time (s/instance)"))
    return out.getvalue()


def format_figure_csv(result: FigureResult) -> str:
    """Machine-readable dump: one row per (x, algorithm) point."""
    out = io.StringIO()
    out.write("figure,x,algorithm,quality,cpu_seconds,assigned,cost\n")
    for point in result.points:
        out.write(
            f"{result.figure_id},{point.x_label},{point.algorithm},"
            f"{point.quality:.4f},{point.cpu_seconds:.6f},"
            f"{point.assigned},{point.cost:.4f}\n"
        )
    return out.getvalue()


def figure_to_json(result: FigureResult) -> str:
    """Serialize a figure result (round-trips with :func:`figure_from_json`)."""
    payload = {
        "figure_id": result.figure_id,
        "title": result.title,
        "x_name": result.x_name,
        "x_labels": result.x_labels,
        "algorithms": result.algorithms,
        "points": [
            {
                "x_label": p.x_label,
                "algorithm": p.algorithm,
                "quality": p.quality,
                "cpu_seconds": p.cpu_seconds,
                "assigned": p.assigned,
                "cost": p.cost,
                "worker_prediction_error": p.worker_prediction_error,
                "task_prediction_error": p.task_prediction_error,
            }
            for p in result.points
        ],
    }
    return json.dumps(payload, indent=2)


def figure_from_json(text: str) -> FigureResult:
    """Rebuild a :class:`FigureResult` written by :func:`figure_to_json`."""
    payload = json.loads(text)
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_name=payload["x_name"],
        x_labels=list(payload["x_labels"]),
        algorithms=list(payload["algorithms"]),
        points=[SeriesPoint(**point) for point in payload["points"]],
    )
