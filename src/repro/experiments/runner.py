"""Generic sweep runner shared by all figure definitions.

A figure is a sweep over one x-axis parameter; at each x value every
configured algorithm runs a full simulation and reports its overall
quality score and average per-instance CPU time — the paper's two
measures.  Workloads are built once per x value and shared across
algorithms (the fair-comparison requirement).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.base import Assigner
from repro.core.divide_conquer import MQADivideConquer
from repro.core.greedy import MQAGreedy
from repro.core.random_assign import RandomAssigner
from repro.experiments.config import ExperimentConfig
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.simulation.metrics import SimulationResult
from repro.workloads.base import Workload


@dataclass(frozen=True)
class AlgorithmSpec:
    """One curve of a figure: an assigner plus a prediction mode."""

    label: str
    make_assigner: Callable[[], Assigner]
    use_prediction: bool = True


def standard_algorithms() -> list[AlgorithmSpec]:
    """GREEDY / D&C / RANDOM, all with prediction (Figs. 12-22)."""
    return [
        AlgorithmSpec("GREEDY", MQAGreedy),
        AlgorithmSpec("D&C", MQADivideConquer),
        AlgorithmSpec("RANDOM", RandomAssigner),
    ]


def wp_wop_algorithms() -> list[AlgorithmSpec]:
    """The six WP/WoP curves of Figs. 11 and 23-27."""
    return [
        AlgorithmSpec("GREEDY_WP", MQAGreedy, use_prediction=True),
        AlgorithmSpec("D&C_WP", MQADivideConquer, use_prediction=True),
        AlgorithmSpec("RANDOM_WP", RandomAssigner, use_prediction=True),
        AlgorithmSpec("GREEDY_WoP", MQAGreedy, use_prediction=False),
        AlgorithmSpec("D&C_WoP", MQADivideConquer, use_prediction=False),
        AlgorithmSpec("RANDOM_WoP", RandomAssigner, use_prediction=False),
    ]


@dataclass(frozen=True)
class SeriesPoint:
    """One (x value, algorithm) measurement."""

    x_label: str
    algorithm: str
    quality: float
    cpu_seconds: float
    assigned: int
    cost: float
    worker_prediction_error: float | None = None
    task_prediction_error: float | None = None


@dataclass(frozen=True)
class FigureResult:
    """All measurements of one figure sweep."""

    figure_id: str
    title: str
    x_name: str
    x_labels: list[str]
    algorithms: list[str]
    points: list[SeriesPoint] = field(default_factory=list)

    def point(self, x_label: str, algorithm: str) -> SeriesPoint:
        """Lookup one measurement (raises ``KeyError`` when absent)."""
        for p in self.points:
            if p.x_label == x_label and p.algorithm == algorithm:
                return p
        raise KeyError(f"no point for x={x_label!r}, algorithm={algorithm!r}")

    def series(self, algorithm: str, measure: str = "quality") -> list[float]:
        """One curve: the ``measure`` attribute across x labels."""
        return [getattr(self.point(x, algorithm), measure) for x in self.x_labels]


def run_simulation(
    workload: Workload,
    spec: AlgorithmSpec,
    config: ExperimentConfig,
) -> SimulationResult:
    """One cell: one algorithm over one workload."""
    engine = SimulationEngine(
        workload,
        spec.make_assigner(),
        EngineConfig(
            budget=config.budget,
            unit_cost=config.unit_cost,
            use_prediction=spec.use_prediction,
            grid_gamma=config.grid_gamma,
            window=config.window,
        ),
        seed=config.seed,
    )
    return engine.run()


def _mean_or_none(values: list[float | None]) -> float | None:
    present = [v for v in values if v is not None]
    if not present:
        return None
    return sum(present) / len(present)


def run_figure(
    figure_id: str,
    title: str,
    x_name: str,
    x_values: Sequence,
    make_workload: Callable[[object, ExperimentConfig], Workload],
    make_config: Callable[[object], ExperimentConfig],
    algorithms: Sequence[AlgorithmSpec],
    x_formatter: Callable[[object], str] = str,
    repeats: int = 1,
) -> FigureResult:
    """Sweep ``x_values``, running every algorithm at each point.

    Args:
        figure_id / title: identification for reports.
        x_name: the swept parameter's display name.
        x_values: the sweep values.
        make_workload: builds the workload for one x value (given the
            resolved config), shared across algorithms at that point.
        make_config: resolves the experiment config for one x value.
        algorithms: the curves to measure.
        x_formatter: pretty-printer for x values.
        repeats: independent repetitions per point (distinct workload
            seeds); reported measurements are the means.  One run per
            point (the default) matches the paper's single-run curves;
            more repeats smooth seed noise at proportional cost.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    points: list[SeriesPoint] = []
    x_labels = [x_formatter(x) for x in x_values]
    for x, x_label in zip(x_values, x_labels):
        base_config = make_config(x)
        configs = [
            base_config.with_fields(seed=base_config.seed + 1000 * r)
            for r in range(repeats)
        ]
        workloads = [make_workload(x, c) for c in configs]
        for spec in algorithms:
            runs = [
                run_simulation(workload, spec, config)
                for workload, config in zip(workloads, configs)
            ]
            points.append(
                SeriesPoint(
                    x_label=x_label,
                    algorithm=spec.label,
                    quality=sum(r.total_quality for r in runs) / repeats,
                    cpu_seconds=sum(r.average_cpu_seconds for r in runs) / repeats,
                    assigned=round(sum(r.total_assigned for r in runs) / repeats),
                    cost=sum(r.total_cost for r in runs) / repeats,
                    worker_prediction_error=_mean_or_none(
                        [r.average_worker_prediction_error for r in runs]
                    ),
                    task_prediction_error=_mean_or_none(
                        [r.average_task_prediction_error for r in runs]
                    ),
                )
            )
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_name=x_name,
        x_labels=x_labels,
        algorithms=[spec.label for spec in algorithms],
        points=points,
    )
