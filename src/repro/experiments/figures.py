"""One function per paper figure (Section VI + appendices).

Every public ``fig*`` function sweeps the figure's parameter and
returns a :class:`~repro.experiments.runner.FigureResult` whose curves
mirror the published series.  ``scale`` shrinks entity counts and the
budget proportionally (1.0 = the paper's size); EXPERIMENTS.md records
the scales used for the committed runs.

Real-data figures (10, 12, 13, 23, 24) run on synthesized
Gowalla/Foursquare-style check-in streams (see DESIGN.md for the
substitution rationale); the record counts keep the paper's worker:task
ratio (6,143 : 8,481 in the San Francisco extraction).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig, scaled_config
from repro.experiments.runner import (
    AlgorithmSpec,
    FigureResult,
    SeriesPoint,
    run_figure,
    run_simulation,
    standard_algorithms,
    wp_wop_algorithms,
)
from repro.core.random_assign import RandomAssigner
from repro.workloads.checkins import (
    SAN_FRANCISCO_BOUNDS,
    CheckinGeneratorConfig,
    generate_checkins,
)
from repro.workloads.real import RealWorkload
from repro.workloads.synthetic import SyntheticWorkload

# The paper's San Francisco extraction: 6,143 Gowalla users as workers
# and 8,481 Foursquare check-ins as tasks.
_REAL_WORKERS_FULL = 6143
_REAL_TASKS_FULL = 8481

_BUDGETS_FULL = (100.0, 200.0, 300.0, 400.0, 500.0)
_QUALITY_RANGES = ((0.25, 0.5), (0.5, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0))
_DEADLINE_RANGES = ((0.25, 0.5), (0.5, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0))
_VELOCITY_RANGES = ((0.1, 0.2), (0.2, 0.3), (0.3, 0.4), (0.4, 0.5))
_UNIT_PRICES = (5.0, 10.0, 15.0, 20.0)
_TIME_INSTANCES = (10, 15, 20, 25)
_ENTITY_COUNTS_FULL = (1000, 3000, 5000, 8000, 10000)
_WINDOW_SIZES = (1, 2, 3, 4, 5)
_DISTRIBUTION_COMBOS = (
    "G-U", "G-G", "G-Z", "U-U", "U-G", "U-Z", "Z-U", "Z-G", "Z-Z",
)


def _mean_or_nan(values) -> float:
    present = [v for v in values if v is not None]
    if not present:
        return float("nan")
    return sum(present) / len(present)


def _range_label(bounds: tuple[float, float]) -> str:
    low, high = bounds
    fmt = lambda v: f"{v:g}"  # noqa: E731 - tiny local formatter
    return f"[{fmt(low)},{fmt(high)}]"


def _synthetic(config: ExperimentConfig) -> SyntheticWorkload:
    return SyntheticWorkload(config.params, seed=config.seed)


def _real(config: ExperimentConfig, scale: float) -> RealWorkload:
    """Check-in-based workload at the paper's worker:task ratio."""
    rng = np.random.default_rng(config.seed + 104729)
    worker_records = generate_checkins(
        CheckinGeneratorConfig(
            num_records=max(int(round(_REAL_WORKERS_FULL * scale)), 1),
            num_users=max(int(round(_REAL_WORKERS_FULL * scale / 4)), 1),
        ),
        rng,
    )
    task_records = generate_checkins(
        CheckinGeneratorConfig(
            num_records=max(int(round(_REAL_TASKS_FULL * scale)), 1),
            num_users=max(int(round(_REAL_TASKS_FULL * scale / 4)), 1),
            num_hotspots=10,
            drift_amplitude=0.35,
        ),
        rng,
    )
    # Explicit bounds keep the unit-square mapping aligned with the
    # generator's intensity grid (exact cell nesting; see checkins.py).
    return RealWorkload(
        worker_records,
        task_records,
        config.params,
        seed=config.seed,
        bounds=SAN_FRANCISCO_BOUNDS,
    )


# --------------------------------------------------------------------------
# Fig. 10 — prediction accuracy vs window size w
# --------------------------------------------------------------------------

def fig10(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 10: average relative error of count prediction vs ``w``.

    Curves: Worker(S) / Task(S) on synthetic data, Worker(R) / Task(R)
    on (simulated) real data.  The ``quality`` field of each point
    holds the error in percent (this figure measures accuracy, not
    assignment quality).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    curves = ["Worker(S)", "Task(S)", "Worker(R)", "Task(R)"]
    points: list[SeriesPoint] = []
    for window in _WINDOW_SIZES:
        # Zero budget: the probe makes no assignments, so the observed
        # arrival stream is exactly the workload's (no released-worker
        # feedback) — Fig. 10 evaluates the predictor, not an assigner.
        spec = AlgorithmSpec("probe", RandomAssigner, use_prediction=True)
        for suffix in ("S", "R"):
            worker_errors, task_errors, cpu = [], [], []
            for r in range(repeats):
                config = scaled_config(scale, seed + 1000 * r).with_fields(
                    window=window, budget=0.0
                )
                workload = (
                    _synthetic(config) if suffix == "S" else _real(config, scale)
                )
                result = run_simulation(workload, spec, config)
                worker_errors.append(result.average_worker_prediction_error)
                task_errors.append(result.average_task_prediction_error)
                cpu.append(result.average_cpu_seconds)
            means = {
                "Worker": _mean_or_nan(worker_errors),
                "Task": _mean_or_nan(task_errors),
            }
            for kind, error in means.items():
                points.append(
                    SeriesPoint(
                        x_label=str(window),
                        algorithm=f"{kind}({suffix})",
                        quality=100.0 * error,
                        cpu_seconds=sum(cpu) / len(cpu),
                        assigned=0,
                        cost=0.0,
                        worker_prediction_error=_mean_or_nan(worker_errors),
                        task_prediction_error=_mean_or_nan(task_errors),
                    )
                )
    return FigureResult(
        figure_id="fig10",
        title="Prediction accuracy vs window size w (avg relative error, %)",
        x_name="w",
        x_labels=[str(w) for w in _WINDOW_SIZES],
        algorithms=curves,
        points=points,
    )


# --------------------------------------------------------------------------
# Fig. 11 — effect of budget B (synthetic, WP vs WoP)
# --------------------------------------------------------------------------

def fig11(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 11: quality and runtime vs budget ``B``, six WP/WoP curves."""
    budgets = [b * scale for b in _BUDGETS_FULL]
    return run_figure(
        figure_id="fig11",
        title="Effect of the budget B (synthetic)",
        x_name="B",
        x_values=budgets,
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_fields(budget=float(x)),
        algorithms=wp_wop_algorithms(),
        x_formatter=lambda b: f"{b / scale:g}",
        repeats=repeats,
    )


# --------------------------------------------------------------------------
# Figs. 12-16 — one-parameter sweeps, three algorithms
# --------------------------------------------------------------------------

def fig12(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 12: quality range ``[q-, q+]`` sweep (real data)."""
    return run_figure(
        figure_id="fig12",
        title="Effect of the quality score range (real data)",
        x_name="[q-,q+]",
        x_values=list(_QUALITY_RANGES),
        make_workload=lambda x, config: _real(config, scale),
        make_config=lambda x: scaled_config(scale, seed).with_params(quality_range=x),
        algorithms=standard_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig13(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 13: deadline range ``[e-, e+]`` sweep (real data)."""
    return run_figure(
        figure_id="fig13",
        title="Effect of the task deadline range (real data)",
        x_name="[e-,e+]",
        x_values=list(_DEADLINE_RANGES),
        make_workload=lambda x, config: _real(config, scale),
        make_config=lambda x: scaled_config(scale, seed).with_params(deadline_range=x),
        algorithms=standard_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig14(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 14: velocity range ``[v-, v+]`` sweep (synthetic)."""
    return run_figure(
        figure_id="fig14",
        title="Effect of the worker velocity range (synthetic)",
        x_name="[v-,v+]",
        x_values=list(_VELOCITY_RANGES),
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(velocity_range=x),
        algorithms=standard_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig15(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 15: number of tasks ``m`` sweep (synthetic)."""
    counts = [max(int(round(m * scale)), 1) for m in _ENTITY_COUNTS_FULL]
    return run_figure(
        figure_id="fig15",
        title="Effect of the number of tasks m (synthetic)",
        x_name="m",
        x_values=counts,
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(num_tasks=int(x)),
        algorithms=standard_algorithms(),
        x_formatter=lambda m: f"{int(round(m / scale)):d}",
        repeats=repeats,
    )


def fig16(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 16: number of workers ``n`` sweep (synthetic)."""
    counts = [max(int(round(n * scale)), 1) for n in _ENTITY_COUNTS_FULL]
    return run_figure(
        figure_id="fig16",
        title="Effect of the number of workers n (synthetic)",
        x_name="n",
        x_values=counts,
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(num_workers=int(x)),
        algorithms=standard_algorithms(),
        x_formatter=lambda n: f"{int(round(n / scale)):d}",
        repeats=repeats,
    )


# --------------------------------------------------------------------------
# Figs. 18-19 — worker x task distribution combinations
# --------------------------------------------------------------------------

def fig18_19(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Figs. 18-19: the nine ``<worker-task>`` distribution combos.

    Fig. 18 is the ``quality`` series, Fig. 19 the ``cpu_seconds``
    series of the same sweep.
    """
    def _config(combo: str) -> ExperimentConfig:
        worker_key, task_key = combo.split("-")
        return scaled_config(scale, seed).with_params(
            worker_distribution=worker_key, task_distribution=task_key
        )

    return run_figure(
        figure_id="fig18_19",
        title="Effect of worker/task location distributions (synthetic)",
        x_name="<workers-tasks>",
        x_values=list(_DISTRIBUTION_COMBOS),
        make_workload=lambda x, config: _synthetic(config),
        make_config=_config,
        algorithms=standard_algorithms(),
        repeats=repeats,
    )


# --------------------------------------------------------------------------
# Figs. 20-21 — time instances R and unit price C
# --------------------------------------------------------------------------

def fig20(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 20: number of time instances ``R`` sweep (synthetic)."""
    return run_figure(
        figure_id="fig20",
        title="Effect of the number of time instances R (synthetic)",
        x_name="R",
        x_values=list(_TIME_INSTANCES),
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(
            num_instances=int(x)
        ),
        algorithms=standard_algorithms(),
        repeats=repeats,
    )


def fig21(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 21: unit price ``C`` sweep (synthetic)."""
    return run_figure(
        figure_id="fig21",
        title="Effect of the unit price C (synthetic)",
        x_name="C",
        x_values=list(_UNIT_PRICES),
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_fields(
            unit_cost=float(x)
        ),
        algorithms=standard_algorithms(),
        x_formatter=lambda c: f"{c:g}",
        repeats=repeats,
    )


# --------------------------------------------------------------------------
# Fig. 22 — window size w under three worker distributions
# --------------------------------------------------------------------------

def fig22(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 22: quality vs ``w`` for Gaussian/Uniform/Zipf workers.

    The paper splits this into three panels; here each panel's curves
    carry a distribution suffix (e.g. ``GREEDY (GAUS)``).
    """
    panels = (("GAUS", "gaussian"), ("UNIF", "uniform"), ("ZIPF", "zipf"))
    points: list[SeriesPoint] = []
    curve_labels: list[str] = []
    for panel_label, distribution in panels:
        for base_spec in standard_algorithms():
            curve_labels.append(f"{base_spec.label} ({panel_label})")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for window in _WINDOW_SIZES:
        for panel_label, distribution in panels:
            configs = [
                scaled_config(scale, seed + 1000 * r)
                .with_fields(window=window)
                .with_params(worker_distribution=distribution)
                for r in range(repeats)
            ]
            workloads = [_synthetic(c) for c in configs]
            for base_spec in standard_algorithms():
                runs = [
                    run_simulation(workload, base_spec, config)
                    for workload, config in zip(workloads, configs)
                ]
                points.append(
                    SeriesPoint(
                        x_label=str(window),
                        algorithm=f"{base_spec.label} ({panel_label})",
                        quality=sum(r.total_quality for r in runs) / repeats,
                        cpu_seconds=sum(r.average_cpu_seconds for r in runs) / repeats,
                        assigned=round(sum(r.total_assigned for r in runs) / repeats),
                        cost=sum(r.total_cost for r in runs) / repeats,
                    )
                )
    return FigureResult(
        figure_id="fig22",
        title="Effect of the window size w per worker distribution (synthetic)",
        x_name="w",
        x_labels=[str(w) for w in _WINDOW_SIZES],
        algorithms=curve_labels,
        points=points,
    )


# --------------------------------------------------------------------------
# Figs. 23-27 — WP vs WoP across the main parameters (appendix G)
# --------------------------------------------------------------------------

def fig23(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 23: WP vs WoP across the quality range (real data)."""
    return run_figure(
        figure_id="fig23",
        title="WP vs WoP: quality score range (real data)",
        x_name="[q-,q+]",
        x_values=list(_QUALITY_RANGES),
        make_workload=lambda x, config: _real(config, scale),
        make_config=lambda x: scaled_config(scale, seed).with_params(quality_range=x),
        algorithms=wp_wop_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig24(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 24: WP vs WoP across the deadline range (real data)."""
    return run_figure(
        figure_id="fig24",
        title="WP vs WoP: task deadline range (real data)",
        x_name="[e-,e+]",
        x_values=list(_DEADLINE_RANGES),
        make_workload=lambda x, config: _real(config, scale),
        make_config=lambda x: scaled_config(scale, seed).with_params(deadline_range=x),
        algorithms=wp_wop_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig25(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 25: WP vs WoP across the velocity range (synthetic)."""
    return run_figure(
        figure_id="fig25",
        title="WP vs WoP: worker velocity range (synthetic)",
        x_name="[v-,v+]",
        x_values=list(_VELOCITY_RANGES),
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(velocity_range=x),
        algorithms=wp_wop_algorithms(),
        x_formatter=_range_label,
        repeats=repeats,
    )


def fig26(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 26: WP vs WoP across the number of tasks (synthetic)."""
    counts = [max(int(round(m * scale)), 1) for m in _ENTITY_COUNTS_FULL]
    return run_figure(
        figure_id="fig26",
        title="WP vs WoP: number of tasks m (synthetic)",
        x_name="m",
        x_values=counts,
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(num_tasks=int(x)),
        algorithms=wp_wop_algorithms(),
        x_formatter=lambda m: f"{int(round(m / scale)):d}",
        repeats=repeats,
    )


def fig27(scale: float = 0.1, seed: int = 7, repeats: int = 1) -> FigureResult:
    """Fig. 27: WP vs WoP across the number of workers (synthetic)."""
    counts = [max(int(round(n * scale)), 1) for n in _ENTITY_COUNTS_FULL]
    return run_figure(
        figure_id="fig27",
        title="WP vs WoP: number of workers n (synthetic)",
        x_name="n",
        x_values=counts,
        make_workload=lambda x, config: _synthetic(config),
        make_config=lambda x: scaled_config(scale, seed).with_params(num_workers=int(x)),
        algorithms=wp_wop_algorithms(),
        x_formatter=lambda n: f"{int(round(n / scale)):d}",
        repeats=repeats,
    )


#: Registry: figure id -> (function, short description).
FIGURES = {
    "fig10": (fig10, "Prediction accuracy vs window size w"),
    "fig11": (fig11, "Quality/runtime vs budget B (WP vs WoP, synthetic)"),
    "fig12": (fig12, "Quality/runtime vs quality range (real)"),
    "fig13": (fig13, "Quality/runtime vs deadline range (real)"),
    "fig14": (fig14, "Quality/runtime vs velocity range (synthetic)"),
    "fig15": (fig15, "Quality/runtime vs number of tasks m (synthetic)"),
    "fig16": (fig16, "Quality/runtime vs number of workers n (synthetic)"),
    "fig18_19": (fig18_19, "Quality/runtime vs worker-task distributions"),
    "fig20": (fig20, "Quality/runtime vs number of time instances R"),
    "fig21": (fig21, "Quality/runtime vs unit price C"),
    "fig22": (fig22, "Quality vs window size w per worker distribution"),
    "fig23": (fig23, "WP vs WoP: quality range (real)"),
    "fig24": (fig24, "WP vs WoP: deadline range (real)"),
    "fig25": (fig25, "WP vs WoP: velocity range (synthetic)"),
    "fig26": (fig26, "WP vs WoP: number of tasks m (synthetic)"),
    "fig27": (fig27, "WP vs WoP: number of workers n (synthetic)"),
}


def get_figure(figure_id: str):
    """The ``(function, description)`` entry for ``figure_id``."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {figure_id!r}; expected one of: {known}") from None


def run_figure_by_id(
    figure_id: str, scale: float = 0.1, seed: int = 7, repeats: int = 1
) -> FigureResult:
    """Run one registered figure sweep (``repeats`` averages seeds)."""
    function, _ = get_figure(figure_id)
    return function(scale=scale, seed=seed, repeats=repeats)
