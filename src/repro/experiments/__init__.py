"""Experiment harness: regenerate every figure of the evaluation.

Each figure of Section VI (and the appendix) has a function in
:mod:`repro.experiments.figures` that sweeps the paper's parameter,
runs the configured algorithms through the simulation engine, and
returns a :class:`~repro.experiments.runner.FigureResult` whose rows
mirror the published series.  The ``scale`` argument shrinks entity
counts and budgets proportionally so the sweep fits a laptop/CI budget
(see EXPERIMENTS.md for the scales used in the recorded runs).
"""

from repro.experiments.config import ExperimentConfig, PAPER_DEFAULTS, scaled_config
from repro.experiments.runner import (
    AlgorithmSpec,
    FigureResult,
    SeriesPoint,
    run_figure,
    standard_algorithms,
    wp_wop_algorithms,
)
from repro.experiments.figures import FIGURES, get_figure, run_figure_by_id
from repro.experiments.reporting import (
    figure_from_json,
    figure_to_json,
    format_figure,
    format_figure_csv,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_DEFAULTS",
    "scaled_config",
    "AlgorithmSpec",
    "FigureResult",
    "SeriesPoint",
    "run_figure",
    "standard_algorithms",
    "wp_wop_algorithms",
    "FIGURES",
    "get_figure",
    "run_figure_by_id",
    "format_figure",
    "format_figure_csv",
    "figure_to_json",
    "figure_from_json",
]
