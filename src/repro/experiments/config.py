"""Experiment configuration: Table IV defaults and proportional scaling.

The paper's default setting is ``n = m = 5K`` entities over ``R = 15``
instances with budget ``B = 300`` — roughly 333 workers/tasks per
instance of which the budget affords a large but not complete fraction.
``scaled_config`` shrinks ``n``, ``m`` and ``B`` by the same factor so
the contention regime (and therefore every qualitative shape) is
preserved while the runtime drops quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workloads.base import WorkloadParams


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one experiment cell needs besides the algorithm.

    Attributes:
        params: workload parameters (Table IV).
        budget: per-instance budget ``B``.
        unit_cost: unit price ``C``.
        window: prediction sliding-window size ``w``.
        grid_gamma: prediction grid resolution.
        seed: workload + engine seed.
    """

    params: WorkloadParams
    budget: float = 300.0
    unit_cost: float = 10.0
    window: int = 3
    grid_gamma: int = 10
    seed: int = 7

    def with_params(self, **overrides) -> "ExperimentConfig":
        """A copy with workload-parameter fields replaced."""
        return replace(self, params=replace(self.params, **overrides))

    def with_fields(self, **overrides) -> "ExperimentConfig":
        """A copy with top-level fields replaced."""
        return replace(self, **overrides)


#: Table IV defaults (bold values; see DESIGN.md for unbolded choices).
PAPER_DEFAULTS = ExperimentConfig(params=WorkloadParams())


def scaled_config(scale: float = 1.0, seed: int = 7) -> ExperimentConfig:
    """Paper defaults with entity counts and budget scaled by ``scale``.

    ``scale=1.0`` is the full paper setting (n = m = 5000, B = 300);
    ``scale=0.1`` gives the CI-sized run recorded in EXPERIMENTS.md.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    base = PAPER_DEFAULTS
    params = replace(
        base.params,
        num_workers=max(int(round(base.params.num_workers * scale)), 1),
        num_tasks=max(int(round(base.params.num_tasks * scale)), 1),
    )
    return ExperimentConfig(
        params=params,
        budget=base.budget * scale,
        unit_cost=base.unit_cost,
        window=base.window,
        grid_gamma=base.grid_gamma,
        seed=seed,
    )
