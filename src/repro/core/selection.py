"""Best-pair selection among candidates (Eqs. 9 and 10).

Given the pruned candidate set ``S_p``, the greedy (and the D&C merge)
must pick one pair that (a) satisfies the budget constraint with
confidence above ``delta`` (Eq. 9) and (b) maximizes the probability of
having the largest quality increase among the candidates — the product
of pairwise superiority probabilities (Eq. 10).
"""

from __future__ import annotations

import numpy as np

from repro.model.pairs import PairPool
from repro.uncertainty.vector import phi_vec, prob_greater_vec

_VARIANCE_FLOOR = 1e-24
_EPS = 1e-9

#: Half-width (in standard-normal z units) of the uncertainty band
#: around the Eq. 9 threshold inside which ``phi_vec`` is evaluated
#: exactly.  phi_vec tracks the true normal CDF within 7.5e-8, and the
#: normal density at |z| <= 3.8 exceeds 2.9e-4, so a z-gap of 1e-2
#: moves the CDF by >= 2.9e-6 — orders of magnitude past the
#: approximation error.  Outside the band the comparison outcome is
#: therefore certain from z alone.
_PHI_BAND = 1e-2
#: |z| ceiling for the shortcut: past it the density is too flat for
#: the band argument, so extreme deltas fall back to exact evaluation.
_PHI_Z_LIMIT = 3.8

_phi_thresholds: dict[float, tuple[float, float] | None] = {}


def _phi_threshold(delta: float) -> tuple[float, float] | None:
    """Conservative z thresholds deciding ``phi_vec(z) > delta``.

    Returns ``(z_lo, z_hi)`` such that ``z > z_hi`` guarantees
    ``phi_vec(z) > delta`` and ``z < z_lo`` guarantees
    ``phi_vec(z) <= delta`` — for every float ``z``, including the
    approximation's sub-1.5e-7 wiggle — or ``None`` when ``delta`` is
    too extreme for the shortcut.  Found once per distinct ``delta``
    by bisection on ``phi_vec`` itself and cached.
    """
    cached = _phi_thresholds.get(delta)
    if cached is not None or delta in _phi_thresholds:
        return cached
    lo, hi = -_PHI_Z_LIMIT, _PHI_Z_LIMIT
    if not float(phi_vec(np.array([lo]))[0]) <= delta <= float(phi_vec(np.array([hi]))[0]):
        _phi_thresholds[delta] = None
        return None
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if float(phi_vec(np.array([mid]))[0]) > delta:
            hi = mid
        else:
            lo = mid
    result = (lo - _PHI_BAND, hi + _PHI_BAND)
    _phi_thresholds[delta] = result
    return result


def feasible_rows(
    pool: PairPool,
    rows: np.ndarray,
    budget_current_left: float,
    budget_future_left: float,
) -> np.ndarray:
    """Rows whose expected cost fits their budget share, in bulk.

    A *current* pair charges the remaining current-instance budget (the
    hard Definition 4 constraint); a pair involving predicted entities
    charges the remaining future share.  Computed as one masked
    comparison over the pool columns restricted to ``rows`` — the
    per-iteration feasibility scan of the greedy loop.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return rows
    cost = pool.cost_mean[rows]
    fits = np.where(
        pool.is_current[rows],
        cost <= budget_current_left + _EPS,
        cost <= budget_future_left + _EPS,
    )
    return rows[fits]


def budget_confident_rows(
    pool: PairPool,
    rows: np.ndarray,
    selected_lower_bound_sum: float,
    budget_max: float,
    delta: float,
) -> np.ndarray:
    """Rows passing the Eq. 9 budget-confidence test.

    A row survives when ``Pr{sum of selected lb costs + c_ij <= B_max}``
    exceeds ``delta``.  Deterministic costs degenerate to the exact
    feasibility indicator.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return rows
    headroom = budget_max - selected_lower_bound_sum - pool.cost_mean[rows]
    variance = pool.cost_var[rows]
    deterministic = variance <= _VARIANCE_FLOOR
    # Deterministic lanes degenerate to the exact indicator: for any
    # delta in [0, 1), prob {0, 1} > delta iff the headroom fits.
    keep = headroom >= 0.0
    stochastic = np.nonzero(~deterministic)[0]
    if stochastic.size:
        z = headroom[stochastic] / np.sqrt(variance[stochastic])
        thresholds = _phi_threshold(delta)
        if thresholds is None:
            keep[stochastic] = phi_vec(z) > delta
        else:
            # The comparison outcome is determined by z alone outside
            # a narrow band around the threshold; only band lanes pay
            # for the exact CDF.  Bit-identical to evaluating phi_vec
            # everywhere (see _phi_threshold).
            z_lo, z_hi = thresholds
            outcome = z > z_hi
            band = np.nonzero((z >= z_lo) & ~outcome)[0]
            if band.size:
                outcome[band] = phi_vec(z[band]) > delta
            keep[stochastic] = outcome
    return rows[keep]


#: Cost floor for the efficiency objective: a co-located pair (cost 0)
#: must not divide by zero, and a near-zero cost should not make a
#: mediocre pair look infinitely efficient.
_EFFICIENCY_COST_FLOOR = 1e-3


def select_best_row(pool: PairPool, rows: np.ndarray, objective: str = "probability") -> int:
    """The winning candidate among ``rows``.

    Objectives:

    - ``"probability"`` (the paper's Eq. 10): maximize
      ``prod_{a != i} Pr{q_i > q_a}`` (computed in log space; a zero
      factor sends the product to -inf, which is correct — such a pair
      is certainly beaten by someone).
    - ``"efficiency"``: maximize expected quality per unit expected
      cost.  Not in the paper; a budget-aware alternative that the
      deviation analysis in EXPERIMENTS.md motivates (quality-first
      selection burns budget on distant max-quality pairs).

    Ties are broken by lower expected cost, then by row index, so
    selection is deterministic.  Raises :class:`ValueError` on an
    empty candidate set or an unknown objective.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        raise ValueError("cannot select from an empty candidate set")
    if objective not in ("probability", "efficiency"):
        raise ValueError(f"unknown selection objective {objective!r}")
    if rows.size == 1:
        return int(rows[0])

    if objective == "efficiency":
        scores = pool.quality_mean[rows] / np.maximum(
            pool.cost_mean[rows], _EFFICIENCY_COST_FLOOR
        )
    else:
        q_mean = pool.quality_mean[rows]
        q_var = pool.quality_var[rows]
        probabilities = prob_greater_vec(
            q_mean[:, None], q_var[:, None], q_mean[None, :], q_var[None, :]
        )
        np.fill_diagonal(probabilities, 1.0)
        # log(0) lanes are meaningful (-inf kills the product); mask
        # them explicitly instead of paying for an errstate context.
        positive = probabilities > 0.0
        logs = np.full_like(probabilities, -np.inf)
        logs[positive] = np.log(probabilities[positive])
        scores = logs.sum(axis=1)

    order = np.lexsort((rows, pool.cost_mean[rows], -scores))
    return int(rows[order[0]])
