"""The MQA greedy algorithm (Fig. 5), vectorized.

Each iteration selects one best worker-and-task pair over current and
predicted entities:

1. feasibility: the pair's guaranteed lower-bound cost must fit in the
   remaining combined budget (Fig. 5 line 6); a *current* pair's exact
   cost must additionally fit in the remaining current-instance budget
   (the hard per-instance constraint of Definition 4);
2. budget confidence: Eq. 9 must exceed ``delta``;
3. dominance pruning (Lemma 4.1) shrinks the survivors to a skyline;
4. a cap + increase-probability pruning (Lemma 4.2) refine it;
5. the Eq. 10 winner is selected, and all pairs sharing its worker or
   task are removed (Fig. 5 line 13).

The loop ends when no feasible candidate remains; predicted pairs are
then dropped (line 14) via the shared finalization.

The selection loop is exposed as :func:`greedy_select` because the D&C
algorithm reuses it verbatim for its budget-constrained selection
(Fig. 9 lines 17-28).  :class:`GreedyConfig` exposes the pruning
switches for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.core.pruning import cap_candidates, dominance_skyline, probability_prune
from repro.core.selection import (
    budget_confident_rows,
    feasible_rows,
    select_best_row,
)
from repro.model.instance import ProblemInstance
from repro.model.pairs import PairPool


@dataclass(frozen=True)
class GreedyConfig:
    """Tuning knobs of :class:`MQAGreedy`.

    Attributes:
        delta: Eq. 9 confidence level; a pair must fit the combined
            budget with probability above ``delta``.
        candidate_cap: upper bound on the candidate-set size before the
            O(K^2) probabilistic stages (performance guard; the paper's
            candidate sets are small because dominance pruning is
            aggressive).
        use_dominance_pruning: apply Lemma 4.1 (ablation switch).
        use_probability_pruning: apply Lemma 4.2 (ablation switch).
        selection_objective: ``"probability"`` (the paper's Eq. 10) or
            ``"efficiency"`` (expected quality per unit cost; a
            budget-aware alternative, see EXPERIMENTS.md).
    """

    delta: float = 0.5
    candidate_cap: int = 64
    use_dominance_pruning: bool = True
    use_probability_pruning: bool = True
    selection_objective: str = "probability"

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta < 1.0:
            raise ValueError(f"delta must be in [0, 1), got {self.delta}")
        if self.candidate_cap < 1:
            raise ValueError(f"candidate_cap must be >= 1, got {self.candidate_cap}")
        if self.selection_objective not in ("probability", "efficiency"):
            raise ValueError(
                f"unknown selection objective {self.selection_objective!r}"
            )


def greedy_select(
    pool: PairPool,
    rows: np.ndarray,
    budget_current: float,
    budget_max: float,
    config: GreedyConfig,
) -> list[int]:
    """Iterative best-pair selection restricted to ``rows``.

    Implements the selection loop of Fig. 5 (and, when ``rows`` is the
    merged D&C result set, of ``MQA_Budget_Constrained_Selection`` in
    Fig. 9).  Returns the selected pool rows in selection order; the
    selection never assigns a worker or task twice.

    Budget accounting: a *current* pair's exact cost charges the
    current-instance budget (the hard Definition 4 constraint); a pair
    involving predicted entities charges its *expected* cost against
    the future share ``budget_max - budget_current`` (its guaranteed
    lower bound is often near zero, which would let reservations run
    unbounded), so
    reserving workers for predicted pairs can never starve the current
    instance's budget.  Eq. 9 is evaluated against the combined
    ``budget_max``, as in the paper.
    """
    num_pairs = len(pool)
    if num_pairs == 0 or len(rows) == 0:
        return []

    alive = np.zeros(num_pairs, dtype=bool)
    alive[np.asarray(rows, dtype=np.int64)] = True
    # One global sort by cost upper bound; per-iteration skylines
    # filter this order instead of re-sorting.
    cost_ub_order = np.argsort(pool.cost_ub, kind="stable")

    budget_future = max(budget_max - budget_current, 0.0)
    spent_current = 0.0
    spent_future = 0.0
    spent_lower_bound = 0.0
    selected: list[int] = []

    while True:
        alive_rows = np.nonzero(alive)[0]
        # Hard per-instance constraint for materializable pairs;
        # future-share constraint for predicted pairs — one bulk scan
        # over the surviving rows only.
        candidate_rows = feasible_rows(
            pool,
            alive_rows,
            budget_current - spent_current,
            budget_future - spent_future,
        )
        if candidate_rows.size == 0:
            break

        candidate_rows = budget_confident_rows(
            pool, candidate_rows, spent_lower_bound, budget_max, config.delta
        )
        if candidate_rows.size == 0:
            break

        if config.use_dominance_pruning:
            confident = np.zeros(num_pairs, dtype=bool)
            confident[candidate_rows] = True
            ordered = cost_ub_order[confident[cost_ub_order]]
            candidate_rows = dominance_skyline(
                pool, ordered, presorted_by_cost_ub=np.arange(ordered.size)
            )
        candidate_rows = cap_candidates(pool, candidate_rows, config.candidate_cap)
        if config.use_probability_pruning:
            candidate_rows = probability_prune(pool, candidate_rows)

        best = select_best_row(pool, candidate_rows, config.selection_objective)
        selected.append(best)
        spent_lower_bound += float(pool.cost_lb[best])
        if pool.is_current[best]:
            spent_current += float(pool.cost_mean[best])
        else:
            spent_future += float(pool.cost_mean[best])
        worker = pool.worker_idx[best]
        task = pool.task_idx[best]
        alive &= (pool.worker_idx != worker) & (pool.task_idx != task)

    return selected


class MQAGreedy(Assigner):
    """Procedure ``MQA_Greedy`` of the paper (vectorized)."""

    name = "greedy"

    def __init__(self, config: GreedyConfig | None = None) -> None:
        self._config = config if config is not None else GreedyConfig()

    @property
    def config(self) -> GreedyConfig:
        return self._config

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        selected = greedy_select(
            pool,
            np.arange(len(pool)),
            budget_current,
            budget_current + budget_future,
            self._config,
        )
        return self._result_from_rows(problem, selected, budget_current)
