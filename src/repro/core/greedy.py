"""The MQA greedy algorithm (Fig. 5), vectorized.

Each iteration selects one best worker-and-task pair over current and
predicted entities:

1. feasibility: the pair's guaranteed lower-bound cost must fit in the
   remaining combined budget (Fig. 5 line 6); a *current* pair's exact
   cost must additionally fit in the remaining current-instance budget
   (the hard per-instance constraint of Definition 4);
2. budget confidence: Eq. 9 must exceed ``delta``;
3. dominance pruning (Lemma 4.1) shrinks the survivors to a skyline;
4. a cap + increase-probability pruning (Lemma 4.2) refine it;
5. the Eq. 10 winner is selected, and all pairs sharing its worker or
   task are removed (Fig. 5 line 13).

The loop ends when no feasible candidate remains; predicted pairs are
then dropped (line 14) via the shared finalization.

The selection loop is exposed as :func:`greedy_select` because the D&C
algorithm reuses it verbatim for its budget-constrained selection
(Fig. 9 lines 17-28).  :class:`GreedyConfig` exposes the pruning
switches for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.core.pruning import probability_prune
from repro.core.selection import (
    budget_confident_rows,
    feasible_rows,
    select_best_row,
)
from repro.core.triplet_select import triplet_greedy_select
from repro.model.instance import ProblemInstance
from repro.model.pairs import PairPool


#: Default row-count floor for the amortized engine; below it the
#: rescan loop's smaller setup cost wins.  Exposed as the
#: ``triplet_min_rows`` config knob.
_TRIPLET_ENGINE_MIN_ROWS = 2048


@dataclass(frozen=True)
class GreedyConfig:
    """Tuning knobs of :class:`MQAGreedy`.

    Attributes:
        delta: Eq. 9 confidence level; a pair must fit the combined
            budget with probability above ``delta``.
        candidate_cap: upper bound on the candidate-set size before the
            O(K^2) probabilistic stages (performance guard; the paper's
            candidate sets are small because dominance pruning is
            aggressive).
        use_dominance_pruning: apply Lemma 4.1 (ablation switch).
        use_probability_pruning: apply Lemma 4.2 (ablation switch).
        selection_objective: ``"probability"`` (the paper's Eq. 10) or
            ``"efficiency"`` (expected quality per unit cost; a
            budget-aware alternative, see EXPERIMENTS.md).
        triplet_min_rows: row-count floor at which ``greedy_select``
            dispatches to the amortized triplet engine (and the
            persistent :class:`~repro.core.triplet_select.
            SelectionState` warm path) instead of the rescan loop.
            Both sides produce identical selections, so this is purely
            a performance crossover; lower it to force the engine on
            small pools (tests), raise it to prefer the rescan loop.
    """

    delta: float = 0.5
    candidate_cap: int = 64
    use_dominance_pruning: bool = True
    use_probability_pruning: bool = True
    selection_objective: str = "probability"
    triplet_min_rows: int = _TRIPLET_ENGINE_MIN_ROWS

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta < 1.0:
            raise ValueError(f"delta must be in [0, 1), got {self.delta}")
        if self.candidate_cap < 1:
            raise ValueError(f"candidate_cap must be >= 1, got {self.candidate_cap}")
        if self.selection_objective not in ("probability", "efficiency"):
            raise ValueError(
                f"unknown selection objective {self.selection_objective!r}"
            )
        if self.triplet_min_rows < 1:
            raise ValueError(
                f"triplet_min_rows must be >= 1, got {self.triplet_min_rows}"
            )


def greedy_select(
    pool: PairPool,
    rows: np.ndarray,
    budget_current: float,
    budget_max: float,
    config: GreedyConfig,
    selection_state=None,
) -> list[int]:
    """Iterative best-pair selection restricted to ``rows``.

    Implements the selection loop of Fig. 5 (and, when ``rows`` is the
    merged D&C result set, of ``MQA_Budget_Constrained_Selection`` in
    Fig. 9).  Returns the selected pool rows in selection order; the
    selection never assigns a worker or task twice.

    Budget accounting: a *current* pair's exact cost charges the
    current-instance budget (the hard Definition 4 constraint); a pair
    involving predicted entities charges its *expected* cost against
    the future share ``budget_max - budget_current`` (its guaranteed
    lower bound is often near zero, which would let reservations run
    unbounded), so
    reserving workers for predicted pairs can never starve the current
    instance's budget.  Eq. 9 is evaluated against the combined
    ``budget_max``, as in the paper.

    The selection is sparse-native (CSR-style over pool triplets) and
    never materializes an ``n x m`` matrix.  Large row sets run on the
    amortized engine of :mod:`repro.core.triplet_select` — sorted pool
    orders, worker/task occupancy groups, monotone budget sweeps —
    while small sets (and deltas outside the z-threshold shortcut) use
    the per-iteration rescan loop below.  Both produce identical
    selections; the differential suite cross-validates them.
    """
    num_pairs = len(pool)
    if num_pairs == 0 or len(rows) == 0:
        return []

    rows = np.asarray(rows, dtype=np.int64)
    if rows.size > 1 and not bool((rows[1:] > rows[:-1]).all()):
        # Normalize only when needed: the streaming engines pass the
        # full-pool arange every round, and np.unique's sort is the
        # single largest shared cost of a steady-state selection.
        rows = np.unique(rows)
    if selection_state is not None:
        # Persistent warm path: bit-identical to the cold dispatch
        # below, or None when the state declines (subset row sets,
        # pools under the engine floor, no z-threshold shortcut).
        selected = selection_state.select(
            pool, rows, budget_current, budget_max, config
        )
        if selected is not None:
            return selected
    if rows.size >= config.triplet_min_rows:
        selected = triplet_greedy_select(pool, rows, budget_current, budget_max, config)
        if selected is not None:
            return selected
    return _greedy_select_rescan(pool, rows, budget_current, budget_max, config)


def _greedy_select_rescan(
    pool: PairPool,
    rows: np.ndarray,
    budget_current: float,
    budget_max: float,
    config: GreedyConfig,
) -> list[int]:
    """Reference selection loop: rescans the survivors every iteration.

    ``rows`` must be unique and ascending.  Kept both as the
    small-problem fast path and as the differential baseline for the
    amortized engine.
    """
    num_pairs = len(pool)
    # Survivors sorted by (cost_ub, row) once; filtering preserves the
    # order, so the dominance skyline never re-sorts.
    alive = pool.order_by_cost_ub(rows)
    # Global candidate-cap order over the same rows; per-iteration
    # caps reduce to one membership gather along it.
    weight_order = pool.order_by_weight(rows)
    member = np.zeros(num_pairs, dtype=bool)

    if config.use_dominance_pruning:
        # Fixed-position skyline scaffolding: positions in the initial
        # cost_ub order never move, so the Lemma 4.1 prefix boundary
        # (first position with cost_ub >= cost_lb[j]) is computed once;
        # per iteration only a masked prefix-max remains.  Masking dead
        # positions to -inf makes the prefix max range over exactly the
        # iteration's candidate set, so the pruned set is identical to
        # dominance_skyline over that set.
        position_of = np.empty(num_pairs, dtype=np.int64)
        position_of[alive] = np.arange(alive.size)
        cost_ub_sorted = pool.cost_ub[alive]
        quality_lb_sorted = pool.quality_lb[alive]
        quality_ub_sorted = pool.quality_ub[alive]
        cut = np.searchsorted(cost_ub_sorted, pool.cost_lb[alive], side="left")
        cut_of = np.empty(num_pairs, dtype=np.int64)
        cut_of[alive] = cut
        masked_lb = np.full(alive.size, -np.inf)

    budget_future = max(budget_max - budget_current, 0.0)
    spent_current = 0.0
    spent_future = 0.0
    spent_lower_bound = 0.0
    selected: list[int] = []

    while alive.size:
        # Hard per-instance constraint for materializable pairs;
        # future-share constraint for predicted pairs.  Both filters
        # are monotone in the spend, so failures are permanent and the
        # survivor set only shrinks.
        alive = feasible_rows(
            pool,
            alive,
            budget_current - spent_current,
            budget_future - spent_future,
        )
        if alive.size == 0:
            break
        alive = budget_confident_rows(
            pool, alive, spent_lower_bound, budget_max, config.delta
        )
        if alive.size == 0:
            break

        candidate_rows = alive
        if config.use_dominance_pruning:
            positions = position_of[alive]
            masked_lb[positions] = quality_lb_sorted[positions]
            prefix_max = np.maximum.accumulate(masked_lb)
            cuts = cut_of[alive]
            best_before = np.where(cuts > 0, prefix_max[np.maximum(cuts - 1, 0)], -np.inf)
            dominated = best_before > quality_ub_sorted[positions]
            masked_lb[positions] = -np.inf
            candidate_rows = alive[~dominated]
        # Canonical candidate order: the Eq. 10 scores sum float
        # probabilities in array order, so the order fed to the
        # selection stages is part of the contract — ascending rows
        # when the cap is loose, quality-weight order when it binds.
        if candidate_rows.size > config.candidate_cap:
            member[candidate_rows] = True
            capped = weight_order[member[weight_order]][: config.candidate_cap]
            member[candidate_rows] = False
            candidate_rows = capped
        else:
            candidate_rows = np.sort(candidate_rows)
        if config.use_probability_pruning:
            candidate_rows = probability_prune(pool, candidate_rows)

        best = select_best_row(pool, candidate_rows, config.selection_objective)
        selected.append(best)
        spent_lower_bound += float(pool.cost_lb[best])
        if pool.is_current[best]:
            spent_current += float(pool.cost_mean[best])
        else:
            spent_future += float(pool.cost_mean[best])
        # Occupancy cut: drop every pair sharing the winner's worker or
        # task (one pass over the survivors, not the pool).
        keep = (pool.worker_idx[alive] != pool.worker_idx[best]) & (
            pool.task_idx[alive] != pool.task_idx[best]
        )
        alive = alive[keep]

    return selected


class MQAGreedy(Assigner):
    """Procedure ``MQA_Greedy`` of the paper (vectorized)."""

    name = "greedy"

    def __init__(self, config: GreedyConfig | None = None) -> None:
        self._config = config if config is not None else GreedyConfig()

    @property
    def config(self) -> GreedyConfig:
        return self._config

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        selected = greedy_select(
            pool,
            np.arange(len(pool)),
            budget_current,
            budget_current + budget_future,
            self._config,
            selection_state=self.take_round_selection_state(),
        )
        return self._result_from_rows(problem, selected, budget_current)
