"""The Appendix C cost model for choosing the D&C fan-out ``g``.

The divide-and-conquer cost is modeled as the sum of four terms:

- ``F_D`` — decomposing the problem: ``m' n' + (m' g + m') log_g(m')``;
- ``F_C`` — recursively conquering: ``2 (m' - 1) deg_t^2 / (g - 1)``;
- ``F_M`` — merging with conflict resolution:
  ``2 deg_t^2 (m' log(m') / log(g) - g (m' - 1) / (g - 1))``;
- ``F_B`` — budget adjustment: ``2 g^2 (m'^2 - 1) / (g^2 - 1)``.

``m'`` is the number of (current + predicted) tasks, ``n'`` the number
of workers, and ``deg_t`` the average number of valid pairs per task.
The paper takes the derivative (Eq. 13) and scans integers upward from
``g = 2`` until it turns positive; :func:`best_subproblem_count`
evaluates the full cost at every integer in range and takes the argmin,
which is equivalent for this unimodal-in-practice cost and robust to
the derivative's poles.  Both forms are exported and cross-checked in
tests.
"""

from __future__ import annotations

import math

_MIN_G = 2


def dc_cost(g: int, num_tasks: int, num_workers: int, avg_pairs_per_task: float) -> float:
    """``cost_{D&C}(g)`` (Eq. 12)."""
    if g < _MIN_G:
        raise ValueError(f"g must be >= {_MIN_G}, got {g}")
    if num_tasks < 2:
        raise ValueError("the cost model needs at least two tasks to divide")
    m, n = float(num_tasks), float(num_workers)
    deg_sq = avg_pairs_per_task * avg_pairs_per_task
    log_g_m = math.log(m) / math.log(g)

    decompose = m * n + (m * g + m) * log_g_m
    conquer = 2.0 * (m - 1.0) * deg_sq / (g - 1.0)
    merge = 2.0 * deg_sq * (m * math.log(m) / math.log(g) - g * (m - 1.0) / (g - 1.0))
    budget = 2.0 * g * g * (m * m - 1.0) / (g * g - 1.0)
    return decompose + conquer + merge + budget


def dc_cost_derivative(
    g: float, num_tasks: int, num_workers: int, avg_pairs_per_task: float
) -> float:
    """``d cost_{D&C} / d g`` as printed in Eq. 13.

    The paper scans ``g = 2, 3, ...`` until this turns positive.
    """
    if g < _MIN_G:
        raise ValueError(f"g must be >= {_MIN_G}, got {g}")
    m = float(num_tasks)
    deg_sq = avg_pairs_per_task * avg_pairs_per_task
    log_g = math.log(g)
    first = m * math.log(m) * (g * log_g - g - 1.0 - 2.0 * deg_sq) / (g * log_g * log_g)
    second = 4.0 * g * (m * m - 1.0) / ((g * g - 1.0) ** 2)
    return first - second


def best_subproblem_count(
    num_tasks: int,
    num_workers: int,
    avg_pairs_per_task: float,
    max_g: int = 16,
) -> int:
    """The integer ``g`` minimizing :func:`dc_cost`.

    Scans ``g`` in ``[2, min(max_g, num_tasks)]``; with fewer than two
    tasks no division happens and 2 is returned as a harmless default.
    """
    if num_tasks < 2:
        return _MIN_G
    upper = max(_MIN_G, min(max_g, num_tasks))
    best_g = _MIN_G
    best_cost = math.inf
    for g in range(_MIN_G, upper + 1):
        cost = dc_cost(g, num_tasks, num_workers, avg_pairs_per_task)
        if cost < best_cost:
            best_cost = cost
            best_g = g
    return best_g


def best_subproblem_count_derivative(
    num_tasks: int,
    num_workers: int,
    avg_pairs_per_task: float,
    max_g: int = 16,
) -> int:
    """The paper's derivative scan: first ``g`` where Eq. 13 >= 0.

    Returns ``max_g`` (clamped to the task count) when the derivative
    stays negative throughout the scan.
    """
    if num_tasks < 2:
        return _MIN_G
    upper = max(_MIN_G, min(max_g, num_tasks))
    for g in range(_MIN_G, upper + 1):
        if dc_cost_derivative(g, num_tasks, num_workers, avg_pairs_per_task) >= 0.0:
            return g
    return upper
