"""Single-instance optimal-matching baseline.

``HungarianAssigner`` maximizes the *quality* of the current instance
with an optimal bipartite matching (Kuhn-Munkres over current pairs),
then trims to the budget.  This is the "locally optimal, prediction-
blind" strategy the introduction argues against: optimal at each
instance in isolation, yet beatable globally by the prediction-aware
heuristics.  It doubles as an upper-quality reference when the budget
is loose.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.matching.hungarian import hungarian_max_weight
from repro.model.instance import ProblemInstance


class HungarianAssigner(Assigner):
    """Budget-trimmed optimal quality matching over current pairs."""

    name = "hungarian"

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        current_rows = np.nonzero(pool.is_current)[0]
        if current_rows.size == 0:
            return self._result_from_rows(problem, [], budget_current)

        workers = np.unique(pool.worker_idx[current_rows])
        tasks = np.unique(pool.task_idx[current_rows])
        worker_pos = {int(w): i for i, w in enumerate(workers)}
        task_pos = {int(t): j for j, t in enumerate(tasks)}

        weights = np.full((workers.size, tasks.size), -np.inf)
        row_of_cell: dict[tuple[int, int], int] = {}
        for row in current_rows:
            cell = (
                worker_pos[int(pool.worker_idx[row])],
                task_pos[int(pool.task_idx[row])],
            )
            # Duplicate (worker, task) cells cannot occur: the pool is
            # built from dense validity masks with one entry per cell.
            weights[cell] = pool.quality_mean[row]
            row_of_cell[cell] = int(row)

        matching, _ = hungarian_max_weight(weights, allow_unmatched=True)
        selected = [row_of_cell[cell] for cell in matching]
        # Budget enforcement happens in the shared finalization (trim
        # lowest-quality pairs until the realized cost fits).
        return self._result_from_rows(problem, selected, budget_current)
