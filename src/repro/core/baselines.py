"""Single-instance optimal-matching baseline.

``HungarianAssigner`` maximizes the *quality* of the current instance
with an optimal bipartite matching (Kuhn-Munkres over current pairs),
then trims to the budget.  This is the "locally optimal, prediction-
blind" strategy the introduction argues against: optimal at each
instance in isolation, yet beatable globally by the prediction-aware
heuristics.  It doubles as an upper-quality reference when the budget
is loose.

When a streaming engine runs with warm selection, the assigner also
persists the solver's dual potentials across rounds keyed by worker
and task ids (:class:`~repro.matching.hungarian.HungarianWarmStart`),
warm-starting the next round's shortest-augmenting-path searches.
Results stay bit-identical to cold solves — a warm run is only
accepted when its uniqueness certificate holds, otherwise the
canonical cold solve decides (see :mod:`repro.matching.hungarian`).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.matching.hungarian import (
    HungarianWarmStart,
    hungarian_max_weight,
    hungarian_max_weight_warm,
)
from repro.model.instance import ProblemInstance


class HungarianAssigner(Assigner):
    """Budget-trimmed optimal quality matching over current pairs."""

    name = "hungarian"

    def __init__(self) -> None:
        self._warm = HungarianWarmStart()

    @property
    def warm_stats(self) -> HungarianWarmStart:
        """The persisted-dual store (counters double as diagnostics)."""
        return self._warm

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        warm_enabled = self.take_round_selection_state() is not None
        dense = problem.current_dense
        if dense.row_index.size == 0:
            return self._result_from_rows(problem, [], budget_current)

        if warm_enabled:
            # Dense axes are pool indices; dual persistence needs the
            # stable entity ids behind them.
            worker_ids = [problem.workers[i].id for i in dense.worker_ids]
            task_ids = [problem.tasks[j].id for j in dense.task_ids]
            matching, _, _ = hungarian_max_weight_warm(
                dense.quality,
                worker_ids,
                task_ids,
                self._warm,
                cost=dense.assignment_cost,
            )
        else:
            matching, _ = hungarian_max_weight(
                dense.quality, allow_unmatched=True, cost=dense.assignment_cost
            )
        selected = dense.rows_of_cells(matching)
        # Budget enforcement happens in the shared finalization (trim
        # lowest-quality pairs until the realized cost fits).
        return self._result_from_rows(problem, selected, budget_current)
