"""Single-instance optimal-matching baseline.

``HungarianAssigner`` maximizes the *quality* of the current instance
with an optimal bipartite matching (Kuhn-Munkres over current pairs),
then trims to the budget.  This is the "locally optimal, prediction-
blind" strategy the introduction argues against: optimal at each
instance in isolation, yet beatable globally by the prediction-aware
heuristics.  It doubles as an upper-quality reference when the budget
is loose.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.matching.hungarian import hungarian_max_weight
from repro.model.instance import ProblemInstance


class HungarianAssigner(Assigner):
    """Budget-trimmed optimal quality matching over current pairs."""

    name = "hungarian"

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        dense = problem.current_dense
        if dense.row_index.size == 0:
            return self._result_from_rows(problem, [], budget_current)

        matching, _ = hungarian_max_weight(
            dense.quality, allow_unmatched=True, cost=dense.assignment_cost
        )
        selected = dense.rows_of_cells(matching)
        # Budget enforcement happens in the shared finalization (trim
        # lowest-quality pairs until the realized cost fits).
        return self._result_from_rows(problem, selected, budget_current)
