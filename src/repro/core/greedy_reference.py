"""Object-level reference implementation of ``MQA_Greedy``.

This follows Fig. 5 of the paper line by line over
:class:`~repro.model.pairs.CandidatePair`-style scalar values, with no
numpy in the selection loop.  It exists to pin down the semantics: the
test suite asserts that the vectorized :class:`~repro.core.greedy.
MQAGreedy` selects the same pairs on randomized instances.  It is
O(iterations x pairs^2) and intended for small problems only.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.core.greedy import GreedyConfig
from repro.model.instance import ProblemInstance
from repro.uncertainty.comparison import prob_greater, prob_less_or_equal, prob_within_budget
from repro.uncertainty.values import UncertainValue

_EPS = 1e-9


class ReferenceGreedy(Assigner):
    """Unoptimized ``MQA_Greedy`` for cross-validation."""

    name = "greedy-reference"

    def __init__(self, config: GreedyConfig | None = None) -> None:
        self._config = config if config is not None else GreedyConfig()

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        config = self._config
        budget_max = budget_current + budget_future

        costs = [pool.cost_value(r) for r in range(len(pool))]
        qualities = [pool.quality_value(r) for r in range(len(pool))]

        alive = set(range(len(pool)))
        budget_future = max(budget_max - budget_current, 0.0)
        spent_current = 0.0
        spent_future = 0.0
        spent_lower_bound = 0.0
        selected: list[int] = []

        while True:
            feasible = [
                r
                for r in alive
                if self._is_feasible(
                    pool, costs[r], r, spent_current, spent_future,
                    budget_current, budget_future,
                )
            ]
            feasible = [
                r
                for r in feasible
                if prob_within_budget(spent_lower_bound, costs[r], budget_max) > config.delta
            ]
            if not feasible:
                break

            candidates: list[int] = []
            if config.use_dominance_pruning:
                for row in feasible:
                    if not self._dominated(costs, qualities, row, feasible):
                        candidates.append(row)
            else:
                candidates = list(feasible)

            candidates = self._cap(pool, candidates, config.candidate_cap)
            if config.use_probability_pruning:
                candidates = [
                    r
                    for r in candidates
                    if not self._probably_worse(costs, qualities, r, candidates)
                ]

            best = self._select(pool, qualities, candidates)
            selected.append(best)
            spent_lower_bound += costs[best].lower
            if pool.is_current[best]:
                spent_current += costs[best].mean
            else:
                spent_future += costs[best].mean
            worker = pool.worker_idx[best]
            task = pool.task_idx[best]
            alive = {
                r
                for r in alive
                if pool.worker_idx[r] != worker and pool.task_idx[r] != task
            }

        return self._result_from_rows(problem, selected, budget_current)

    @staticmethod
    def _is_feasible(pool, cost, row, spent_current, spent_future, budget_current, budget_future):
        if pool.is_current[row]:
            return cost.mean <= budget_current - spent_current + _EPS
        return cost.mean <= budget_future - spent_future + _EPS

    @staticmethod
    def _dominated(costs, qualities, row, others) -> bool:
        """Lemma 4.1 against every other candidate."""
        for other in others:
            if other == row:
                continue
            if costs[other].upper < costs[row].lower and (
                qualities[other].lower > qualities[row].upper
            ):
                return True
        return False

    @staticmethod
    def _probably_worse(costs, qualities, row, others) -> bool:
        """Lemma 4.2 (intent-corrected; see core.pruning) against others."""
        for other in others:
            if other == row:
                continue
            quality_better = prob_greater(qualities[row], qualities[other])
            cost_better = prob_less_or_equal(costs[row], costs[other])
            if quality_better < 0.5 and cost_better < 0.5:
                return True
        return False

    @staticmethod
    def _cap(pool, candidates: list[int], cap: int) -> list[int]:
        if len(candidates) <= cap:
            return candidates
        ranked = sorted(
            candidates,
            key=lambda r: (-pool.quality_mean[r], pool.cost_mean[r], r),
        )
        return ranked[:cap]

    @staticmethod
    def _select(pool, qualities: list[UncertainValue], candidates: list[int]) -> int:
        """Eq. 10: maximize the product of superiority probabilities."""
        if not candidates:
            raise ValueError("cannot select from an empty candidate set")
        scores: dict[int, float] = {}
        for row in candidates:
            log_score = 0.0
            for other in candidates:
                if other == row:
                    continue
                probability = prob_greater(qualities[row], qualities[other])
                log_score += math.log(probability) if probability > 0.0 else -math.inf
            scores[row] = log_score
        return min(candidates, key=lambda r: (-scores[r], pool.cost_mean[r], r))
