"""Core MQA assignment algorithms (Sections IV-V of the paper).

- :class:`MQAGreedy` — Fig. 5: iterative best-pair selection with
  dominance pruning (Lemma 4.1), increase-probability pruning
  (Lemma 4.2), the budget-confidence filter (Eq. 9) and the
  highest-probability selection rule (Eq. 10);
- :class:`MQADivideConquer` — Figs. 7-9: anchor-task decomposition,
  recursive conquer, conflict-resolving merge, budget-constrained
  selection, with the fan-out ``g`` chosen by the Appendix C cost
  model;
- :class:`RandomAssigner` — the RANDOM baseline of Section VI;
- :class:`HungarianAssigner` — single-instance quality-maximizing
  matching (a "local optimal, no budget reasoning" comparator);
- :func:`exact_assignment` — brute-force optimum for small instances
  (ground truth in tests).

All assigners share the :class:`Assigner` interface and the budget
semantics documented in :mod:`repro.core.base`.
"""

from repro.core.base import Assigner, AssignmentResult, finalize_selection
from repro.core.greedy import MQAGreedy, GreedyConfig
from repro.core.greedy_reference import ReferenceGreedy
from repro.core.divide_conquer import MQADivideConquer, DivideConquerConfig
from repro.core.random_assign import RandomAssigner
from repro.core.baselines import HungarianAssigner
from repro.core.exact import exact_assignment
from repro.core.cost_model import dc_cost, best_subproblem_count

__all__ = [
    "Assigner",
    "AssignmentResult",
    "finalize_selection",
    "MQAGreedy",
    "GreedyConfig",
    "ReferenceGreedy",
    "MQADivideConquer",
    "DivideConquerConfig",
    "RandomAssigner",
    "HungarianAssigner",
    "exact_assignment",
    "dc_cost",
    "best_subproblem_count",
]
