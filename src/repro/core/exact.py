"""Exact MQA optimum for small single instances (ground truth).

The MQA problem is NP-hard (Lemma 2.1), so no polynomial exact solver
exists; this branch-and-bound enumerates worker-disjoint, task-disjoint
subsets of *current* pairs within the budget and maximizes the quality
sum.  It is exponential and intended for instances with at most a few
dozen pairs — the test suite uses it to bound the heuristics'
optimality gap, and the quickstart uses it as the clairvoyant
single-instance reference.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import ProblemInstance

_EPS = 1e-9


def exact_assignment(
    problem: ProblemInstance,
    budget: float,
    max_pairs: int = 64,
) -> tuple[list[int], float]:
    """Optimal current-pair selection under the budget.

    Args:
        problem: the instance (predicted pairs, if any, are ignored —
            the exact optimum is defined over materializable pairs).
        budget: the per-instance budget ``B``.
        max_pairs: safety limit; raises when the instance has more
            current pairs than this (the search is exponential).

    Returns:
        ``(rows, total_quality)`` — pool row indices of one optimal
        selection and its quality score.
    """
    pool = problem.pool
    rows = np.nonzero(pool.is_current)[0]
    if rows.size > max_pairs:
        raise ValueError(
            f"{rows.size} current pairs exceed the exact-search limit {max_pairs}"
        )
    if rows.size == 0:
        return [], 0.0

    # Order by quality descending so the optimistic bound tightens fast.
    rows = rows[np.lexsort((rows, -pool.quality_mean[rows]))]
    qualities = pool.quality_mean[rows]
    costs = pool.cost_mean[rows]
    workers = pool.worker_idx[rows]
    tasks = pool.task_idx[rows]
    # Suffix sums of quality: an upper bound on what the remaining
    # pairs could still add (ignoring conflicts and budget).
    suffix_quality = np.concatenate([np.cumsum(qualities[::-1])[::-1], [0.0]])

    best_quality = -1.0
    best_selection: list[int] = []

    def search(index: int, used_workers: frozenset, used_tasks: frozenset,
               spent: float, quality: float, chosen: list[int]) -> None:
        nonlocal best_quality, best_selection
        if quality > best_quality:
            best_quality = quality
            best_selection = list(chosen)
        if index == len(rows):
            return
        if quality + suffix_quality[index] <= best_quality + _EPS:
            return  # optimistic bound cannot beat the incumbent

        # Branch 1: take pair `index` if feasible.
        worker, task = int(workers[index]), int(tasks[index])
        cost = float(costs[index])
        if (
            worker not in used_workers
            and task not in used_tasks
            and spent + cost <= budget + _EPS
        ):
            chosen.append(index)
            search(
                index + 1,
                used_workers | {worker},
                used_tasks | {task},
                spent + cost,
                quality + float(qualities[index]),
                chosen,
            )
            chosen.pop()
        # Branch 2: skip it.
        search(index + 1, used_workers, used_tasks, spent, quality, chosen)

    search(0, frozenset(), frozenset(), 0.0, 0.0, [])
    return sorted(int(rows[i]) for i in best_selection), float(best_quality)
