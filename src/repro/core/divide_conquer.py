"""The MQA divide-and-conquer algorithm (Section V, Figs. 7-9).

``MQA_D&C`` recursively partitions the tasks into ``g`` subproblems
(``g`` chosen by the Appendix C cost model), solves single-task leaves
with the greedy best-worker selection, merges sibling solutions while
resolving worker conflicts (Fig. 8), and finally runs the budget-
constrained selection (Fig. 9, lines 17-28) when the merged result may
overshoot the budget.

Decomposition (Fig. 7) sweeps anchors by longitude: the unclaimed task
with the smallest x (ties by smallest y; predicted tasks use their
sample center, the "mean of the longitude") seeds each subgroup, which
is filled with its nearest unclaimed tasks.

Merging (Fig. 8) resolves each conflicting worker — one assigned to
different tasks in different subproblems — by keeping the better pair
(Lemmas 4.1/4.2 + Eq. 10 over the two-candidate set) and reassigning
the loser's task to its best still-unused worker.  Budget enforcement
is deferred to the final budget-constrained selection, which reuses
the greedy loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.core.cost_model import best_subproblem_count
from repro.core.greedy import GreedyConfig, greedy_select
from repro.core.pruning import cap_candidates, dominance_skyline, probability_prune
from repro.core.selection import select_best_row
from repro.model.instance import ProblemInstance
from repro.model.pairs import PairPool


@dataclass(frozen=True)
class DivideConquerConfig:
    """Tuning knobs of :class:`MQADivideConquer`.

    Attributes:
        delta: Eq. 9 confidence level for the final selection.
        candidate_cap: candidate-set cap shared with the greedy stages.
        fixed_g: bypass the cost model with a fixed fan-out (ablation
            bench); ``None`` (default) uses Appendix C.
        max_g: upper limit of the cost-model scan.
        selection_objective: see :class:`~repro.core.greedy.GreedyConfig`.
    """

    delta: float = 0.5
    candidate_cap: int = 64
    fixed_g: int | None = None
    max_g: int = 16
    selection_objective: str = "probability"

    def __post_init__(self) -> None:
        if self.fixed_g is not None and self.fixed_g < 2:
            raise ValueError(f"fixed_g must be >= 2, got {self.fixed_g}")
        if self.max_g < 2:
            raise ValueError(f"max_g must be >= 2, got {self.max_g}")
        if self.selection_objective not in ("probability", "efficiency"):
            raise ValueError(
                f"unknown selection objective {self.selection_objective!r}"
            )

    def greedy_config(self) -> GreedyConfig:
        """The equivalent knobs for the shared greedy machinery."""
        return GreedyConfig(
            delta=self.delta,
            candidate_cap=self.candidate_cap,
            selection_objective=self.selection_objective,
        )


class MQADivideConquer(Assigner):
    """Procedure ``MQA_D&C`` of the paper."""

    name = "dc"

    def __init__(self, config: DivideConquerConfig | None = None) -> None:
        self._config = config if config is not None else DivideConquerConfig()

    @property
    def config(self) -> DivideConquerConfig:
        return self._config

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        if len(pool) == 0:
            return self._result_from_rows(problem, [], budget_current)

        budget_max = budget_current + budget_future
        all_rows = np.arange(len(pool))
        merged = self._solve(problem, all_rows, budget_max)

        # Fig. 9 lines 12-15: keep the merged result when even its
        # cost upper bound fits; otherwise re-select under the budget.
        upper_bound_total = float(pool.cost_ub[merged].sum()) if merged else 0.0
        current_cost = float(
            sum(pool.cost_mean[r] for r in merged if pool.is_current[r])
        )
        if upper_bound_total > budget_max or current_cost > budget_current:
            merged = greedy_select(
                pool,
                np.asarray(merged, dtype=np.int64),
                budget_current,
                budget_max,
                self._config.greedy_config(),
            )
        return self._result_from_rows(problem, merged, budget_current)

    # ---- divide ------------------------------------------------------------

    def _solve(self, problem: ProblemInstance, rows: np.ndarray, budget_max: float) -> list[int]:
        """Recursive conquer over the pair rows ``rows``."""
        pool = problem.pool
        task_ids = np.unique(pool.task_idx[rows])
        if task_ids.size == 0:
            return []
        if task_ids.size == 1:
            return self._solve_leaf(pool, rows)

        fan_out = self._choose_g(pool, rows, task_ids.size)
        subgroups = self._decompose(problem, task_ids, fan_out)

        # Partition the rows over the subgroups in one bulk pass: map
        # each task to its group id, then label every row through its
        # task (one searchsorted instead of one isin per subgroup).
        group_of_task = np.empty(task_ids.size, dtype=np.int64)
        for index, subgroup in enumerate(subgroups):
            group_of_task[np.searchsorted(task_ids, subgroup)] = index
        row_group = group_of_task[np.searchsorted(task_ids, pool.task_idx[rows])]

        merged: list[int] = []
        for index in range(len(subgroups)):
            sub_rows = rows[row_group == index]
            if sub_rows.size == 0:
                continue
            solution = self._solve(problem, sub_rows, budget_max)
            merged = self._merge(pool, rows, merged, solution)
        return merged

    def _choose_g(self, pool: PairPool, rows: np.ndarray, num_tasks: int) -> int:
        if self._config.fixed_g is not None:
            return min(self._config.fixed_g, num_tasks)
        num_workers = int(np.unique(pool.worker_idx[rows]).size)
        avg_pairs_per_task = rows.size / num_tasks
        g = best_subproblem_count(
            num_tasks, num_workers, avg_pairs_per_task, max_g=self._config.max_g
        )
        return min(g, num_tasks)

    def _decompose(
        self, problem: ProblemInstance, task_ids: np.ndarray, fan_out: int
    ) -> list[np.ndarray]:
        """Fig. 7: anchor-sweep task grouping.

        Anchors sweep by longitude; each subgroup is the anchor plus
        its nearest unclaimed tasks, ``ceil(m'/g)`` tasks per group.
        """
        xs = np.array([problem.tasks[t].location.x for t in task_ids])
        ys = np.array([problem.tasks[t].location.y for t in task_ids])
        group_size = -(-task_ids.size // fan_out)  # ceil division

        unclaimed = np.ones(task_ids.size, dtype=bool)
        groups: list[np.ndarray] = []
        while unclaimed.any():
            open_positions = np.nonzero(unclaimed)[0]
            # Anchor: smallest longitude, ties by smallest latitude.
            anchor_order = np.lexsort((ys[open_positions], xs[open_positions]))
            anchor = open_positions[anchor_order[0]]
            distances = np.hypot(
                xs[open_positions] - xs[anchor], ys[open_positions] - ys[anchor]
            )
            take = open_positions[np.argsort(distances, kind="stable")[:group_size]]
            unclaimed[take] = False
            groups.append(task_ids[take])
        return groups

    # ---- conquer -----------------------------------------------------------

    def _solve_leaf(self, pool: PairPool, rows: np.ndarray) -> list[int]:
        """Single-task subproblem: pick the best worker (Fig. 9 line 8)."""
        candidates = self._pruned_candidates(pool, rows)
        if candidates.size == 0:
            return []
        return [select_best_row(pool, candidates, self._config.selection_objective)]

    def _pruned_candidates(self, pool: PairPool, rows: np.ndarray) -> np.ndarray:
        """Lemma 4.1 + cap + Lemma 4.2 over an arbitrary row set."""
        candidates = dominance_skyline(pool, rows)
        candidates = cap_candidates(pool, candidates, self._config.candidate_cap)
        return probability_prune(pool, candidates)

    # ---- merge -------------------------------------------------------------

    def _merge(
        self,
        pool: PairPool,
        rows_scope: np.ndarray,
        merged: list[int],
        incoming: list[int],
    ) -> list[int]:
        """Fig. 8: merge ``incoming`` into ``merged``, resolving conflicts.

        ``rows_scope`` is every valid pair row of the problem being
        merged; replacements for displaced tasks are searched there.
        """
        assignment_by_task: dict[int, int] = {
            int(pool.task_idx[r]): r for r in merged
        }
        worker_of: dict[int, int] = {int(pool.worker_idx[r]): r for r in merged}

        # Bulk conflict split: a subproblem solution never repeats a
        # worker, so only the workers already in ``merged`` can clash —
        # one vectorized membership test classifies every incoming row.
        incoming_rows = np.asarray(incoming, dtype=np.int64)
        merged_workers = np.fromiter(worker_of, dtype=np.int64, count=len(worker_of))
        conflicting = np.isin(pool.worker_idx[incoming_rows], merged_workers)
        for row in incoming_rows[~conflicting]:
            self._accept(pool, assignment_by_task, worker_of, int(row))
        conflicts = [int(r) for r in incoming_rows[conflicting]]

        # Fig. 8 line 3: handle the conflicting worker with the highest
        # traveling cost in the incoming subproblem first.
        conflicts.sort(key=lambda r: (-pool.cost_mean[r], r))
        for row in conflicts:
            worker = int(pool.worker_idx[row])
            incumbent = worker_of.get(worker)
            if incumbent is None:
                # The incumbent was displaced while resolving an earlier
                # conflict; the worker is free again.
                self._accept(pool, assignment_by_task, worker_of, row)
                continue
            best = self._better_of(pool, incumbent, row)
            if best == row:
                self._retract(pool, assignment_by_task, worker_of, incumbent)
                self._accept(pool, assignment_by_task, worker_of, row)
                displaced_task = int(pool.task_idx[incumbent])
            else:
                displaced_task = int(pool.task_idx[row])
            replacement = self._find_replacement(
                pool, rows_scope, displaced_task, worker_of
            )
            if replacement is not None:
                self._accept(pool, assignment_by_task, worker_of, replacement)

        return sorted(assignment_by_task.values())

    @staticmethod
    def _accept(pool, assignment_by_task, worker_of, row: int) -> None:
        assignment_by_task[int(pool.task_idx[row])] = row
        worker_of[int(pool.worker_idx[row])] = row

    @staticmethod
    def _retract(pool, assignment_by_task, worker_of, row: int) -> None:
        assignment_by_task.pop(int(pool.task_idx[row]), None)
        worker_of.pop(int(pool.worker_idx[row]), None)

    def _better_of(self, pool: PairPool, first: int, second: int) -> int:
        """Fig. 8 line 4: the better of two conflicting pairs.

        Lemma pruning then the Eq. 10 selection over the two-candidate
        set.  Budget enforcement is deferred to the final budget-
        constrained selection, so Eq. 9 is not applied here.
        """
        candidates = self._pruned_candidates(pool, np.array([first, second]))
        if candidates.size == 0:
            return first
        return select_best_row(pool, candidates, self._config.selection_objective)

    def _find_replacement(
        self,
        pool: PairPool,
        rows_scope: np.ndarray,
        task: int,
        worker_of: dict[int, int],
    ) -> int | None:
        """Fig. 8 lines 6/8: best unused worker for a displaced task."""
        of_task = rows_scope[pool.task_idx[rows_scope] == task]
        if of_task.size == 0:
            return None
        used = np.fromiter(worker_of, dtype=np.int64, count=len(worker_of))
        free = of_task[~np.isin(pool.worker_idx[of_task], used)]
        if free.size == 0:
            return None
        candidates = self._pruned_candidates(pool, free)
        if candidates.size == 0:
            return None
        return select_best_row(pool, candidates, self._config.selection_objective)
