"""The RANDOM baseline (Section VI).

Randomly assigns workers to tasks under the budget constraint: valid
pairs are visited in uniformly random order and accepted whenever both
endpoints are still free and the budget allows.  RANDOM ignores quality
entirely — the paper uses it as the quality floor and the runtime
ceiling reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Assigner, AssignmentResult
from repro.model.instance import ProblemInstance

_EPS = 1e-9


class RandomAssigner(Assigner):
    """Uniformly random feasible assignment."""

    name = "random"

    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        pool = problem.pool
        num_pairs = len(pool)
        if num_pairs == 0:
            return self._result_from_rows(problem, [], budget_current)

        order = rng.permutation(num_pairs)

        used_workers: set[int] = set()
        used_tasks: set[int] = set()
        spent_current = 0.0
        spent_future = 0.0
        selected: list[int] = []

        for row in order:
            row = int(row)
            worker = int(pool.worker_idx[row])
            task = int(pool.task_idx[row])
            if worker in used_workers or task in used_tasks:
                continue
            if pool.is_current[row]:
                cost = float(pool.cost_mean[row])
                if spent_current + cost > budget_current + _EPS:
                    continue
                spent_current += cost
            else:
                cost = float(pool.cost_mean[row])
                if spent_future + cost > budget_future + _EPS:
                    continue
                spent_future += cost
            used_workers.add(worker)
            used_tasks.add(task)
            selected.append(row)

        return self._result_from_rows(problem, selected, budget_current)
