"""Assigner interface, results, and shared budget semantics.

Budget model
------------

Definition 4 constrains the *realized* traveling cost of each time
instance to the per-instance budget ``B``.  When prediction is enabled,
GREEDY/D&C select over current *and* predicted pairs against the
combined budget ``B_max`` = remaining current budget + next-instance
budget (Section IV-C: "B_max is the available budget in both current
and next time instances").  Predicted pairs are then discarded from the
output (Fig. 5, line 14), so the per-instance constraint must hold for
the *materialized* (current-current) pairs alone.

:func:`finalize_selection` enforces exactly that: it keeps the
materialized pairs, and if their realized cost exceeds the current
budget (possible after D&C merging), trims lowest-quality pairs until
feasible.  The greedy algorithm already charges current pairs against
the current budget during selection, so finalization is a no-op there;
it is load-bearing for D&C and RANDOM.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.model.instance import ProblemInstance
from repro.obs.metrics import monotonic
from repro.model.pairs import CandidatePair


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one assigner invocation at one time instance.

    Attributes:
        pairs: the materialized assignment instance set ``I_p`` —
            current-current pairs only, each within budget.
        rows: pool row index of each pair in ``pairs``.
        considered_rows: every row the algorithm *selected* before
            predicted pairs were dropped (diagnostics / tests).
        total_quality: realized quality score of ``pairs``.
        total_cost: realized traveling cost of ``pairs``.
    """

    pairs: list[CandidatePair]
    rows: list[int]
    considered_rows: list[int] = field(default_factory=list)

    @property
    def total_quality(self) -> float:
        return sum(p.quality.mean for p in self.pairs)

    @property
    def total_cost(self) -> float:
        return sum(p.cost.mean for p in self.pairs)

    @property
    def num_assigned(self) -> int:
        return len(self.pairs)


class Assigner(ABC):
    """A per-instance MQA assignment strategy.

    Round lifecycle: a streaming engine running with warm selection
    calls :meth:`begin_round` before :meth:`assign` each round, handing
    over the round's :class:`~repro.model.delta.ChurnRecord` and — for
    assigners that can use it — a persistent
    :class:`~repro.core.triplet_select.SelectionState`.  Assigners
    consume the context at most once per round (one-shot); engines that
    never call ``begin_round`` (warm selection off, or batch harnesses)
    get the identical cold behavior.
    """

    name: str = "assigner"

    #: Round context set by :meth:`begin_round`; consumed one-shot.
    _round_selection_state = None
    _round_churn = None
    #: Wall-clock seconds the last ``_result_from_rows`` spent in
    #: finalization; engines subtract it from the assign timer to
    #: split ``select_seconds`` / ``finalize_seconds``.
    last_finalize_seconds: float = 0.0

    def begin_round(self, problem, churn=None, selection_state=None) -> None:
        """Arm the assigner with one round's warm-start context."""
        self._round_churn = churn
        self._round_selection_state = selection_state
        if selection_state is not None:
            selection_state.begin_round(problem, churn)

    def take_round_selection_state(self):
        """Consume (and clear) the round's selection state, if any."""
        state = self._round_selection_state
        self._round_selection_state = None
        self._round_churn = None
        return state

    @abstractmethod
    def assign(
        self,
        problem: ProblemInstance,
        budget_current: float,
        budget_future: float,
        rng: np.random.Generator,
    ) -> AssignmentResult:
        """Select the assignment instance set ``I_p`` for ``problem``.

        Args:
            problem: candidate pairs (current and possibly predicted).
            budget_current: remaining reward budget of this instance.
            budget_future: budget of the next instance (0 when running
                without prediction).
            rng: random source (only RANDOM uses it, but the interface
                is uniform so experiment harnesses stay generic).
        """

    def _result_from_rows(
        self,
        problem: ProblemInstance,
        selected_rows: list[int],
        budget_current: float,
    ) -> AssignmentResult:
        """Shared tail: drop predicted pairs, enforce the hard budget."""
        started = monotonic()
        current_rows = finalize_selection(problem, selected_rows, budget_current)
        result = AssignmentResult(
            pairs=problem.pairs(current_rows),
            rows=current_rows,
            considered_rows=list(selected_rows),
        )
        self.last_finalize_seconds = monotonic() - started
        return result


def finalize_selection(
    problem: ProblemInstance,
    selected_rows: list[int],
    budget_current: float,
) -> list[int]:
    """Materialize a selection: current pairs only, within budget.

    Drops rows involving predicted entities (Fig. 5 line 14 / the D&C
    equivalent), then — if the realized cost of the remaining pairs
    exceeds ``budget_current`` — greedily trims the pairs with the
    lowest quality until the constraint holds.  Raises if the same
    worker or task appears twice (that is an algorithm bug, not a
    recoverable condition).
    """
    pool = problem.pool
    rows = np.asarray(list(selected_rows), dtype=np.int64)
    current_rows = rows[pool.is_current[rows]] if rows.size else rows
    current = [int(r) for r in current_rows]

    if np.unique(pool.worker_idx[current_rows]).size != current_rows.size:
        raise AssertionError("a worker was assigned to two tasks")
    if np.unique(pool.task_idx[current_rows]).size != current_rows.size:
        raise AssertionError("a task was assigned to two workers")

    total_cost = float(pool.cost_mean[current_rows].sum())
    if total_cost <= budget_current + 1e-9:
        return sorted(current)

    # Trim lowest-quality pairs first; ties by higher cost first so the
    # cheapest high-quality set survives.
    by_value = sorted(current, key=lambda r: (pool.quality_mean[r], -pool.cost_mean[r]))
    kept = list(current)
    for row in by_value:
        if total_cost <= budget_current + 1e-9:
            break
        kept.remove(row)
        total_cost -= float(pool.cost_mean[row])
    return sorted(kept)
