"""Sparse-native greedy selection over CSR-style pool triplets.

:class:`TripletSelection` runs the Fig. 5 selection loop without the
per-iteration full-pool rescans of the straightforward implementation
(kept as ``repro.core.greedy._greedy_select_rescan``): the pool rows
are organized once into sorted orders and occupancy groups, and every
iteration touches only the rows whose state can actually have changed.
The selected rows are *identical* to the rescan loop's — every stage
below reproduces the same candidate row set per iteration, and the
shared ``probability_prune`` / ``select_best_row`` tail breaks ties
identically.

Per-iteration stages and why they are exact:

- **Budget feasibility** (Fig. 5 line 6) and the **deterministic
  Eq. 9 lanes** are monotone: budgets and headroom only shrink, so a
  row that fails once fails forever.  Rows sorted by expected cost are
  swept from the expensive end and killed permanently — each row is
  visited once across the whole run (amortized O(1)), and the kill
  condition is the same float comparison the rescan evaluates.
- **Stochastic Eq. 9 lanes** use the conservative z-thresholds of
  :func:`repro.core.selection._phi_threshold`: rows whose outcome is
  certain from ``z`` alone are swept with precomputed keys
  (``cost_mean + z * std``); only rows inside the narrow band around
  the threshold are re-tested with the exact ``phi_vec`` each
  iteration, and failures are permanent because ``phi`` is monotone in
  the spent budget.
- **Dominance pruning** (Lemma 4.1) uses fixed positions in the
  initial cost-upper-bound order, a live-value array updated on every
  kill, and a *stale* prefix-max that is only rebuilt periodically.
  Staleness is conservative (values only leave the live set, so the
  stale max is an upper bound): rows the stale max cannot dominate are
  accepted outright, and the rare "maybe dominated" rows fall back to
  an exact prefix scan over the live values.
- **Candidate cap**: candidates are collected by walking the fixed
  quality-weight order (the ``cap_candidates`` order) and skipping
  dead or dominated rows until ``candidate_cap`` survivors are found —
  exactly the top-``cap`` of the skyline.
- **Occupancy**: rows are grouped by worker and by task once; when a
  pair is selected, both groups are killed in bulk (Fig. 5 line 13).

The engine requires the z-threshold shortcut to be available for the
configured ``delta``; callers fall back to the rescan loop otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning import probability_prune
from repro.core.selection import _EPS, _VARIANCE_FLOOR, _phi_threshold, select_best_row
from repro.model.pairs import PairPool
from repro.uncertainty.vector import phi_vec

#: Weight-order walk chunk: big enough that one chunk usually yields a
#: full candidate cap, small enough that dead prefixes stay cheap.
_WALK_CHUNK = 256


class TripletSelection:
    """One greedy selection run (see module docstring)."""

    def __init__(
        self,
        pool: PairPool,
        rows: np.ndarray,
        budget_current: float,
        budget_max: float,
        config,
        thresholds: tuple[float, float],
    ) -> None:
        self._pool = pool
        self._config = config
        self._budget_current = budget_current
        self._budget_max = budget_max
        self._budget_future = max(budget_max - budget_current, 0.0)

        # Canonical positions: index into the ascending row array.
        self._rows = rows
        size = rows.size
        self._cost = pool.cost_mean[rows]
        self._cost_lb = pool.cost_lb[rows]
        self._quality_ub = pool.quality_ub[rows]
        self._dead = np.zeros(size, dtype=bool)

        # Occupancy groups: positions sharing a worker / a task.
        self._w_keys, self._w_starts, self._w_members = self._group(
            pool.worker_idx[rows]
        )
        self._t_keys, self._t_starts, self._t_members = self._group(
            pool.task_idx[rows]
        )

        # Weight order (the candidate-cap order) as positions.
        self._weight_positions = np.lexsort(
            (rows, self._cost, -pool.quality_mean[rows])
        )
        self._walk_start = 0

        # Dominance scaffolding in cost-ub order.
        cost_ub = pool.cost_ub[rows]
        order = np.argsort(cost_ub, kind="stable")
        self._rank_of_pos = np.empty(size, dtype=np.int64)
        self._rank_of_pos[order] = np.arange(size)
        self._cut_of_pos = np.searchsorted(cost_ub[order], self._cost_lb, side="left")
        self._live_lb = pool.quality_lb[rows][order].copy()
        self._stale_pmax = np.maximum.accumulate(self._live_lb) if size else self._live_lb
        # The prefix max stays exact until a kill removes a value that
        # was attaining it somewhere (a "load-bearing" kill); only then
        # does a dominance query need a rebuild.
        self._pmax_dirty = False

        # Budget sweep orders: positions ascending by their kill key.
        # Each sweep keeps an end pointer; per iteration one
        # searchsorted finds the new boundary and the crossed suffix is
        # killed in bulk — every row is killed at most once, so the
        # sweeps are amortized O(1) per iteration.
        is_current = pool.is_current[rows]
        by_cost = np.argsort(self._cost, kind="stable")
        self._cur_sweep = by_cost[is_current[by_cost]]
        self._cur_keys = self._cost[self._cur_sweep]
        self._fut_sweep = by_cost[~is_current[by_cost]]
        self._fut_keys = self._cost[self._fut_sweep]
        self._cur_end = self._cur_sweep.size
        self._fut_end = self._fut_sweep.size

        # Eq. 9 sweep orders.  Deterministic lanes fail when their cost
        # exceeds the remaining headroom; stochastic lanes carry
        # conservative pass/fail keys derived from the z-thresholds.
        variance = pool.cost_var[rows]
        deterministic = variance <= _VARIANCE_FLOOR
        det_positions = np.nonzero(deterministic)[0]
        det_order = np.argsort(self._cost[det_positions], kind="stable")
        self._det_sweep = det_positions[det_order]
        self._det_keys = self._cost[self._det_sweep]
        self._det_end = self._det_sweep.size

        z_lo, z_hi = thresholds
        sto_positions = np.nonzero(~deterministic)[0]
        self._std = np.zeros(size)
        self._std[sto_positions] = np.sqrt(variance[sto_positions])
        fail_key = self._cost[sto_positions] + z_lo * self._std[sto_positions]
        pass_key = self._cost[sto_positions] + z_hi * self._std[sto_positions]
        fail_order = np.argsort(fail_key, kind="stable")
        self._sto_fail_sweep = sto_positions[fail_order]
        self._sto_fail_keys = fail_key[fail_order]
        self._sto_fail_end = self._sto_fail_sweep.size
        # Band entry: once the headroom drops to a row's pass key the
        # outcome is no longer certain; the row joins the exact-phi
        # band until it passes no more (permanently killed).
        enter_order = np.argsort(pass_key, kind="stable")
        self._band_entry = sto_positions[enter_order]
        self._band_entry_keys = pass_key[enter_order]
        self._band_start = self._band_entry.size
        self._band: np.ndarray = np.zeros(0, dtype=np.int64)

        self._spent_current = 0.0
        self._spent_future = 0.0
        self._spent_lower_bound = 0.0

    @staticmethod
    def _group(keys: np.ndarray):
        order = np.argsort(keys, kind="stable").astype(np.int64)
        sorted_keys = keys[order]
        uniq, first = np.unique(sorted_keys, return_index=True)
        starts = np.concatenate((first, [sorted_keys.size])).astype(np.int64)
        return uniq, starts, order

    # -- kills ---------------------------------------------------------------

    def _kill(self, positions: np.ndarray) -> None:
        if positions.size == 0:
            return
        fresh = positions[~self._dead[positions]]
        if fresh.size == 0:
            return
        self._dead[fresh] = True
        ranks = self._rank_of_pos[fresh]
        if not self._pmax_dirty and bool(
            (self._live_lb[ranks] >= self._stale_pmax[ranks]).any()
        ):
            # A killed value attained the running max at its position,
            # so some prefix maxima may have dropped.
            self._pmax_dirty = True
        self._live_lb[ranks] = -np.inf

    def _sweep_budgets(self) -> None:
        """Apply every monotone kill due at the current spend levels.

        Each kill condition is a comparison against a sorted key array,
        so the crossed rows form a suffix found by one ``searchsorted``
        per sweep — the same float comparisons the rescan loop
        evaluates, batched.
        """
        # Fig. 5 line 6 feasibility: kill when cost > remaining + EPS.
        limit = (self._budget_current - self._spent_current) + _EPS
        boundary = int(np.searchsorted(self._cur_keys[: self._cur_end], limit, side="right"))
        if boundary < self._cur_end:
            self._kill(self._cur_sweep[boundary : self._cur_end])
            self._cur_end = boundary
        limit = (self._budget_future - self._spent_future) + _EPS
        boundary = int(np.searchsorted(self._fut_keys[: self._fut_end], limit, side="right"))
        if boundary < self._fut_end:
            self._kill(self._fut_sweep[boundary : self._fut_end])
            self._fut_end = boundary

        # Eq. 9, deterministic lanes: kill when headroom - cost < 0,
        # i.e. cost > headroom (IEEE subtraction is sign-exact).
        headroom_base = self._budget_max - self._spent_lower_bound
        boundary = int(
            np.searchsorted(self._det_keys[: self._det_end], headroom_base, side="right")
        )
        if boundary < self._det_end:
            self._kill(self._det_sweep[boundary : self._det_end])
            self._det_end = boundary
        # Eq. 9, stochastic sure-fail lanes.
        boundary = int(
            np.searchsorted(
                self._sto_fail_keys[: self._sto_fail_end], headroom_base, side="right"
            )
        )
        if boundary < self._sto_fail_end:
            self._kill(self._sto_fail_sweep[boundary : self._sto_fail_end])
            self._sto_fail_end = boundary

        # Rows whose sure-pass key no longer clears the headroom enter
        # the exact-phi band (key >= headroom).
        boundary = int(
            np.searchsorted(
                self._band_entry_keys[: self._band_start], headroom_base, side="left"
            )
        )
        if boundary < self._band_start:
            entering = self._band_entry[boundary : self._band_start]
            self._band_start = boundary
            self._band = np.concatenate((self._band, entering))
        if self._band.size:
            band = self._band[~self._dead[self._band]]
            if band.size:
                z = (headroom_base - self._cost[band]) / self._std[band]
                failing = ~(phi_vec(z) > self._config.delta)
                self._kill(band[failing])
                band = band[~failing]
            self._band = band

    # -- dominance -----------------------------------------------------------

    def _not_dominated(self, positions: np.ndarray) -> np.ndarray:
        """Mask of ``positions`` surviving Lemma 4.1 against the live set."""
        cuts = self._cut_of_pos[positions]
        stale_best = np.where(
            cuts > 0, self._stale_pmax[np.maximum(cuts - 1, 0)], -np.inf
        )
        clean = ~(stale_best > self._quality_ub[positions])
        if self._pmax_dirty and not clean.all():
            # The stale max is an upper bound (values only ever leave
            # the live set), so only flagged rows can be false alarms:
            # refresh the prefix max once and re-test them exactly.
            self._stale_pmax = np.maximum.accumulate(self._live_lb)
            self._pmax_dirty = False
            fresh_best = np.where(
                cuts > 0, self._stale_pmax[np.maximum(cuts - 1, 0)], -np.inf
            )
            clean = ~(fresh_best > self._quality_ub[positions])
        return clean

    # -- candidate walk ------------------------------------------------------

    def _collect_candidates(self) -> np.ndarray:
        """The iteration's candidate positions, in canonical order.

        Walks the weight order collecting live, non-dominated
        positions.  One extra row beyond the cap is gathered to learn
        whether the cap actually binds: the Eq. 10 scores downstream
        sum float probabilities in array order, so the order is part
        of the selection contract — quality-weight when the cap binds
        (``cap_candidates``' output order), ascending otherwise (the
        skyline's).
        """
        cap = self._config.candidate_cap + 1
        prune_dominated = self._config.use_dominance_pruning
        wpos = self._weight_positions
        picked: list[np.ndarray] = []
        count = 0
        start = self._walk_start
        while start < wpos.size and count < cap:
            chunk = wpos[start : start + _WALK_CHUNK]
            live = chunk[~self._dead[chunk]]
            if start == self._walk_start:
                # Advance the walk origin past the dead prefix so fully
                # selected regions are never rescanned (amortized).
                if live.size == 0:
                    self._walk_start = start + chunk.size
                else:
                    first_live = np.nonzero(~self._dead[chunk])[0][0]
                    self._walk_start = start + int(first_live)
            start += chunk.size
            if live.size == 0:
                continue
            if prune_dominated:
                live = live[self._not_dominated(live)]
            if live.size:
                picked.append(live[: cap - count])
                count += min(live.size, cap - count)
        if not picked:
            return np.zeros(0, dtype=np.int64)
        positions = np.concatenate(picked)
        if positions.size > self._config.candidate_cap:
            return positions[: self._config.candidate_cap]
        return np.sort(positions)

    # -- the loop ------------------------------------------------------------

    def run(self) -> list[int]:
        pool = self._pool
        config = self._config
        selected: list[int] = []
        while True:
            self._sweep_budgets()
            positions = self._collect_candidates()
            if positions.size == 0:
                break
            candidate_rows = self._rows[positions]
            if config.use_probability_pruning:
                candidate_rows = probability_prune(pool, candidate_rows)
            best = select_best_row(pool, candidate_rows, config.selection_objective)
            selected.append(best)
            self._spent_lower_bound += float(pool.cost_lb[best])
            if pool.is_current[best]:
                self._spent_current += float(pool.cost_mean[best])
            else:
                self._spent_future += float(pool.cost_mean[best])
            w_slot = np.searchsorted(self._w_keys, pool.worker_idx[best])
            self._kill(
                self._w_members[self._w_starts[w_slot] : self._w_starts[w_slot + 1]]
            )
            t_slot = np.searchsorted(self._t_keys, pool.task_idx[best])
            self._kill(
                self._t_members[self._t_starts[t_slot] : self._t_starts[t_slot + 1]]
            )
        return selected


def triplet_greedy_select(
    pool: PairPool,
    rows: np.ndarray,
    budget_current: float,
    budget_max: float,
    config,
) -> list[int] | None:
    """Run the sparse-native engine, or ``None`` when not applicable.

    ``rows`` must be unique and ascending (the caller normalizes).
    Returns ``None`` when the configured ``delta`` is too extreme for
    the z-threshold shortcut — the caller then uses the rescan loop.
    """
    thresholds = _phi_threshold(config.delta)
    if thresholds is None:
        return None
    return TripletSelection(
        pool, rows, budget_current, budget_max, config, thresholds
    ).run()
