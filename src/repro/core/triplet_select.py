"""Sparse-native greedy selection over CSR-style pool triplets.

:class:`TripletSelection` runs the Fig. 5 selection loop without the
per-iteration full-pool rescans of the straightforward implementation
(kept as ``repro.core.greedy._greedy_select_rescan``): the pool rows
are organized once into sorted orders and occupancy groups, and every
iteration touches only the rows whose state can actually have changed.
The selected rows are *identical* to the rescan loop's — every stage
below reproduces the same candidate row set per iteration, and the
shared ``probability_prune`` / ``select_best_row`` tail breaks ties
identically.

Per-iteration stages and why they are exact:

- **Budget feasibility** (Fig. 5 line 6) and the **deterministic
  Eq. 9 lanes** are monotone: budgets and headroom only shrink, so a
  row that fails once fails forever.  Rows sorted by expected cost are
  swept from the expensive end and killed permanently — each row is
  visited once across the whole run (amortized O(1)), and the kill
  condition is the same float comparison the rescan evaluates.
- **Stochastic Eq. 9 lanes** use the conservative z-thresholds of
  :func:`repro.core.selection._phi_threshold`: rows whose outcome is
  certain from ``z`` alone are swept with precomputed keys
  (``cost_mean + z * std``); only rows inside the narrow band around
  the threshold are re-tested with the exact ``phi_vec`` each
  iteration, and failures are permanent because ``phi`` is monotone in
  the spent budget.
- **Dominance pruning** (Lemma 4.1) uses fixed positions in the
  initial cost-upper-bound order, a live-value array updated on every
  kill, and a *stale* prefix-max that is only rebuilt periodically.
  Staleness is conservative (values only leave the live set, so the
  stale max is an upper bound): rows the stale max cannot dominate are
  accepted outright, and the rare "maybe dominated" rows fall back to
  an exact prefix scan over the live values.
- **Candidate cap**: candidates are collected by walking the fixed
  quality-weight order (the ``cap_candidates`` order) and skipping
  dead or dominated rows until ``candidate_cap`` survivors are found —
  exactly the top-``cap`` of the skyline.
- **Occupancy**: rows are grouped by worker and by task once; when a
  pair is selected, both groups are killed in bulk (Fig. 5 line 13).

The engine requires the z-threshold shortcut to be available for the
configured ``delta``; callers fall back to the rescan loop otherwise.

Persistent selection (the warm-start layer)
-------------------------------------------

The sorted orders and occupancy groups above are *structural*: they
depend only on the row set's values, not on the budgets of a
particular run, and :meth:`TripletSelection.run` never mutates them.
:class:`SelectionOrders` captures exactly that cacheable bundle, and
:class:`SelectionState` keeps it alive across streaming rounds.  Each
round the state maps the new pool's rows onto the previous round's
(via a trusted :class:`~repro.model.delta.ChurnRecord` origin hint
from the delta builder, or by self-diffing pair identities), verifies
that every surviving row's order-determining columns are unchanged
(mismatches are demoted to fresh rows), and then *repairs* each sorted
order: the survivors' sub-order is extracted in O(n), only the fresh
rows are sorted (O(churn log churn)), and the two runs are merged with
:func:`_merge_sorted_positions` — an exact stable merge whose
cross-run ties are re-sorted on the full lexicographic key.  Any guard
failure (non-monotone origin, inconsistent occupancy keys, churn past
``repair_ratio``) falls back to a full cold build, so warm selections
are bit-identical to cold ones by construction; the hypothesis suite
in ``tests/test_selection_state.py`` enforces it end to end.

How this layer composes with the delta pool and the sharded tile
pipelines is described in ``docs/architecture.md`` (the incremental
round pipeline section).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pruning import probability_prune
from repro.core.selection import _EPS, _VARIANCE_FLOOR, _phi_threshold, select_best_row
from repro.model.pairs import PairPool
from repro.uncertainty.vector import phi_vec

#: Weight-order walk chunk: big enough that one chunk usually yields a
#: full candidate cap (and that mostly-dead pools cross the dead
#: regions in few python-loop iterations — the per-chunk array ops are
#: cheap next to the loop overhead), small enough that the wasted
#: dominance work past the cap stays bounded.
_WALK_CHUNK = 4096

#: Pair identity keys pack ``worker_id * 2**25 + task_id``.  The split
#: is asymmetric because worker ids reach high synthetic ranges (the
#: streaming engine re-materializes released workers at ids >= 2e10)
#: while task ids stay dense: 38 bits of worker id x 25 bits of task
#: id is collision-free in int64.  Out-of-range ids just disable the
#: self-diff origin (the state cold-primes), never corrupt it.
_ID_TASK_BITS = 25
_ID_BASE = np.int64(1) << np.int64(_ID_TASK_BITS)
_WORKER_ID_LIMIT = 1 << (63 - _ID_TASK_BITS)
_TASK_ID_LIMIT = 1 << _ID_TASK_BITS


def _group(keys: np.ndarray):
    """Occupancy grouping: positions sharing a key, sorted by key.

    Returns ``(uniq, starts, members)`` where ``members`` is every
    position sorted by ``(key, position)`` and group ``i`` spans
    ``members[starts[i]:starts[i + 1]]``.
    """
    order = np.argsort(keys, kind="stable").astype(np.int64)
    sorted_keys = keys[order]
    uniq, first = np.unique(sorted_keys, return_index=True)
    starts = np.concatenate((first, [sorted_keys.size])).astype(np.int64)
    return uniq, starts, order


def _regroup(keys: np.ndarray, members: np.ndarray):
    """Rebuild ``(uniq, starts, members)`` from pre-sorted members.

    ``members`` must already be sorted by ``(keys[member], member)`` —
    the repair path guarantees it — so the group boundaries reduce to
    one run-length pass.  Matches :func:`_group` bit for bit.
    """
    member_keys = keys[members]
    if member_keys.size == 0:
        return member_keys[:0], np.zeros(1, dtype=np.int64), members
    change = np.nonzero(member_keys[1:] != member_keys[:-1])[0] + 1
    starts = np.concatenate(([0], change, [member_keys.size])).astype(np.int64)
    return member_keys[starts[:-1]], starts, members


def _merge_sorted_positions(
    a: np.ndarray, b: np.ndarray, keys: tuple[np.ndarray, ...]
) -> np.ndarray:
    """Merge two position runs sorted by ``(*keys, position)``.

    ``keys`` are full-length arrays indexed by position, most
    significant first; the position itself is the implicit final
    tiebreaker.  The merge is a stable O(n) two-run scatter on the
    primary key; primary-key values present in *both* runs are the
    only places where the secondary keys can disagree with the scatter
    order, so those tie blocks are re-sorted exactly on the full
    lexicographic tuple (O(t log t) over tied entries only).
    """
    if a.size == 0:
        return b.astype(np.int64, copy=False)
    if b.size == 0:
        return a.astype(np.int64, copy=False)
    primary = keys[0]
    ka = primary[a]
    kb = primary[b]
    out = np.empty(a.size + b.size, dtype=np.int64)
    # Binary-search the *small* run into the big one only; the big
    # run's slots are the complement, filled in order (the stable-merge
    # identity).  Searching big-into-small costs ~4x more here despite
    # the shallower per-needle search, so this asymmetry dominates the
    # steady-state repair bill.
    idx_b = np.searchsorted(ka, kb, side="right") + np.arange(b.size)
    keep = np.ones(out.size, dtype=bool)
    keep[idx_b] = False
    out[idx_b] = b
    out[keep] = a
    # Primary values shared by both runs (the only possible cross-run
    # ties).  ``kb`` is sorted, so consecutive dedup suffices.
    pos = np.searchsorted(ka, kb, side="left")
    clipped = np.minimum(pos, ka.size - 1)
    shared = kb[(pos < ka.size) & (ka[clipped] == kb)]
    if shared.size == 0:
        return out
    shared = shared[np.concatenate(([True], shared[1:] != shared[:-1]))]
    merged_keys = primary[out]
    lo = np.searchsorted(merged_keys, shared, side="left")
    hi = np.searchsorted(merged_keys, shared, side="right")
    marks = np.zeros(out.size + 1, dtype=np.int64)
    np.add.at(marks, lo, 1)
    np.add.at(marks, hi, -1)
    tied = np.cumsum(marks[:-1]) > 0
    sub = out[tied]
    order = np.lexsort((sub,) + tuple(k[sub] for k in reversed(keys)))
    out[tied] = sub[order]
    return out


def _sorted_by_key_then_position(keys: np.ndarray, seq: np.ndarray) -> bool:
    """Whether ``seq`` is sorted by ``(keys[seq], seq)`` (strictly)."""
    if seq.size < 2:
        return True
    k = keys[seq]
    return bool(
        np.all((k[1:] > k[:-1]) | ((k[1:] == k[:-1]) & (seq[1:] > seq[:-1])))
    )


class SelectionOrders:
    """The structural (cacheable) half of a :class:`TripletSelection`.

    Sorted position orders and occupancy groups of one full-pool row
    set.  Everything here is a pure function of the rows' values (and
    the z-thresholds for the stochastic sweep keys); ``run()`` never
    mutates these arrays, so the bundle can be reused across rounds
    and repaired incrementally by :class:`SelectionState`.
    """

    __slots__ = (
        "size",
        "weight_positions",
        "ub_order",
        "w_keys",
        "w_starts",
        "w_members",
        "t_keys",
        "t_starts",
        "t_members",
        "by_cost",
        "cur_sweep",
        "fut_sweep",
        "det_sweep",
        "sto_fail_sweep",
        "band_entry",
    )


def build_selection_orders(
    pool: PairPool, rows: np.ndarray, thresholds: tuple[float, float]
) -> SelectionOrders:
    """Cold-build the structural orders for ``rows`` (unique, ascending)."""
    orders = SelectionOrders()
    orders.size = rows.size
    cost = pool.cost_mean[rows]

    orders.w_keys, orders.w_starts, orders.w_members = _group(pool.worker_idx[rows])
    orders.t_keys, orders.t_starts, orders.t_members = _group(pool.task_idx[rows])

    orders.weight_positions = np.lexsort((rows, cost, -pool.quality_mean[rows]))
    orders.ub_order = np.argsort(pool.cost_ub[rows], kind="stable")

    # The cost-ascending order is stored because the repair path
    # derives the three filtered sweeps below from it with one merge
    # and cheap mask filters instead of three merges.
    is_current = pool.is_current[rows]
    by_cost = np.argsort(cost, kind="stable")
    orders.by_cost = by_cost.astype(np.int64, copy=False)
    orders.cur_sweep = by_cost[is_current[by_cost]]
    orders.fut_sweep = by_cost[~is_current[by_cost]]

    variance = pool.cost_var[rows]
    deterministic = variance <= _VARIANCE_FLOOR
    orders.det_sweep = by_cost[deterministic[by_cost]]

    z_lo, z_hi = thresholds
    sto_positions = np.nonzero(~deterministic)[0]
    std = np.sqrt(variance[sto_positions])
    fail_key = cost[sto_positions] + z_lo * std
    pass_key = cost[sto_positions] + z_hi * std
    orders.sto_fail_sweep = sto_positions[np.argsort(fail_key, kind="stable")]
    orders.band_entry = sto_positions[np.argsort(pass_key, kind="stable")]
    return orders


class TripletSelection:
    """One greedy selection run (see module docstring)."""

    def __init__(
        self,
        pool: PairPool,
        rows: np.ndarray,
        budget_current: float,
        budget_max: float,
        config,
        thresholds: tuple[float, float],
        orders: SelectionOrders | None = None,
    ) -> None:
        self._pool = pool
        self._config = config
        self._budget_current = budget_current
        self._budget_max = budget_max
        self._budget_future = max(budget_max - budget_current, 0.0)

        # Canonical positions: index into the ascending row array.
        # When ``rows`` is the full pool (the streaming engines pass
        # the arange every round), the per-row gathers below are
        # identity copies — alias the pool arrays instead.  Every
        # aliased array is read-only here; the mutated ones
        # (``_live_lb``) are copied explicitly.
        self._rows = rows
        size = rows.size
        full = size == len(pool)
        self._cost = pool.cost_mean if full else pool.cost_mean[rows]
        self._quality_ub = pool.quality_ub if full else pool.quality_ub[rows]
        self._dead = np.zeros(size, dtype=bool)

        # Structural orders: cold-built here, or injected (warm start).
        # Everything below derives the per-run state from them with
        # the exact same float operations either way, so a warm run is
        # bit-identical to a cold one by construction.
        if orders is None:
            orders = build_selection_orders(pool, rows, thresholds)
        self.orders = orders

        # Occupancy groups: positions sharing a worker / a task.
        self._w_keys, self._w_starts, self._w_members = (
            orders.w_keys,
            orders.w_starts,
            orders.w_members,
        )
        self._t_keys, self._t_starts, self._t_members = (
            orders.t_keys,
            orders.t_starts,
            orders.t_members,
        )

        # Weight order (the candidate-cap order) as positions.
        self._weight_positions = orders.weight_positions
        self._walk_start = 0

        # Dominance scaffolding in cost-ub order.  The cut (how many
        # rows have a cost upper bound strictly below a row's cost
        # lower bound) is filled in lazily, memoized per position: only
        # candidate positions ever consult it, so a budget-tight round
        # runs a few hundred cache-hot searches instead of a full-pool
        # searchsorted, and a selection-heavy run still pays at most
        # one search per row.
        order = orders.ub_order
        self._rank_of_pos = np.empty(size, dtype=np.int64)
        self._rank_of_pos[order] = np.arange(size)
        cost_ub = pool.cost_ub if full else pool.cost_ub[rows]
        self._ub_sorted = cost_ub[order]
        self._cost_lb = pool.cost_lb if full else pool.cost_lb[rows]
        self._cut_of_pos = np.full(size, -1, dtype=np.int64)
        quality_lb = pool.quality_lb if full else pool.quality_lb[rows]
        self._live_lb = quality_lb[order]
        self._stale_pmax = np.maximum.accumulate(self._live_lb) if size else self._live_lb
        # The prefix max stays exact until a kill removes a value that
        # was attaining it somewhere (a "load-bearing" kill); only then
        # does a dominance query need a rebuild.
        self._pmax_dirty = False

        # Budget sweep orders: positions ascending by their kill key.
        # Each sweep keeps an end pointer; per iteration one
        # searchsorted finds the new boundary and the crossed suffix is
        # killed in bulk — every row is killed at most once, so the
        # sweeps are amortized O(1) per iteration.
        self._cur_sweep = orders.cur_sweep
        self._cur_keys = self._cost[orders.cur_sweep]
        self._fut_sweep = orders.fut_sweep
        self._fut_keys = self._cost[orders.fut_sweep]
        self._cur_end = self._cur_sweep.size
        self._fut_end = self._fut_sweep.size

        # Eq. 9 sweep orders.  Deterministic lanes fail when their cost
        # exceeds the remaining headroom; stochastic lanes carry
        # conservative pass/fail keys derived from the z-thresholds.
        variance = pool.cost_var if full else pool.cost_var[rows]
        deterministic = variance <= _VARIANCE_FLOOR
        self._det_sweep = orders.det_sweep
        self._det_keys = self._cost[orders.det_sweep]
        self._det_end = self._det_sweep.size

        z_lo, z_hi = thresholds
        sto = ~deterministic
        self._std = np.zeros(size)
        self._std[sto] = np.sqrt(variance[sto])
        self._sto_fail_sweep = orders.sto_fail_sweep
        self._sto_fail_keys = (
            self._cost[orders.sto_fail_sweep]
            + z_lo * self._std[orders.sto_fail_sweep]
        )
        self._sto_fail_end = self._sto_fail_sweep.size
        # Band entry: once the headroom drops to a row's pass key the
        # outcome is no longer certain; the row joins the exact-phi
        # band until it passes no more (permanently killed).
        self._band_entry = orders.band_entry
        self._band_entry_keys = (
            self._cost[orders.band_entry] + z_hi * self._std[orders.band_entry]
        )
        self._band_start = self._band_entry.size
        self._band: np.ndarray = np.zeros(0, dtype=np.int64)

        self._spent_current = 0.0
        self._spent_future = 0.0
        self._spent_lower_bound = 0.0

    # -- kills ---------------------------------------------------------------

    def _kill(self, positions: np.ndarray) -> None:
        if positions.size == 0:
            return
        fresh = positions[~self._dead[positions]]
        if fresh.size == 0:
            return
        self._dead[fresh] = True
        ranks = self._rank_of_pos[fresh]
        if not self._pmax_dirty and bool(
            (self._live_lb[ranks] >= self._stale_pmax[ranks]).any()
        ):
            # A killed value attained the running max at its position,
            # so some prefix maxima may have dropped.
            self._pmax_dirty = True
        self._live_lb[ranks] = -np.inf

    def _sweep_budgets(self) -> None:
        """Apply every monotone kill due at the current spend levels.

        Each kill condition is a comparison against a sorted key array,
        so the crossed rows form a suffix found by one ``searchsorted``
        per sweep — the same float comparisons the rescan loop
        evaluates, batched.
        """
        # Fig. 5 line 6 feasibility: kill when cost > remaining + EPS.
        limit = (self._budget_current - self._spent_current) + _EPS
        boundary = int(np.searchsorted(self._cur_keys[: self._cur_end], limit, side="right"))
        if boundary < self._cur_end:
            self._kill(self._cur_sweep[boundary : self._cur_end])
            self._cur_end = boundary
        limit = (self._budget_future - self._spent_future) + _EPS
        boundary = int(np.searchsorted(self._fut_keys[: self._fut_end], limit, side="right"))
        if boundary < self._fut_end:
            self._kill(self._fut_sweep[boundary : self._fut_end])
            self._fut_end = boundary

        # Eq. 9, deterministic lanes: kill when headroom - cost < 0,
        # i.e. cost > headroom (IEEE subtraction is sign-exact).
        headroom_base = self._budget_max - self._spent_lower_bound
        boundary = int(
            np.searchsorted(self._det_keys[: self._det_end], headroom_base, side="right")
        )
        if boundary < self._det_end:
            self._kill(self._det_sweep[boundary : self._det_end])
            self._det_end = boundary
        # Eq. 9, stochastic sure-fail lanes.
        boundary = int(
            np.searchsorted(
                self._sto_fail_keys[: self._sto_fail_end], headroom_base, side="right"
            )
        )
        if boundary < self._sto_fail_end:
            self._kill(self._sto_fail_sweep[boundary : self._sto_fail_end])
            self._sto_fail_end = boundary

        # Rows whose sure-pass key no longer clears the headroom enter
        # the exact-phi band (key >= headroom).
        boundary = int(
            np.searchsorted(
                self._band_entry_keys[: self._band_start], headroom_base, side="left"
            )
        )
        if boundary < self._band_start:
            entering = self._band_entry[boundary : self._band_start]
            self._band_start = boundary
            self._band = np.concatenate((self._band, entering))
        if self._band.size:
            band = self._band[~self._dead[self._band]]
            if band.size:
                z = (headroom_base - self._cost[band]) / self._std[band]
                failing = ~(phi_vec(z) > self._config.delta)
                self._kill(band[failing])
                band = band[~failing]
            self._band = band

    # -- dominance -----------------------------------------------------------

    def _not_dominated(self, positions: np.ndarray) -> np.ndarray:
        """Mask of ``positions`` surviving Lemma 4.1 against the live set."""
        cuts = self._cut_of_pos[positions]
        missing = cuts < 0
        if missing.any():
            mpos = positions[missing]
            mcut = np.searchsorted(self._ub_sorted, self._cost_lb[mpos], side="left")
            self._cut_of_pos[mpos] = mcut
            cuts[missing] = mcut
        stale_best = np.where(
            cuts > 0, self._stale_pmax[np.maximum(cuts - 1, 0)], -np.inf
        )
        clean = ~(stale_best > self._quality_ub[positions])
        if self._pmax_dirty and not clean.all():
            # The stale max is an upper bound (values only ever leave
            # the live set), so only flagged rows can be false alarms:
            # refresh the prefix max once and re-test them exactly.
            self._stale_pmax = np.maximum.accumulate(self._live_lb)
            self._pmax_dirty = False
            fresh_best = np.where(
                cuts > 0, self._stale_pmax[np.maximum(cuts - 1, 0)], -np.inf
            )
            clean = ~(fresh_best > self._quality_ub[positions])
        return clean

    # -- candidate walk ------------------------------------------------------

    def _collect_candidates(self) -> np.ndarray:
        """The iteration's candidate positions, in canonical order.

        Walks the weight order collecting live, non-dominated
        positions.  One extra row beyond the cap is gathered to learn
        whether the cap actually binds: the Eq. 10 scores downstream
        sum float probabilities in array order, so the order is part
        of the selection contract — quality-weight when the cap binds
        (``cap_candidates``' output order), ascending otherwise (the
        skyline's).
        """
        cap = self._config.candidate_cap + 1
        prune_dominated = self._config.use_dominance_pruning
        wpos = self._weight_positions
        picked: list[np.ndarray] = []
        count = 0
        start = self._walk_start
        while start < wpos.size and count < cap:
            chunk = wpos[start : start + _WALK_CHUNK]
            live = chunk[~self._dead[chunk]]
            if start == self._walk_start:
                # Advance the walk origin past the dead prefix so fully
                # selected regions are never rescanned (amortized).
                if live.size == 0:
                    self._walk_start = start + chunk.size
                else:
                    first_live = np.nonzero(~self._dead[chunk])[0][0]
                    self._walk_start = start + int(first_live)
            start += chunk.size
            if live.size == 0:
                continue
            if prune_dominated:
                live = live[self._not_dominated(live)]
            if live.size:
                picked.append(live[: cap - count])
                count += min(live.size, cap - count)
        if not picked:
            return np.zeros(0, dtype=np.int64)
        positions = np.concatenate(picked)
        if positions.size > self._config.candidate_cap:
            return positions[: self._config.candidate_cap]
        return np.sort(positions)

    # -- the loop ------------------------------------------------------------

    def run(self) -> list[int]:
        pool = self._pool
        config = self._config
        selected: list[int] = []
        while True:
            self._sweep_budgets()
            positions = self._collect_candidates()
            if positions.size == 0:
                break
            candidate_rows = self._rows[positions]
            if config.use_probability_pruning:
                candidate_rows = probability_prune(pool, candidate_rows)
            best = select_best_row(pool, candidate_rows, config.selection_objective)
            selected.append(best)
            self._spent_lower_bound += float(pool.cost_lb[best])
            if pool.is_current[best]:
                self._spent_current += float(pool.cost_mean[best])
            else:
                self._spent_future += float(pool.cost_mean[best])
            w_slot = np.searchsorted(self._w_keys, pool.worker_idx[best])
            self._kill(
                self._w_members[self._w_starts[w_slot] : self._w_starts[w_slot + 1]]
            )
            t_slot = np.searchsorted(self._t_keys, pool.task_idx[best])
            self._kill(
                self._t_members[self._t_starts[t_slot] : self._t_starts[t_slot + 1]]
            )
        return selected


def triplet_greedy_select(
    pool: PairPool,
    rows: np.ndarray,
    budget_current: float,
    budget_max: float,
    config,
) -> list[int] | None:
    """Run the sparse-native engine, or ``None`` when not applicable.

    ``rows`` must be unique and ascending (the caller normalizes).
    Returns ``None`` when the configured ``delta`` is too extreme for
    the z-threshold shortcut — the caller then uses the rescan loop.
    """
    thresholds = _phi_threshold(config.delta)
    if thresholds is None:
        return None
    return TripletSelection(
        pool, rows, budget_current, budget_max, config, thresholds
    ).run()


# ---------------------------------------------------------------------------
# Persistent selection state (round-over-round warm start)
# ---------------------------------------------------------------------------


@dataclass
class SelectionRepairStats:
    """Telemetry of a :class:`SelectionState` (mirrors DeltaBuildStats).

    Attributes:
        rounds: selection rounds routed through the state.
        primes: rounds solved with a cold structural build (first
            round, guard failures, churn overflows).
        repaired: rounds whose structural orders were repaired
            incrementally from the previous round's.
        declined: calls the state refused outright (pool below the
            engine floor, subset row sets, no z-threshold shortcut) —
            the caller falls back to the normal dispatch.
        guard_fallbacks: repairs abandoned because a verification
            guard failed (non-monotone origin, occupancy-key order
            broken); the round cold-primed instead.
        churn_fallbacks: repairs abandoned because the fresh-row share
            of the new pool exceeded ``repair_ratio``, or the old
            orders dwarfed the new pool (total fallback, like the
            delta builder).
        rows_survived: surviving rows across all repaired rounds.
        rows_fresh: fresh (re-sorted) rows across all repaired rounds.
    """

    rounds: int = 0
    primes: int = 0
    repaired: int = 0
    declined: int = 0
    guard_fallbacks: int = 0
    churn_fallbacks: int = 0
    rows_survived: int = 0
    rows_fresh: int = 0


def _pair_identity_keys(pool: PairPool, problem) -> tuple[np.ndarray, np.ndarray] | None:
    """``(positions, keys)`` identifying the current-current rows.

    Keys pack the *entity* ids (stable across rounds, unlike pool
    indices) of each current pair.  Returns ``None`` when ids do not
    fit the packing — the caller then skips self-diff.
    """
    ncw = problem.num_current_workers
    nct = problem.num_current_tasks
    wid = np.fromiter(
        (w.id for w in problem.workers[:ncw]), dtype=np.int64, count=ncw
    )
    tid = np.fromiter((t.id for t in problem.tasks[:nct]), dtype=np.int64, count=nct)
    if wid.size and (wid.min() < 0 or wid.max() >= _WORKER_ID_LIMIT):
        return None
    if tid.size and (tid.min() < 0 or tid.max() >= _TASK_ID_LIMIT):
        return None
    positions = np.nonzero(pool.is_current)[0].astype(np.int64)
    keys = wid[pool.worker_idx[positions]] * _ID_BASE + tid[pool.task_idx[positions]]
    return positions, keys


class SelectionState:
    """Persistent, churn-repaired selection layer (see module docstring).

    Owned by the streaming engine and handed to the assigner each
    round via ``Assigner.begin_round``; :func:`repro.core.greedy.
    greedy_select` routes full-pool selections through :meth:`select`.
    The state repairs the previous round's :class:`SelectionOrders`
    in O(churn) instead of re-sorting the pool, and falls back to a
    cold build whenever any invariant cannot be proven — so its
    selections are bit-identical to cold solves on every round.

    Row origins come from one of two sources, mirroring the delta
    builder's trusted-hint / self-diff split:

    - **trusted**: a :class:`~repro.model.delta.ChurnRecord` whose
      ``row_origin`` maps each new pool row to the previous round's
      row.  ``DeltaPoolBuilder`` emits it directly; the fused round
      pipeline (``repro.streaming.pipeline``, the serial *and*
      sharded engines' default build path) composes it from the
      per-tile builders' emission-local origins — each tile's entity
      lists are monotone subsequences of the global ones, so the
      merged pool's rank order embeds every tile's, and the composed
      map is exactly what a whole-pool builder would have produced;
    - **self-diff**: current-current rows are matched by packed
      ``(worker_id, task_id)`` identity against the previous round's,
      which needs no builder cooperation (the ``--no-delta`` fresh
      path uses this mode).

    Either way every matched row's order-determining columns are
    verified against the cached copies and mismatches are demoted to
    fresh rows, so correctness never rests on the hint being right.
    """

    def __init__(self, repair_ratio: float = 0.5) -> None:
        if not 0.0 < repair_ratio <= 1.0:
            raise ValueError(f"repair_ratio must be in (0, 1], got {repair_ratio}")
        self._repair_ratio = repair_ratio
        self.stats = SelectionRepairStats()
        self._problem = None
        self._churn = None
        self._orders: SelectionOrders | None = None
        self._cols: tuple[np.ndarray, ...] | None = None
        self._n = 0
        self._delta: float | None = None
        self._key_rows: np.ndarray | None = None
        self._key_vals: np.ndarray | None = None
        # Trusted-origin carry: maps the most recently *observed*
        # pool's rows to the remembered orders' rows.  Composed from
        # each round's ChurnRecord even on declined rounds, so the
        # trusted chain survives small-pool gaps between engaged
        # rounds instead of forcing a cold prime after every gap.
        self._carry: np.ndarray | None = None
        self._last_n = 0

    # -- round plumbing ------------------------------------------------------

    def begin_round(self, problem, churn=None) -> None:
        """Arm the state for one round's full-pool selection."""
        self._problem = problem
        self._churn = churn

    def invalidate(self) -> None:
        """Drop all cached structure; the next round cold-primes."""
        self._orders = None
        self._cols = None
        self._n = 0
        self._delta = None
        self._key_rows = None
        self._key_vals = None
        self._carry = None
        self._last_n = 0

    # -- the warm entry point ------------------------------------------------

    def select(
        self,
        pool: PairPool,
        rows: np.ndarray,
        budget_current: float,
        budget_max: float,
        config,
    ) -> list[int] | None:
        """Warm-started selection, or ``None`` to decline.

        ``rows`` must be unique and ascending (``greedy_select``
        normalizes).  Declines — returning ``None`` so the caller runs
        its normal dispatch — when the call is not this round's
        full-pool selection, the pool is below the engine floor, or
        the z-threshold shortcut is unavailable.
        """
        problem, churn = self._problem, self._churn
        self._problem = None
        self._churn = None
        thresholds = _phi_threshold(config.delta)
        if problem is None or problem.pool is not pool or rows.size != len(pool):
            self.stats.declined += 1
            return None
        # Full-pool observation: fold this round's churn into the
        # trusted-origin carry even when the round is about to be
        # declined, so a later engaged round can still repair across
        # the gap.
        self._observe(pool, churn)
        if rows.size < config.triplet_min_rows or thresholds is None:
            self.stats.declined += 1
            return None
        self.stats.rounds += 1
        if self._delta is not None and self._delta != config.delta:
            # The stochastic sweep keys are delta-specific.
            self.invalidate()

        orders = None
        origin = self._derive_origin(pool, churn, problem)
        if origin is not None:
            orders = self._repair(pool, origin, thresholds)
        if orders is None:
            orders = build_selection_orders(pool, rows, thresholds)
            self.stats.primes += 1
        else:
            self.stats.repaired += 1

        selected = TripletSelection(
            pool, rows, budget_current, budget_max, config, thresholds, orders=orders
        ).run()
        self._remember(pool, problem, churn, orders, config.delta)
        return selected

    # -- origin derivation ---------------------------------------------------

    def _observe(self, pool: PairPool, churn) -> None:
        """Compose this round's trusted churn into the origin carry.

        After the call ``self._carry`` maps the *current* pool's rows
        to the remembered orders' rows (or is ``None`` when the
        trusted chain broke — a round without a usable hint).
        """
        if self._orders is None or self._carry is None:
            return
        if (
            churn is not None
            and churn.row_origin is not None
            and churn.prev_pool_rows == self._last_n
            and churn.row_origin.size == len(pool)
        ):
            origin = churn.row_origin
            carry = np.full(len(pool), -1, dtype=np.int64)
            known = (origin >= 0) & (origin < self._last_n)
            carry[known] = self._carry[origin[known]]
            self._carry = carry
            self._last_n = len(pool)
        else:
            self._carry = None

    def _derive_origin(self, pool: PairPool, churn, problem) -> np.ndarray | None:
        """Map each new row to the remembered round's row (or -1)."""
        if self._orders is None:
            return None
        if self._carry is not None and self._carry.size == len(pool):
            return self._carry
        return self._self_diff_origin(pool, problem)

    def _self_diff_origin(self, pool: PairPool, problem) -> np.ndarray | None:
        if self._key_vals is None:
            return None
        identity = _pair_identity_keys(pool, problem)
        if identity is None:
            return None
        positions, keys = identity
        origin = np.full(len(pool), -1, dtype=np.int64)
        old_vals = self._key_vals
        if old_vals.size:
            idx = np.searchsorted(old_vals, keys)
            clipped = np.minimum(idx, old_vals.size - 1)
            found = (idx < old_vals.size) & (old_vals[clipped] == keys)
            origin[positions[found]] = self._key_rows[clipped[found]]
        return origin

    # -- the repair ----------------------------------------------------------

    def _repair(
        self, pool: PairPool, origin: np.ndarray, thresholds: tuple[float, float]
    ) -> SelectionOrders | None:
        """Repair the cached orders onto the new pool, or ``None``.

        Survivor sub-orders are exact because (a) the origin mapping
        is verified strictly increasing, so surviving rows keep their
        relative positions, and (b) every order-determining column is
        verified unchanged at surviving rows (mismatches are demoted
        to fresh).  Fresh rows are sorted cold and merged in.
        """
        old = self._orders
        n_old = self._n
        surv_new = np.nonzero(origin >= 0)[0].astype(np.int64)
        surv_old = origin[surv_new]
        if surv_old.size and (
            surv_old[0] < 0
            or surv_old[-1] >= n_old
            or (np.diff(surv_old) <= 0).any()
        ):
            self.stats.guard_fallbacks += 1
            return None

        # Column verification: demote any matched row whose
        # order-determining values changed (e.g. within-slack motion).
        o_cost, o_var, o_ub, o_qual, o_cur = self._cols
        same = (
            (pool.cost_mean[surv_new] == o_cost[surv_old])
            & (pool.cost_var[surv_new] == o_var[surv_old])
            & (pool.cost_ub[surv_new] == o_ub[surv_old])
            & (pool.quality_mean[surv_new] == o_qual[surv_old])
            & (pool.is_current[surv_new] == o_cur[surv_old])
        )
        if not same.all():
            surv_new = surv_new[same]
            surv_old = surv_old[same]

        # Fallback economics: fresh rows are the actual re-sort work
        # (repairing a mostly-fresh pool approximates a cold build),
        # while dead rows only cost linear scans of the old orders —
        # mass-expiry rounds after a burst repair profitably even when
        # most of the old pool died.  The second bound caps those
        # scans when the old orders dwarf the new pool.
        n_new = len(pool)
        if (n_new - surv_new.size) > self._repair_ratio * n_new or n_old > 4 * n_new:
            self.stats.churn_fallbacks += 1
            return None

        survivor = np.zeros(n_new, dtype=bool)
        survivor[surv_new] = True
        fresh = np.nonzero(~survivor)[0].astype(np.int64)
        new_of_old = np.full(n_old, -1, dtype=np.int64)
        new_of_old[surv_old] = surv_new

        def surv_seq(old_order: np.ndarray) -> np.ndarray:
            mapped = new_of_old[old_order]
            return mapped[mapped >= 0]

        cost = pool.cost_mean
        neg_quality = -pool.quality_mean
        cost_ub = pool.cost_ub
        variance = pool.cost_var
        z_lo, z_hi = thresholds
        deterministic = variance <= _VARIANCE_FLOOR
        std = np.zeros(n_new)
        sto = ~deterministic
        std[sto] = np.sqrt(variance[sto])
        fail_key = cost + z_lo * std
        pass_key = cost + z_hi * std

        # Occupancy groups: pool indices are renumbered between rounds
        # (compaction), so instead of comparing key values the repair
        # verifies the surviving member runs are still sorted under
        # the *new* keys — renumbering is monotone when the builder
        # behaves, and the guard catches it when it does not.
        worker_keys = pool.worker_idx
        task_keys = pool.task_idx
        w_surv = surv_seq(old.w_members)
        t_surv = surv_seq(old.t_members)
        if not _sorted_by_key_then_position(worker_keys, w_surv):
            self.stats.guard_fallbacks += 1
            return None
        if not _sorted_by_key_then_position(task_keys, t_surv):
            self.stats.guard_fallbacks += 1
            return None

        self.stats.rows_survived += int(surv_new.size)
        self.stats.rows_fresh += int(fresh.size)

        orders = SelectionOrders()
        orders.size = n_new

        w_fresh = fresh[np.argsort(worker_keys[fresh], kind="stable")]
        members = _merge_sorted_positions(w_surv, w_fresh, (worker_keys,))
        orders.w_keys, orders.w_starts, orders.w_members = _regroup(
            worker_keys, members
        )
        t_fresh = fresh[np.argsort(task_keys[fresh], kind="stable")]
        members = _merge_sorted_positions(t_surv, t_fresh, (task_keys,))
        orders.t_keys, orders.t_starts, orders.t_members = _regroup(task_keys, members)

        fresh_weight = fresh[
            np.lexsort((fresh, cost[fresh], -pool.quality_mean[fresh]))
        ]
        orders.weight_positions = _merge_sorted_positions(
            surv_seq(old.weight_positions), fresh_weight, (neg_quality, cost)
        )
        fresh_ub = fresh[np.argsort(cost_ub[fresh], kind="stable")]
        orders.ub_order = _merge_sorted_positions(
            surv_seq(old.ub_order), fresh_ub, (cost_ub,)
        )

        # One merge of the cost-ascending order, then mask filters:
        # filtering a total order commutes with merging (both sides
        # are the (cost, position)-sorted order of the filtered set),
        # so this matches the cold build's three sweeps exactly.
        fresh_by_cost = fresh[np.argsort(cost[fresh], kind="stable")]
        by_cost = _merge_sorted_positions(
            surv_seq(old.by_cost), fresh_by_cost, (cost,)
        )
        orders.by_cost = by_cost
        is_current = pool.is_current
        cur_mask = is_current[by_cost]
        orders.cur_sweep = by_cost[cur_mask]
        orders.fut_sweep = by_cost[~cur_mask]
        orders.det_sweep = by_cost[deterministic[by_cost]]
        fresh_sto = fresh[sto[fresh]]
        orders.sto_fail_sweep = _merge_sorted_positions(
            surv_seq(old.sto_fail_sweep),
            fresh_sto[np.argsort(fail_key[fresh_sto], kind="stable")],
            (fail_key,),
        )
        orders.band_entry = _merge_sorted_positions(
            surv_seq(old.band_entry),
            fresh_sto[np.argsort(pass_key[fresh_sto], kind="stable")],
            (pass_key,),
        )
        return orders

    # -- caching -------------------------------------------------------------

    def _remember(
        self, pool: PairPool, problem, churn, orders: SelectionOrders, delta: float
    ) -> None:
        self._orders = orders
        self._n = len(pool)
        self._delta = delta
        # The carry restarts from the identity of the round just
        # remembered; future rounds compose their churn onto it.
        self._carry = np.arange(len(pool), dtype=np.int64)
        self._last_n = len(pool)
        self._cols = (
            pool.cost_mean.copy(),
            pool.cost_var.copy(),
            pool.cost_ub.copy(),
            pool.quality_mean.copy(),
            pool.is_current.copy(),
        )
        trusted_next = churn is not None and churn.row_origin is not None
        if trusted_next:
            # Next round will carry a trusted origin hint; skip the
            # (python-loop) id harvest.  If the hint goes missing the
            # state simply cold-primes once and starts self-diffing.
            self._key_rows = None
            self._key_vals = None
            return
        identity = _pair_identity_keys(pool, problem)
        if identity is None:
            self._key_rows = None
            self._key_vals = None
            return
        positions, keys = identity
        order = np.argsort(keys, kind="stable")
        self._key_vals = keys[order]
        self._key_rows = positions[order]
