"""Candidate-set pruning (Lemmas 4.1 and 4.2), vectorized.

Dominance pruning (Lemma 4.1)
    Pair ``<w_i, t_j>`` is pruned when some candidate ``<w_a, t_b>``
    has ``ub_c_ab < lb_c_ij`` *and* ``lb_q_ab > ub_q_ij`` — i.e. the
    candidate is guaranteed both cheaper and better.

Increase-probability pruning (Lemma 4.2)
    The paper's statement prunes a pair when its own superiority
    probabilities exceed 0.5, which would eliminate the *best* pairs;
    the evident intent (and what Example 5 exercises) is the converse:
    prune ``<w_i, t_j>`` when, against some candidate,
    ``Pr{q_ij > q_ab} < 0.5`` and ``Pr{c_ij <= c_ab} < 0.5`` — the
    pair is probably worse on both dimensions.  We implement the
    intent (see DESIGN.md).  For deterministic pairs this degenerates
    to strict dominance, consistent with Lemma 4.1.
"""

from __future__ import annotations

import numpy as np

from repro.model.pairs import PairPool
from repro.uncertainty.vector import prob_greater_vec, prob_less_or_equal_vec


def dominance_skyline(
    pool: PairPool, rows: np.ndarray, presorted_by_cost_ub: np.ndarray | None = None
) -> np.ndarray:
    """Rows of ``rows`` that survive Lemma 4.1 dominance pruning.

    A row ``j`` is dominated iff some row ``a`` has
    ``cost_ub[a] < cost_lb[j]`` and ``quality_lb[a] > quality_ub[j]``.

    Implementation: sort the rows by ``cost_ub``; every potential
    dominator of ``j`` then lies in the strict prefix of rows with
    ``cost_ub < cost_lb[j]``, and only its maximal ``quality_lb``
    matters — a prefix-max plus a binary search per row, O(N log N)
    total instead of O(N^2).

    Args:
        pool: the owning pair pool.
        rows: candidate row indices (any order).
        presorted_by_cost_ub: optional precomputed ordering of ``rows``
            by ``cost_ub`` (an argsort result), letting callers in a
            selection loop amortize the sort.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size <= 1:
        return rows

    if presorted_by_cost_ub is None:
        order = np.argsort(pool.cost_ub[rows], kind="stable")
    else:
        order = presorted_by_cost_ub
    sorted_rows = rows[order]
    sorted_ub_cost = pool.cost_ub[sorted_rows]
    prefix_max_lb_quality = np.maximum.accumulate(pool.quality_lb[sorted_rows])

    # Strict prefix with cost_ub < cost_lb[j]: positions [0, cut_j).
    cut = np.searchsorted(sorted_ub_cost, pool.cost_lb[sorted_rows], side="left")
    has_prefix = cut > 0
    best_quality_before = np.where(
        has_prefix, prefix_max_lb_quality[np.maximum(cut - 1, 0)], -np.inf
    )
    dominated = best_quality_before > pool.quality_ub[sorted_rows]
    survivors = sorted_rows[~dominated]
    return np.sort(survivors)


def probability_prune(pool: PairPool, rows: np.ndarray) -> np.ndarray:
    """Rows of ``rows`` that survive Lemma 4.2 pruning.

    Pairwise O(K^2); callers cap K (the greedy keeps at most
    ``candidate_cap`` rows).  A row is pruned when *some* other row is
    probably better on quality and probably no worse on cost.  Mutual
    elimination cannot occur: ``Pr{q_i > q_j} < 0.5`` implies
    ``Pr{q_j > q_i} > 0.5`` under the normal approximation (ties give
    exactly 0.5, which does not prune).
    """
    rows = np.asarray(rows, dtype=np.int64)
    size = rows.size
    if size <= 1:
        return rows

    q_mean = pool.quality_mean[rows]
    q_var = pool.quality_var[rows]
    c_mean = pool.cost_mean[rows]
    c_var = pool.cost_var[rows]

    quality_better = prob_greater_vec(
        q_mean[:, None], q_var[:, None], q_mean[None, :], q_var[None, :]
    )
    cost_better = prob_less_or_equal_vec(
        c_mean[:, None], c_var[:, None], c_mean[None, :], c_var[None, :]
    )
    worse_both = (quality_better < 0.5) & (cost_better < 0.5)
    np.fill_diagonal(worse_both, False)
    pruned = worse_both.any(axis=1)
    return rows[~pruned]


def cap_candidates(pool: PairPool, rows: np.ndarray, cap: int) -> np.ndarray:
    """Keep at most ``cap`` rows, preferring high expected quality.

    A performance guard for the O(K^2) probabilistic stages; ties are
    broken by lower expected cost, then by row index for determinism.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size <= cap:
        return rows
    order = np.lexsort((rows, pool.cost_mean[rows], -pool.quality_mean[rows]))
    return rows[order[:cap]]
