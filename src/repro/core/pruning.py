"""Candidate-set pruning (Lemmas 4.1 and 4.2), vectorized.

Dominance pruning (Lemma 4.1)
    Pair ``<w_i, t_j>`` is pruned when some candidate ``<w_a, t_b>``
    has ``ub_c_ab < lb_c_ij`` *and* ``lb_q_ab > ub_q_ij`` — i.e. the
    candidate is guaranteed both cheaper and better.

Increase-probability pruning (Lemma 4.2)
    The paper's statement prunes a pair when its own superiority
    probabilities exceed 0.5, which would eliminate the *best* pairs;
    the evident intent (and what Example 5 exercises) is the converse:
    prune ``<w_i, t_j>`` when, against some candidate,
    ``Pr{q_ij > q_ab} < 0.5`` and ``Pr{c_ij <= c_ab} < 0.5`` — the
    pair is probably worse on both dimensions.  We implement the
    intent (see DESIGN.md).  For deterministic pairs this degenerates
    to strict dominance, consistent with Lemma 4.1.
"""

from __future__ import annotations

import numpy as np

from repro.model.pairs import PairPool
from repro.uncertainty.vector import prob_greater_vec, prob_less_or_equal_vec

_VARIANCE_FLOOR = 1e-24
#: Band half-width (in z units, squared against the combined variance)
#: inside which the Lemma 4.2 probability comparisons are evaluated
#: exactly; outside it the mean-gap sign decides.  The phi_vec
#: threshold for 0.5 sits at |z| = 0.0101 (see selection._PHI_BAND);
#: 1.6e-4 = (0.01265)^2 clears it with 25% headroom, far beyond the
#: squared-form rounding error.
_PRUNE_BAND_SQ = 1.6e-4


def dominance_skyline(
    pool: PairPool, rows: np.ndarray, presorted_by_cost_ub: np.ndarray | None = None
) -> np.ndarray:
    """Rows of ``rows`` that survive Lemma 4.1 dominance pruning.

    A row ``j`` is dominated iff some row ``a`` has
    ``cost_ub[a] < cost_lb[j]`` and ``quality_lb[a] > quality_ub[j]``.

    Implementation: sort the rows by ``cost_ub``; every potential
    dominator of ``j`` then lies in the strict prefix of rows with
    ``cost_ub < cost_lb[j]``, and only its maximal ``quality_lb``
    matters — a prefix-max plus a binary search per row, O(N log N)
    total instead of O(N^2).

    Args:
        pool: the owning pair pool.
        rows: candidate row indices (any order).
        presorted_by_cost_ub: optional precomputed ordering of ``rows``
            by ``cost_ub`` (an argsort result), letting callers in a
            selection loop amortize the sort.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size <= 1:
        return rows

    if presorted_by_cost_ub is None:
        order = np.argsort(pool.cost_ub[rows], kind="stable")
    else:
        order = presorted_by_cost_ub
    sorted_rows = rows[order]
    sorted_ub_cost = pool.cost_ub[sorted_rows]
    prefix_max_lb_quality = np.maximum.accumulate(pool.quality_lb[sorted_rows])

    # Strict prefix with cost_ub < cost_lb[j]: positions [0, cut_j).
    cut = np.searchsorted(sorted_ub_cost, pool.cost_lb[sorted_rows], side="left")
    has_prefix = cut > 0
    best_quality_before = np.where(
        has_prefix, prefix_max_lb_quality[np.maximum(cut - 1, 0)], -np.inf
    )
    dominated = best_quality_before > pool.quality_ub[sorted_rows]
    survivors = sorted_rows[~dominated]
    return np.sort(survivors)


def probability_prune(pool: PairPool, rows: np.ndarray) -> np.ndarray:
    """Rows of ``rows`` that survive Lemma 4.2 pruning.

    Pairwise O(K^2); callers cap K (the greedy keeps at most
    ``candidate_cap`` rows).  A row is pruned when *some* other row is
    probably better on quality and probably no worse on cost.  Mutual
    elimination cannot occur: ``Pr{q_i > q_j} < 0.5`` implies
    ``Pr{q_j > q_i} > 0.5`` under the normal approximation (ties give
    exactly 0.5, which does not prune).
    """
    rows = np.asarray(rows, dtype=np.int64)
    size = rows.size
    if size <= 1:
        return rows

    q_mean = pool.quality_mean[rows]
    q_var = pool.quality_var[rows]
    c_mean = pool.cost_mean[rows]
    c_var = pool.cost_var[rows]

    # Both probability comparisons against 0.5 are decided by the sign
    # of the mean gap alone — for deterministic lanes exactly, and for
    # stochastic lanes whenever |z| clears the phi_vec threshold band
    # (|z| <= 0.01 needs the exact CDF; see selection._phi_threshold).
    # Only the rare band lanes pay for the full Eqs. 7-8: the pruned
    # set is bit-identical to evaluating the probabilities everywhere.
    worse_q = _probably_less(q_mean, q_var, prob_greater_vec)
    worse_c = _probably_less(-c_mean, c_var, prob_less_or_equal_vec, negated=True)
    worse_both = worse_q & worse_c
    np.fill_diagonal(worse_both, False)
    pruned = worse_both.any(axis=1)
    return rows[~pruned]


def _probably_less(mean: np.ndarray, var: np.ndarray, prob_fn, negated: bool = False):
    """Pairwise mask of ``prob_fn(value_i, value_j) < 0.5``.

    ``prob_fn`` is ``prob_greater_vec`` (is ``i``'s value probably
    larger?) or ``prob_less_or_equal_vec`` with negated means (is
    ``i``'s value probably smaller?); in both conventions the result
    drops below 0.5 exactly when ``mean_i < mean_j``, outside the
    threshold band.  ``fl(1 - p) < 0.5  <=>  p > 0.5`` holds for every
    float ``p`` in [0, 1] (Sterbenz), so the sign test is exact.
    """
    gap = mean[:, None] - mean[None, :]
    combined = var[:, None] + var[None, :]
    mask = gap < 0.0
    stochastic = combined > _VARIANCE_FLOOR
    # Exact-zero gaps are the common band case (predicted pairs share
    # per-task/per-worker/global quality statistics): their probability
    # is the constant phi_vec(-0.0) regardless of the variances, so the
    # comparison outcome is a per-function constant.
    if _zero_gap_outcome(prob_fn):
        mask |= stochastic & (gap == 0.0)
    # (when the zero-gap outcome is >= 0.5, ``gap < 0.0`` is already
    # False on those lanes, so nothing to do)
    band = stochastic & (gap != 0.0) & (gap * gap <= _PRUNE_BAND_SQ * combined)
    lanes = np.nonzero(band)
    if lanes[0].size:
        i, j = lanes
        if negated:
            mask[i, j] = prob_fn(-mean[i], var[i], -mean[j], var[j]) < 0.5
        else:
            mask[i, j] = prob_fn(mean[i], var[i], mean[j], var[j]) < 0.5
    return mask


_zero_gap_outcomes: dict[object, bool] = {}


def _zero_gap_outcome(prob_fn) -> bool:
    """Whether ``prob_fn`` on a zero-gap stochastic pair is < 0.5."""
    if prob_fn not in _zero_gap_outcomes:
        one = np.ones(1)
        _zero_gap_outcomes[prob_fn] = bool(
            prob_fn(np.zeros(1), one, np.zeros(1), one)[0] < 0.5
        )
    return _zero_gap_outcomes[prob_fn]


def cap_candidates(pool: PairPool, rows: np.ndarray, cap: int) -> np.ndarray:
    """Keep at most ``cap`` rows, preferring high expected quality.

    A performance guard for the O(K^2) probabilistic stages; ties are
    broken by lower expected cost, then by row index for determinism.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size <= cap:
        return rows
    return pool.order_by_weight(rows)[:cap]
