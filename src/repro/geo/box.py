"""Axis-aligned boxes: the support of uniform-kernel location estimates.

Section III-A models every predicted worker/task sample as a *uniform*
distribution centered at the sample, bounded per dimension by
``[s[r] - h_r, s[r] + h_r]``.  A :class:`Box` is that support.  Boxes
also arise degenerately for *current* entities, whose position is a
single point (a zero-width box); the moment formulas in
:mod:`repro.uncertainty.moments` handle both uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"malformed box bounds: {self}")

    @classmethod
    def from_point(cls, point: Point) -> "Box":
        """A degenerate (zero-area) box at a known location."""
        return cls(point.x, point.x, point.y, point.y)

    @classmethod
    def from_center(cls, center: Point, half_width_x: float, half_width_y: float) -> "Box":
        """The support of a uniform kernel centered at ``center``.

        This is the per-sample box of Section III-A with bandwidths
        ``h_1 = half_width_x`` and ``h_2 = half_width_y``.
        """
        if half_width_x < 0.0 or half_width_y < 0.0:
            raise ValueError("kernel half-widths must be non-negative")
        return cls(
            center.x - half_width_x,
            center.x + half_width_x,
            center.y - half_width_y,
            center.y + half_width_y,
        )

    @property
    def center(self) -> Point:
        return Point((self.x_lo + self.x_hi) / 2.0, (self.y_lo + self.y_hi) / 2.0)

    @property
    def is_degenerate(self) -> bool:
        """True when the box is a single point (a current entity)."""
        return self.x_lo == self.x_hi and self.y_lo == self.y_hi

    def interval(self, dimension: int) -> tuple[float, float]:
        """The ``[lb, ub]`` interval of the box along one dimension."""
        if dimension == 0:
            return (self.x_lo, self.x_hi)
        if dimension == 1:
            return (self.y_lo, self.y_hi)
        raise IndexError(f"Box has two dimensions, got {dimension}")

    def clipped(self, lo: float = 0.0, hi: float = 1.0) -> "Box":
        """Clip the box to the data space (kernels near the boundary)."""
        return Box(
            min(max(self.x_lo, lo), hi),
            min(max(self.x_hi, lo), hi),
            min(max(self.y_lo, lo), hi),
            min(max(self.y_hi, lo), hi),
        )

    def contains(self, point: Point) -> bool:
        return self.x_lo <= point.x <= self.x_hi and self.y_lo <= point.y <= self.y_hi


def _interval_gap(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> float:
    """Smallest distance between two 1-D intervals (0 if they overlap)."""
    if a_hi < b_lo:
        return b_lo - a_hi
    if b_hi < a_lo:
        return a_lo - b_hi
    return 0.0


def _interval_span(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> float:
    """Largest distance between points of two 1-D intervals."""
    return max(abs(a_hi - b_lo), abs(b_hi - a_lo))


def min_box_distance(a: Box, b: Box) -> float:
    """Smallest Euclidean distance between any two points of ``a``/``b``.

    This is the lower bound ``lb_c`` of a pair's traveling distance when
    one or both endpoints are uniform-kernel boxes (used by the
    dominance pruning of Lemma 4.1).
    """
    dx = _interval_gap(a.x_lo, a.x_hi, b.x_lo, b.x_hi)
    dy = _interval_gap(a.y_lo, a.y_hi, b.y_lo, b.y_hi)
    return math.hypot(dx, dy)


def max_box_distance(a: Box, b: Box) -> float:
    """Largest Euclidean distance between any two points of ``a``/``b``.

    This is the upper bound ``ub_c`` of a pair's traveling distance.
    """
    dx = _interval_span(a.x_lo, a.x_hi, b.x_lo, b.x_hi)
    dy = _interval_span(a.y_lo, a.y_hi, b.y_lo, b.y_hi)
    return math.hypot(dx, dy)
